#!/usr/bin/env python
"""Containing a bulk buffered writer through dirty throttling + IOCost.

A low-weight container writes as fast as it can through the page cache
while a high-weight latency-sensitive container reads.  Buffered writes
never hit the device synchronously, so the *only* way to contain the
writer is the chain the kernel actually uses: the IO controller paces the
writer's **writeback**, writeback backlog keeps its **dirty pages** near
the limit, and ``balance_dirty_pages`` blocks the writer at the syscall
boundary.

Run:  python examples/buffered_writer_isolation.py
"""

from repro.analysis.report import Table, format_si
from repro.core.qos import QoSParams
from repro.mm.pagecache import PageCache
from repro.testbed import Testbed

MB = 1024 * 1024
DURATION = 4.0


def run_once(controller_name: str):
    qos = QoSParams(
        read_lat_target=1e-3, read_pct=90,
        vrate_min=0.5, vrate_max=1.2, period=0.05,
    )
    testbed = Testbed(device="ssd_old", controller=controller_name, qos=qos, seed=23)
    cache = PageCache(
        testbed.sim, testbed.layer,
        background_bytes=8 * MB, limit_bytes=32 * MB,
    )
    bulk = testbed.add_cgroup("system.slice/bulk", weight=25)
    reader_group = testbed.add_cgroup("workload.slice/reader", weight=500)
    reader = testbed.saturate(reader_group, depth=8, stop_at=DURATION)

    written = {"bytes": 0}

    def firehose():
        while testbed.sim.now < DURATION:
            yield from cache.buffered_write(bulk, 2 * MB)
            written["bytes"] += 2 * MB

    testbed.sim.process(firehose())
    testbed.run(DURATION)
    testbed.detach()
    p99 = reader.recent_percentile(99, last=2000)
    return {
        "write_rate": written["bytes"] / DURATION,
        "reader_iops": reader.completed / DURATION,
        "reader_p99": p99,
        "throttled": cache.state_of(bulk).throttled_time,
    }


def main() -> None:
    table = Table(
        "Bulk buffered writer (weight 25) vs latency-sensitive reader (weight 500)",
        ["controller", "writer MB/s", "writer blocked (s)", "reader IOPS", "reader p99"],
    )
    for name in ("none", "iocost"):
        print(f"running {name}...")
        row = run_once(name)
        table.add_row(
            name,
            f"{row['write_rate'] / MB:.0f}",
            f"{row['throttled']:.1f}",
            format_si(row["reader_iops"]),
            f"{row['reader_p99'] * 1e6:.0f}us",
        )
    table.print()
    print(
        "\nwith iocost, the writer's writeback is paced to its weight share"
        " plus whatever the depth-limited reader donates (work conservation);"
        " the dirty limit then blocks the writer itself (balance_dirty_pages),"
        " and the reader's throughput and latency recover."
    )


if __name__ == "__main__":
    main()
