#!/usr/bin/env python
"""Trace-driven what-if analysis: record once, replay under each controller.

Records the IO of two contending containers (a latency-sensitive reader
and a bulk writer) running uncontrolled, then replays the identical trace
under each cgroup-aware mechanism and compares the reader's p99 latency —
the workflow production engineers use to evaluate a controller change
before rolling it out.

Run:  python examples/trace_replay.py
"""

from repro.analysis.report import Table
from repro.block.trace import TraceRecorder, TraceReplayer
from repro.core.qos import QoSParams
from repro.testbed import Testbed
from repro.block.bio import IOOp

DURATION = 2.0
KB = 1024


def record_trace():
    testbed = Testbed(device="ssd_old", controller="none", seed=17)
    recorder = TraceRecorder(testbed.layer).install()
    reader_group = testbed.add_cgroup("workload.slice/reader", weight=500)
    writer_group = testbed.add_cgroup("system.slice/bulk", weight=25)
    testbed.paced(reader_group, rate=3000, size=4 * KB, stop_at=DURATION)
    testbed.saturate(
        writer_group, op=IOOp.WRITE, size=256 * KB, depth=16,
        sequential=True, stop_at=DURATION,
    )
    testbed.run(DURATION + 0.5)
    testbed.detach()
    return recorder.records


def replay_under(records, controller_name):
    qos = QoSParams(read_lat_target=2e-3, read_pct=90,
                    write_lat_target=20e-3, write_pct=90,
                    vrate_min=0.15, vrate_max=1.5, period=0.05)
    testbed = Testbed(device="ssd_old", controller=controller_name, qos=qos, seed=17)
    testbed.add_cgroup("workload.slice/reader", weight=500)
    testbed.add_cgroup("system.slice/bulk", weight=25)
    replayer = TraceReplayer(
        testbed.sim, testbed.layer, testbed.cgroups, records
    ).start()
    testbed.run(DURATION + 2.0)
    testbed.detach()
    reader_lat = sorted(replayer.latencies_by_cgroup["workload.slice/reader"])
    p50 = reader_lat[len(reader_lat) // 2]
    p99 = reader_lat[int(0.99 * (len(reader_lat) - 1))]
    return p50, p99, replayer.completed


def main() -> None:
    print("recording uncontrolled trace (reader vs bulk writer)...")
    records = record_trace()
    reads = sum(1 for record in records if record.op == "read")
    print(f"captured {len(records)} IOs ({reads} reads)\n")

    table = Table(
        "Reader latency replaying the same trace under each mechanism",
        ["controller", "reader p50", "reader p99", "IOs replayed"],
    )
    for name in ("none", "mq-deadline", "bfq", "iolatency", "iocost"):
        print(f"replaying under {name}...")
        p50, p99, completed = replay_under(records, name)
        table.add_row(name, f"{p50 * 1e3:.2f}ms", f"{p99 * 1e3:.2f}ms", completed)
    table.print()


if __name__ == "__main__":
    main()
