#!/usr/bin/env python
"""Quickstart: proportional IO control and work conservation with IOCost.

Two containers share one simulated NVMe SSD with a 2:1 weight ratio.

Phase 1 — both saturate the device: throughput splits 2:1.
Phase 2 — the high-weight container goes (mostly) idle: the budget-donation
algorithm hands its unused share to the low-weight container, which soaks
up nearly the whole device (work conservation).

Run:  python examples/quickstart.py
"""

from repro.analysis.report import Table
from repro.core.qos import QoSParams
from repro.testbed import Testbed


def main() -> None:
    # QoS: keep p90 read latency under 400 us; vrate floats inside tuned
    # bounds to hold the device at that operating point (§3.3), which is
    # where the weight budgets bind and the proportional split appears.
    qos = QoSParams(
        read_lat_target=400e-6,
        read_pct=90,
        vrate_min=0.25,
        vrate_max=2.0,
        period=0.025,
    )
    testbed = Testbed(device="ssd_new", controller="iocost", qos=qos)
    high = testbed.add_cgroup("workload.slice/high", weight=200)
    low = testbed.add_cgroup("workload.slice/low", weight=100)

    # Phase 1: both containers issue as many 4 KiB random reads as they can.
    high_load = testbed.saturate(high, depth=96)
    low_load = testbed.saturate(low, depth=96)
    testbed.run(1.0)

    table = Table("Phase 1 — both saturating (weights 200:100)", ["cgroup", "IOPS", "share"])
    high_iops, low_iops = testbed.iops(high), testbed.iops(low)
    total = high_iops + low_iops
    table.add_row("high (w=200)", f"{high_iops:,.0f}", f"{high_iops / total:.1%}")
    table.add_row("low  (w=100)", f"{low_iops:,.0f}", f"{low_iops / total:.1%}")
    table.print()
    print(f"ratio: {high_iops / low_iops:.2f} (target 2.0)")

    # Phase 2: high goes nearly idle; low should take over the device.
    high_load.stop()
    trickle = testbed.paced(high, rate=1000)  # a token 1K IOPS background
    testbed.run(1.0)

    table = Table("Phase 2 — high idles, low soaks up the slack", ["cgroup", "IOPS"])
    table.add_row("high (idle, 1K paced)", f"{testbed.iops(high):,.0f}")
    table.add_row("low  (saturating)", f"{testbed.iops(low):,.0f}")
    table.print()
    print(
        "work conservation: low now gets "
        f"{testbed.iops(low) / total:.0%} of the phase-1 total device throughput"
    )
    testbed.detach()


if __name__ == "__main__":
    main()
