#!/usr/bin/env python
"""Protecting a latency-sensitive web server from a memory leak (Fig 14).

A web server fills most of a machine's memory while system services leak
memory in ``system.slice``.  Kswapd and direct reclaim push pages to swap
through the shared (old-generation) SSD; how the IO controller treats that
reclaim writeback decides whether the web server thrashes:

* non-MM-aware mechanisms (mq-deadline, bfq) see the swap storm in the
  reclaim context and cannot protect the web server's fault path;
* iolatency protects via its latency target (when the target happens to be
  tuned right for this device);
* iocost charges the storm to the leaking slice as debt and throttles the
  leaker at the return-to-userspace boundary (§3.5).

Run:  python examples/memory_leak_protection.py
"""

from repro.analysis.report import Table
from repro.core.qos import QoSParams
from repro.testbed import Testbed
from repro.workloads.memleak import MemoryLeaker
from repro.workloads.rcbench import WebServer

MB = 1024 * 1024
DURATION = 25.0
MEM = 1024 * MB


def run_once(controller_name: str, with_leak: bool, **controller_kwargs) -> float:
    qos = QoSParams(
        read_lat_target=5e-3, read_pct=90, vrate_min=0.4, vrate_max=2.0, period=0.05
    )
    testbed = Testbed(
        device="ssd_old",
        controller=controller_name,
        qos=qos,
        mem_bytes=MEM,
        swap_bytes=8192 * MB,
        # Production pairs IO control with partial memory.low protection of
        # the workload slice (paper SS5: "comprehensive isolation only by
        # doing both memory and IO controls together").
        protected={"workload.slice/web": 320 * MB},
        seed=7,
        **controller_kwargs,
    )
    web_group = testbed.add_cgroup("workload.slice/web", weight=500)
    web = WebServer(
        testbed.sim, testbed.layer, testbed.mm, web_group,
        working_set=640 * MB, load=0.9, workers=8,
        touch_per_request=512 * 1024, stop_at=DURATION,
    ).start()
    if with_leak:
        for index in range(3):
            MemoryLeaker(
                testbed.sim, testbed.layer, testbed.mm,
                testbed.cgroups.lookup("system.slice"),
                rate_bps=1024 * MB, chunk=8 * MB,
                stop_at=DURATION, seed=100 + index,
            ).start()
    testbed.run(DURATION)
    testbed.detach()
    # Steady-state RPS over the second half of the run.
    return web.rps_series.mean(10.0, DURATION)


def main() -> None:
    print("measuring baseline (no leak) under iocost...")
    baseline = run_once("iocost", with_leak=False)
    print(f"baseline web-server throughput: {baseline:,.0f} RPS\n")

    configs = [
        ("mq-deadline", {}),
        ("bfq", {}),
        # A fleet-generic iolatency target; see the paper's §5 on how
        # per-device target tuning is what made iolatency unmanageable.
        ("iolatency", {"targets": {"workload.slice/web": 10e-3}}),
        ("iocost", {}),
    ]
    table = Table(
        "Web-server RPS retained while system services leak memory",
        ["controller", "RPS", "retained"],
    )
    for name, kwargs in configs:
        print(f"running {name} + memory leak...")
        rps = run_once(name, with_leak=True, **kwargs)
        table.add_row(name, f"{rps:,.0f}", f"{rps / baseline:.0%}")
    table.print()
    print(
        "\npaper shape (Figure 14): bfq collapses, mq-deadline suffers,"
        " iolatency holds moderately, iocost retains >= 80%."
    )


if __name__ == "__main__":
    main()
