#!/usr/bin/env python
"""Watching vrate absorb cost-model error online (paper §3.3, Figure 13).

A workload saturates an SSD with 4 KiB random reads under a p90 read
latency QoS target.  One third of the way in, the cost-model parameters
are halved online (claiming the device is half as capable); two thirds in,
they are set to double the original.  The vrate trace — rendered as an
ASCII chart — shows the controller compensating: ~100%, then ~200%, then
~50%, with the latency target held throughout.

Run:  python examples/vrate_adjustment.py
"""

import numpy as np

from repro.analysis.figures import render_series
from repro.block.device import Device
from repro.block.device_models import SSD_NEW
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.qos import QoSParams
from repro.sim import Simulator
from repro.workloads.synthetic import ClosedLoopWorkload

SPEC = SSD_NEW.scaled(0.1)
PHASE = 4.0
TARGET = 2.5e-3


def main() -> None:
    sim = Simulator()
    device = Device(sim, SPEC, np.random.default_rng(2))
    accurate = ModelParams.from_device_spec(SPEC)
    model = LinearCostModel(accurate)
    controller = IOCost(
        model,
        qos=QoSParams(
            read_lat_target=TARGET, read_pct=90, write_lat_target=None,
            vrate_min=0.1, vrate_max=4.0, period=0.05,
        ),
    )
    layer = BlockLayer(sim, device, controller)
    group = CgroupTree().create("fio")
    ClosedLoopWorkload(sim, layer, group, depth=64, stop_at=3 * PHASE, seed=1).start()

    print("phase 1: accurate model parameters...")
    sim.run(until=PHASE)
    print("phase 2: halving model parameters online...")
    model.replace_params(accurate.scaled(0.5))
    sim.run(until=2 * PHASE)
    print("phase 3: doubling model parameters online...")
    model.replace_params(accurate.scaled(2.0))
    sim.run(until=3 * PHASE)
    controller.detach()

    print()
    print(
        render_series(
            controller.vrate_ctl.vrate_series,
            title="vrate over time (Figure 13)",
            markers=[(PHASE, "params halved"), (2 * PHASE, "params doubled")],
        )
    )
    print()
    print(
        render_series(
            controller.vrate_ctl.read_lat_series,
            title=f"read p90 latency (target {TARGET * 1e3:.1f} ms)",
        )
    )


if __name__ == "__main__":
    main()
