#!/usr/bin/env python
"""A declarative QoS-grid sweep through the experiment runner (repro.exp).

Sweeps a latency-QoS protected/background scenario over two device
generations and three p90 read-latency targets (6 cells), runs it across
a worker pool, then re-runs the identical sweep to show every cell served
from the content-addressed result cache.

Artifacts (spec/result/meta per run) land under <store>/runs/; see
docs/EXPERIMENTS_RUNNER.md for the layout and cache-key semantics.

Run:  python examples/sweep_qos_grid.py [store-dir] [--workers N]
"""

import argparse
import tempfile

from repro.analysis.report import Table
from repro.exp import ExperimentSpec, run_sweep
from repro.exp.cli import wall_clock

SPEC = ExperimentSpec(
    name="qos-grid",
    kind="testbed",
    base={
        "device": "ssd_new",
        "device_scale": 0.1,
        "controller": "iocost",
        "duration": 0.5,
        "qos": {"read_pct": 90, "vrate_min": 0.25, "vrate_max": 2.0},
        "cgroups": {"protected": 500, "background": 100},
        "workloads": [
            {"cgroup": "protected", "type": "think_time", "think_time": 200e-6},
            {"cgroup": "background", "type": "saturate", "depth": 64},
        ],
    },
    grid={
        "device": ["ssd_new", "ssd_old"],
        "qos.read_lat_target": [0.4e-3, 1.0e-3, 2.5e-3],
    },
)


def print_report(title, report):
    table = Table(title, ["device", "lat target", "source",
                          "prot p90", "prot iops", "bg iops"])
    for axes, result in report.results_by_axes():
        outcome = next(
            o for o in report.outcomes if o.run.axes == axes
        )
        protected = result["cgroups"]["protected"]
        background = result["cgroups"]["background"]
        p90 = protected["read_p90"]
        table.add_row(
            axes["device"],
            f"{axes['qos.read_lat_target'] * 1e3:.1f} ms",
            "cache" if outcome.cached else "executed",
            f"{p90 * 1e3:.2f} ms" if p90 is not None else "-",
            f"{protected['iops']:,.0f}",
            f"{background['iops']:,.0f}",
        )
    table.print()
    print(
        f"{report.runs_total} cells: {report.cache_hits} cached, "
        f"{report.executed} executed in {report.elapsed_wall_sec:.1f}s\n"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("store", nargs="?", default=None,
                        help="artifact store root (default: a temp dir)")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()
    store = args.store or tempfile.mkdtemp(prefix="repro-exp-")

    spec = SPEC
    # The sweep carries a percentile matching the QoS target's read_pct.
    base = dict(spec.base)
    base["percentiles"] = [90]
    spec = ExperimentSpec.from_dict({**spec.to_dict(), "base": base})

    print(f"artifact store: {store}\n")
    report = run_sweep(spec, store, workers=args.workers, clock=wall_clock)
    print_report("QoS grid — first invocation (cold cache)", report)

    report = run_sweep(spec, store, workers=args.workers, clock=wall_clock)
    print_report("QoS grid — second invocation (warm cache)", report)
    print(
        "tighter targets clamp vrate sooner: the background saturator "
        "gives up throughput to hold the protected group's p90 (§3.3)."
    )


if __name__ == "__main__":
    main()
