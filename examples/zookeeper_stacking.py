#!/usr/bin/env python
"""Stacked ZooKeeper ensembles with a noisy neighbour (paper §4.6, Fig 16).

Twelve five-participant ensembles share five machines (no two participants
of one ensemble co-hosted).  Eleven are well-behaved (100 KB payloads); the
twelfth writes 300 KB payloads and dumps 3x-sized snapshots — the noisy
neighbour.  Snapshots of the in-memory database fire every ``snapshot_every``
transactions, producing momentary write spikes even under nominal load.
We count violations of a one-second P99 SLO for the well-behaved ensembles.

Scaled down from the paper's 6-hour run on enterprise SSDs to minutes on a
1/40-speed device; snapshot cadence is scaled to preserve burst frequency.

Run:  python examples/zookeeper_stacking.py
"""

from repro.analysis.report import Table
from repro.block.device_models import get_device_spec
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.controller import IOCost
from repro.core.qos import QoSParams
from repro.controllers.bfq import BFQController
from repro.controllers.blk_throttle import BlkThrottleController, ThrottleLimits
from repro.controllers.iolatency import IOLatencyController
from repro.sim import Simulator
from repro.workloads.zookeeper import Machine, ZooKeeperEnsemble

KB = 1024
DURATION = 240.0
N_MACHINES = 5
N_ENSEMBLES = 12
SPEC = get_device_spec("ssd_enterprise").scaled(0.025)


def controller_factory(name: str):
    if name == "iocost":
        # Weights only; QoS holds the device at a consistent operating
        # point (targets sized to this device's service times).
        return lambda: IOCost(
            LinearCostModel(ModelParams.from_device_spec(SPEC)),
            qos=QoSParams(
                read_lat_target=25e-3, read_pct=90,
                write_lat_target=250e-3, write_pct=90,
                vrate_min=0.5, vrate_max=1.2, period=0.05,
            ),
        )
    if name == "bfq":
        return BFQController
    if name == "iolatency":
        # The paper: "we tuned per-cgroup latency targets in an attempt to
        # achieve the desired distribution" — equal-priority ensembles end
        # up with staggered targets, and the looser tier gets crushed.
        return lambda: IOLatencyController(
            {
                f"workload.slice/ens{i}": (80e-3 if i < 6 else 160e-3)
                for i in range(N_ENSEMBLES)
            }
        )
    if name == "blk-throttle":
        # Caps sized ~3x steady-state demand: fine until a snapshot burst.
        return lambda: BlkThrottleController(
            {
                f"workload.slice/ens{i}": ThrottleLimits(wbps=4e6)
                for i in range(N_ENSEMBLES)
            }
        )
    raise ValueError(name)


def run_once(name: str):
    sim = Simulator()
    machines = [
        Machine(sim, SPEC, controller_factory(name), name=f"m{i}", seed=i)
        for i in range(N_MACHINES)
    ]
    ensembles = []
    for index in range(N_ENSEMBLES):
        noisy = index == N_ENSEMBLES - 1
        ensembles.append(
            ZooKeeperEnsemble(
                sim,
                machines,
                f"ens{index}",
                read_rps=50,
                write_rps=8,
                payload=(300 if noisy else 100) * KB,
                snapshot_every=400,
                snapshot_bytes=(72 if noisy else 24) * 1024 * KB,
                snapshot_chunk=64 * KB,
                stop_at=DURATION,
                seed=1000 + index,
            ).start()
        )
    sim.run(until=DURATION)
    for machine in machines:
        machine.controller.detach()

    violations = []
    for ensemble in ensembles[:-1]:  # the well-behaved eleven
        violations.extend(ensemble.slo_violations(slo=1.0))
    return violations


def main() -> None:
    table = Table(
        f"1s-SLO violations of the 11 well-behaved ensembles ({DURATION:.0f}s simulated)",
        ["controller", "violations", "longest (s)", "peak p99 (s)"],
    )
    for name in ("blk-throttle", "bfq", "iolatency", "iocost"):
        print(f"running {name}...")
        violations = run_once(name)
        longest = max((duration for _, duration, _ in violations), default=0.0)
        peak = max((p for _, _, p in violations), default=0.0)
        table.add_row(name, len(violations), f"{longest:.1f}", f"{peak:.2f}")
    table.print()
    print(
        "\npaper shape (Figure 16): blk-throttle most violations (78, some"
        " lasting tens of seconds), iolatency 31, bfq 13, iocost only 2"
        " marginal ones (~1.0-1.5s peaks)."
    )


if __name__ == "__main__":
    main()
