#!/usr/bin/env python
"""The Figures 18/19 staged migration, driven through the fleet scheduler.

Builds a small region (two host groups on the paper's fleet device),
measures container-cleanup durations under IOLatency and IOCost via
sharded, cached machine simulations, then walks the scheduler's staged
rollout week by week: `FleetScheduler.migration_order` decides *which*
hosts flip each week, and the weekly failure Monte Carlo draws every
(week, group, cohort) from its own labeled substream.

The printed table is the Figure 19 shape in miniature: the failure rate
collapses as the IOCost fraction ramps to 100%.  Re-running against the
same store is free — the duration simulations are ordinary
content-addressed `repro.exp` cells.

Run:  python examples/fleet_migration.py [store-dir] [--workers N]
"""

import argparse
import tempfile

from repro.analysis.report import Table
from repro.exp.cli import wall_clock
from repro.fleet import FleetSpec
from repro.fleet.runner import run_staged_migration

#: The paper's fleet device (benchmarks/test_fig18_package_fetch.py), as
#: an inline spec table so it rides through the content-addressed cells.
FLEETDEV = {
    "parallelism": 4,
    "read_bw": 500e6,
    "write_bw": 500e6,
    "srv_seq_read": 100e-6,
    "srv_rand_read": 100e-6,
    "srv_seq_write": 100e-6,
    "srv_rand_write": 100e-6,
    "sigma": 0.1,
    "nr_slots": 64,
}

SPEC = FleetSpec.from_dict({
    "name": "example-migration",
    "seed": 42,
    "capacity": "rated",
    "hosts": {
        "web": {"count": 24, "device": dict(FLEETDEV)},
        "cache": {"count": 16, "device": dict(FLEETDEV)},
    },
    "workloads": [],
    "migration": {
        "schedule": [0.0, 0.25, 0.5, 0.75, 1.0],
        "task": "container_cleanup",
        "samples": 3,
        "tasks_per_host_week": 20,
        "settle": 0.3,
    },
})


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("store", nargs="?", default=None,
                        help="artifact store (default: a temp dir)")
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()
    store = args.store or tempfile.mkdtemp(prefix="fleet-migration-")

    report = run_staged_migration(
        SPEC, store, workers=args.workers, clock=wall_clock
    )

    table = Table(
        f"Staged {report.from_controller} -> {report.to_controller} rollout "
        f"({report.task}, deadline {report.deadline:g}s, "
        f"{SPEC.host_count} hosts)",
        ["week", "scheduled", "migrated", "attempts", "failures", "rate"],
    )
    for week in report.weeks:
        table.add_row(
            week.week,
            f"{week.scheduled_fraction:.0%}",
            week.migrated_hosts,
            week.attempts,
            week.failures,
            f"{week.failure_rate:.2%}",
        )
    table.print()

    for key, values in sorted(report.durations.items()):
        durations = ", ".join(f"{value:.2f}s" for value in sorted(values))
        print(f"{key}: {durations}")
    print(f"\nstore: {store} (re-run to see every cell cached)")


if __name__ == "__main__":
    main()
