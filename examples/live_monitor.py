#!/usr/bin/env python
"""Watching two weighted workloads through the live monitor.

Two saturating random-read workloads share a scaled-down SSD under IOCost
with a 2:1 weight split.  A :class:`repro.tools.monitor.Monitor` rides the
run, capturing one snapshot per planning period — vrate, busy level and a
per-cgroup table (hweight, usage, wait, debt) exactly like the kernel's
``iocost_monitor.py``.  Snapshots stream to a JSONL file that the CLI can
re-render later:

    python examples/live_monitor.py
    python -m repro.tools.monitor live_monitor.jsonl --last 2
"""

from repro.block.device_models import SSD_OLD
from repro.core.qos import QoSParams
from repro.obs.snapshot import render_snapshot
from repro.testbed import Testbed
from repro.tools.monitor import Monitor

OUT = "live_monitor.jsonl"
RUNTIME = 6.0

# Tight QoS (as in the Figure 10 benchmark) so vrate holds the device where
# the 2:1 weight budgets actually bind.
QOS = QoSParams(
    read_lat_target=180e-6, read_pct=90, vrate_min=0.25, vrate_max=1.5, period=0.025
)


def main() -> None:
    bed = Testbed(SSD_OLD, "iocost", qos=QOS, seed=7)
    high = bed.add_cgroup("workload.slice/high", weight=200)
    low = bed.add_cgroup("workload.slice/low", weight=100)
    bed.latency_governed(high, latency_target=200e-6, stop_at=RUNTIME)
    bed.latency_governed(low, latency_target=200e-6, stop_at=RUNTIME)

    with open(OUT, "w") as stream:
        monitor = Monitor(bed, stream=stream).start()
        bed.sim.run(until=RUNTIME)
        monitor.stop()
        bed.controller.detach()

    # Render a few snapshots from along the run.
    picks = [monitor.snapshots[i] for i in (4, len(monitor.snapshots) // 2, -1)]
    for snapshot in picks:
        print(render_snapshot(snapshot))
        print()

    last = monitor.snapshots[-1].groups
    ratio = (
        last["workload.slice/high"]["rbytes"] / last["workload.slice/low"]["rbytes"]
    )
    print(f"captured {len(monitor.snapshots)} snapshots into {OUT}")
    print(f"cumulative rbytes ratio high:low = {ratio:.2f} (weights 200:100)")


if __name__ == "__main__":
    main()
