#!/usr/bin/env python
"""A two-device machine: data on a local SSD, swap on a cloud volume.

The kernel instantiates one iocost per block device; this example builds
the simulation equivalent — one machine, two devices (``vda`` = local SSD,
``vdb`` = EBS-style network volume), each with its own iocost instance,
sharing one cgroup tree:

* a latency-governed workload reads from ``vda``;
* a paced log writer targets ``vdb``;
* memory is overcommitted and swap is placed on ``vdb``, so reclaim
  writeback competes with the log writer on the cloud volume while the
  SSD workload stays untouched;
* a monitor rides the run, producing one snapshot stream per device, and
  per-cgroup ``io.stat`` comes out with one ``maj:min`` line per device.

Run it:

    python examples/multi_device.py
    python -m repro.tools.monitor multi_device.jsonl --device 8:16 --last 2
"""

from repro.block.bio import IOOp
from repro.obs.iostat import IOStat
from repro.testbed import Testbed
from repro.tools.monitor import Monitor

MB = 1 << 20
OUT = "multi_device.jsonl"
RUNTIME = 4.0


def main() -> None:
    bed = Testbed(
        devices={"vda": "ssd_old", "vdb": "ebs_gp3"},
        controllers={"vda": "iocost", "vdb": "iocost"},
        mem_bytes=256 * MB,
        swap_bytes=1024 * MB,
        swap_device="vdb",
        seed=7,
    )
    app = bed.add_cgroup("workload.slice/app", weight=200)
    logger = bed.add_cgroup("system.slice/logger", weight=100)

    # Data IO on the SSD; log shipping on the cloud volume.
    bed.latency_governed(app, device="vda", latency_target=200e-6, stop_at=RUNTIME)
    bed.paced(logger, rate=400, device="vdb", op=IOOp.WRITE, size=64 * 1024,
              stop_at=RUNTIME)

    # Overcommit memory so reclaim swaps the app's cold pages out to vdb.
    def hog(cgroup, nbytes):
        yield from bed.mm.alloc(cgroup, nbytes)

    bed.sim.process(hog(app, 200 * MB))
    bed.sim.process(hog(logger, 120 * MB))

    with open(OUT, "w") as stream:
        monitor = Monitor(bed, stream=stream).start()
        bed.run(RUNTIME)
        monitor.stop()
    bed.detach()

    for name in bed.devices.names():
        layer = bed.devices.layer(name)
        snaps = monitor.snapshots_for(name)
        print(
            f"{name} ({layer.dev}, {layer.device.spec.name}): "
            f"vrate={layer.controller.vrate:.2f} "
            f"snapshots={len(snaps)}"
        )

    iostat = IOStat(bed.cgroups, controllers=bed.devices.controllers_by_devno())
    for path in ("workload.slice/app", "system.slice/logger"):
        print(f"\nio.stat of {path}:")
        print(iostat.render(path))

    swapped = bed.mm.state_of(app).swapped_out_total
    print(f"\napp bytes swapped out to vdb: {swapped / MB:.1f} MB")
    print(f"snapshot stream written to {OUT}")


if __name__ == "__main__":
    main()
