#!/usr/bin/env python
"""Offline device profiling and cost-model generation (paper §3.2).

Reproduces the workflow of the open-sourced iocost tooling: run saturating
fio-style workloads against a device, fit the six linear-model parameters,
print the ``io.cost.model`` configuration line (Figure 6 format), and show
what individual IOs cost under the fitted model.

Run:  python examples/device_profiling.py [device-name]
"""

import sys

from repro.analysis.report import Table, format_si
from repro.block.bio import Bio, IOOp
from repro.block.device_models import get_device_spec
from repro.cgroup import CgroupTree
from repro.core.profiler import profile_device


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "ssd_old"
    spec = get_device_spec(name)
    print(f"profiling device model {name!r} (saturating sweeps)...")
    profile = profile_device(spec)

    print("\nfitted io.cost.model configuration (Figure 6 format):")
    print(f"  {profile.config_line()}")

    table = Table(f"Measured parameters — {name}", ["parameter", "value"])
    table.add_row("random read IOPS (4k)", format_si(profile.rrandiops))
    table.add_row("sequential read IOPS (4k)", format_si(profile.rseqiops))
    table.add_row("read bandwidth", format_si(profile.rbps, "B/s"))
    table.add_row("random write IOPS (4k)", format_si(profile.wrandiops))
    table.add_row("sequential write IOPS (4k)", format_si(profile.wseqiops))
    table.add_row("write bandwidth (sustained)", format_si(profile.wbps, "B/s"))
    table.print()

    # Price a few representative IOs with the fitted model.
    model = profile.to_cost_model()
    group = CgroupTree().create("pricing")
    table = Table("IO occupancy costs under the fitted model", ["io", "cost", "max/sec"])
    for label, op, size, seq in (
        ("4 KiB random read", IOOp.READ, 4096, False),
        ("4 KiB sequential read", IOOp.READ, 4096, True),
        ("128 KiB random read", IOOp.READ, 128 * 1024, False),
        ("4 KiB random write", IOOp.WRITE, 4096, False),
        ("1 MiB sequential write", IOOp.WRITE, 1 << 20, True),
    ):
        bio = Bio(op, size, 0, group)
        bio.sequential = seq
        cost = model.cost(bio)
        table.add_row(label, f"{cost * 1e6:.1f} us", f"{1 / cost:,.0f}")
    table.print()
    print(
        "\nnote: cost is an occupancy estimate, not a latency — a cost of"
        " 20ms means the device absorbs 50 such IOs per second (§3.1)."
    )


if __name__ == "__main__":
    main()
