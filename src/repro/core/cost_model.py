"""Device cost modelling (paper §3.2).

The cost of an IO is an *occupancy* estimate in seconds: a cost of 20 ms
means the device can service 50 such requests per second, independent of how
long any one of them takes.  IOCost natively supports the linear model of
Equation (1):

    io_cost = base_cost + size_cost_rate * bio_size

with one of four base costs picked by (read/write × random/sequential) and
one of two size rates picked by read/write.

Configuration uses the same convenient parameter format as the kernel
(Figure 6): read/write bytes-per-second plus sequential and random 4 KiB
IOPS, translated internally via Equations (2)–(3):

    size_cost_rate = 1 / Bps
    base_cost      = 1 / IOPS_4k  -  size_cost_rate * 4096

Arbitrary models (the kernel's eBPF escape hatch) plug in through the
:class:`CostModel` protocol — anything with a ``cost(bio) -> float``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.block.bio import Bio
    from repro.block.device import DeviceSpec

PAGE = 4096


@runtime_checkable
class CostModel(Protocol):
    """Anything that can price a bio in seconds of device occupancy."""

    def cost(self, bio: "Bio") -> float:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class ModelParams:
    """The six linear-model parameters in kernel configuration format.

    Attributes mirror the ``io.cost.model`` keys: ``rbps``/``wbps`` are
    sustained sequential bytes per second; ``rseqiops``/``rrandiops`` and
    ``wseqiops``/``wrandiops`` are 4 KiB IOPS.
    """

    rbps: float
    rseqiops: float
    rrandiops: float
    wbps: float
    wseqiops: float
    wrandiops: float

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    # -- Equation (2)/(3) translations -------------------------------------

    @property
    def r_size_rate(self) -> float:
        """Read size cost rate, seconds per byte."""
        return 1.0 / self.rbps

    @property
    def w_size_rate(self) -> float:
        return 1.0 / self.wbps

    def _base(self, iops: float, size_rate: float) -> float:
        base = 1.0 / iops - size_rate * PAGE
        # A device whose 4k IOPS is transfer-bound can give a non-positive
        # base; clamp like the kernel does rather than produce negative cost.
        return max(base, 0.0)

    @property
    def r_seq_base(self) -> float:
        return self._base(self.rseqiops, self.r_size_rate)

    @property
    def r_rand_base(self) -> float:
        return self._base(self.rrandiops, self.r_size_rate)

    @property
    def w_seq_base(self) -> float:
        return self._base(self.wseqiops, self.w_size_rate)

    @property
    def w_rand_base(self) -> float:
        return self._base(self.wrandiops, self.w_size_rate)

    def scaled(self, factor: float) -> "ModelParams":
        """Params claiming the device is ``factor``× as capable.

        Used by the Figure 13 experiment, which halves and doubles the model
        online to show vrate compensating for model error.
        """
        return ModelParams(
            rbps=self.rbps * factor,
            rseqiops=self.rseqiops * factor,
            rrandiops=self.rrandiops * factor,
            wbps=self.wbps * factor,
            wseqiops=self.wseqiops * factor,
            wrandiops=self.wrandiops * factor,
        )

    @classmethod
    def from_device_spec(cls, spec: "DeviceSpec") -> "ModelParams":
        """Exact parameters for a simulated device (oracle calibration).

        Production flows derive params with :func:`repro.core.profiler.profile_device`;
        this shortcut exists for tests and for experiments that *want* a
        perfect model as the starting point (e.g. Figure 13).
        """
        return cls(
            rbps=spec.read_bw,
            rseqiops=spec.peak_seq_read_iops,
            rrandiops=spec.peak_rand_read_iops,
            wbps=spec.write_bw,
            wseqiops=spec.peak_seq_write_iops,
            wrandiops=spec.peak_rand_write_iops,
        )


class LinearCostModel:
    """Equation (1) over :class:`ModelParams`, with live replacement.

    ``replace_params`` supports the kernel's online model updates (used by
    the Figure 13 experiment); the controller need not be restarted.
    """

    def __init__(self, params: ModelParams) -> None:
        self.params = params
        self._load(params)

    def _load(self, params: ModelParams) -> None:
        self._r_rate = params.r_size_rate
        self._w_rate = params.w_size_rate
        self._bases = {
            (False, False): params.r_rand_base,
            (False, True): params.r_seq_base,
            (True, False): params.w_rand_base,
            (True, True): params.w_seq_base,
        }

    def replace_params(self, params: ModelParams) -> None:
        """Swap the model parameters online."""
        self.params = params
        self._load(params)

    def cost(self, bio: "Bio") -> float:
        """Absolute occupancy cost of ``bio`` in seconds."""
        base = self._bases[(bio.is_write, bio.sequential)]
        rate = self._w_rate if bio.is_write else self._r_rate
        return base + rate * bio.nbytes
