"""The work-conserving budget-donation algorithm (paper §3.6).

Each planning period, groups that used less than their hweight donate the
excess.  Donation is implemented purely as *weight* adjustments along the
paths from donating leaves to the root, so:

1. the issue path stays local (hweights are recalculated lazily from the
   generation number),
2. total issued IO never exceeds what vrate dictates (no budget is created,
   only redistributed), and
3. a donor can rescind locally at issue time.

The weight updates preserve the paper's two invariants.  With ``w`` weight,
``s`` the summed weight of the parent's children, ``h`` hweight, ``d`` the
total hweight of donating leaves in the subtree, primes denoting
post-donation values and ``p`` subscripts the parent:

* Equation (4): the proportion of a parent's non-donating hweight is
  unchanged — ``(h - d) / (h_p - d_p) = (h' - d') / (h'_p - d'_p)``.
* Equation (5): the summed weight of non-donating siblings is unchanged —
  ``s (h_p - d_p) / h_p = s' (h'_p - d'_p) / h'_p``.

which yield, walking down each donation path:

1. ``h' = ((h - d) / (h_p - d_p)) (h'_p - d'_p) + d'``
2. ``s' = s ((h_p - d_p) / h_p) (h'_p / (h'_p - d'_p))``
3. ``w' = s' (h' / h'_p)``

Only nodes on donor paths get new weights; every other group's hweight
comes out correct from its *unchanged* weight when lazily recomputed — the
property that makes donation cheap on large hierarchies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.hierarchy import GroupState, WeightTree
from repro.obs.trace import TRACE

_TP_DONATION = TRACE.points["donation_recalc"]

#: Effective weights are clamped here to avoid degenerate zero shares.
MIN_EFFECTIVE_WEIGHT = 1e-6


@dataclass
class DonationResult:
    """What a donation pass changed, for inspection and tests."""

    #: Post-donation hweight per path-node (keyed by cgroup path).
    hweight_after: Dict[str, float] = field(default_factory=dict)
    #: New effective weights along donor paths (keyed by cgroup path).
    weight_after: Dict[str, float] = field(default_factory=dict)
    #: Total hweight transferred away from donors.
    donated_total: float = 0.0


def compute_donations(
    tree: WeightTree,
    targets: Dict[GroupState, float],
    now: Optional[float] = None,
    dev: Optional[str] = None,
) -> DonationResult:
    """Apply budget donation for the given donors.

    ``targets`` maps donating leaf states to the hweight they should keep
    (their ``d'``).  Effective weights must be at base values (call
    :meth:`WeightTree.refresh_base_weights` first).  Mutates the tree's
    effective weights along donor paths and bumps the generation.

    ``now`` (simulated seconds) timestamps the ``donation_recalc``
    tracepoint; omitting it stamps 0.0.  ``dev`` tags the event with the
    owning device's ``maj:min`` id on multi-device machines.
    """
    result = DonationResult()
    if not targets:
        return result

    # Pre-donation hweights for every node on a donor path (and parents).
    pre_h: Dict[GroupState, float] = {}
    d: Dict[GroupState, float] = {}
    d_prime: Dict[GroupState, float] = {}

    for leaf, keep in targets.items():
        leaf_h = tree.hweight(leaf)
        if keep > leaf_h:
            raise ValueError(
                f"donation target {keep} exceeds current hweight {leaf_h} "
                f"for {leaf.cgroup.path!r}"
            )
        node = leaf
        while node is not None:
            pre_h.setdefault(node, tree.hweight(node))
            d[node] = d.get(node, 0.0) + leaf_h
            d_prime[node] = d_prime.get(node, 0.0) + keep
            node = node.parent

    root = tree.root
    if root is None:
        raise ValueError("donation pass requires a rooted weight tree")
    result.donated_total = d[root] - d_prime[root]

    # Post-donation hweights, computed top-down along donor paths.
    post_h: Dict[GroupState, float] = {root: pre_h[root]}

    # Breadth-first down the donor paths: parents before children.
    frontier: List[GroupState] = [root]
    while frontier:
        parent = frontier.pop(0)
        h_p, hp_prime = pre_h[parent], post_h[parent]
        d_p, dp_prime = d[parent], d_prime[parent]
        # Pre-donation sibling weight sum, snapshotted before any child on
        # this level gets its effective weight rewritten.
        s = sum(
            sibling.weight_eff
            for sibling in parent.children.values()
            if sibling.active_refs > 0
        )
        for child in parent.children.values():
            if child not in d:
                continue  # not on a donor path; weight unchanged
            h, keep = pre_h[child], d_prime[child]
            non_donor = h_p - d_p
            if non_donor <= 0:
                # Everything under the parent donates; the child's share is
                # exactly what its donors keep.
                h_prime = keep
            else:
                h_prime = ((h - d[child]) / non_donor) * (hp_prime - dp_prime) + keep

            post_non_donor = hp_prime - dp_prime
            if non_donor <= 0 or post_non_donor <= 0:
                s_prime = s
            else:
                s_prime = s * (non_donor / h_p) * (hp_prime / post_non_donor)

            if hp_prime > 0:
                w_prime = s_prime * (h_prime / hp_prime)
            else:
                w_prime = MIN_EFFECTIVE_WEIGHT

            child.weight_eff = max(w_prime, MIN_EFFECTIVE_WEIGHT)
            child.donating = True
            post_h[child] = h_prime
            result.hweight_after[child.cgroup.path] = h_prime
            result.weight_after[child.cgroup.path] = child.weight_eff
            frontier.append(child)

    tree.bump()
    if _TP_DONATION.enabled:
        fields = dict(
            donors=[leaf.cgroup.path for leaf in targets],
            donated_total=result.donated_total,
        )
        if dev is not None:
            fields["dev"] = dev
        _TP_DONATION.emit(now if now is not None else 0.0, **fields)
    return result
