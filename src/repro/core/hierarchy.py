"""Hierarchical weight state: hweight compounding, caching, activity.

``hweight`` is a cgroup's ultimate share of the device: the product, walking
up the hierarchy, of its weight over the sum of its *active* siblings'
weights (§3.1).  Recomputing that on every IO would put tree walks on the
hot path, so results are cached per group and keyed on a *weight-tree
generation number* which bumps whenever anything that affects hweights
changes: weight updates, activations/deactivations, donation adjustments.

A group is *active* while it issues IO; after a full planning period with no
IO it is deactivated and drops out of sibling sums — idle groups implicitly
donate their budget (§3.1.1).  Activity is reference-counted up the tree so
internal nodes stay active while any descendant is.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Iterator, List, Optional

from repro.cgroup import Cgroup

if TYPE_CHECKING:  # pragma: no cover
    from repro.block.bio import Bio
    from repro.sim import Event


class GroupState:
    """IOCost's per-cgroup state (the kernel's ``ioc_gq`` analogue)."""

    def __init__(self, cgroup: Cgroup, parent: Optional["GroupState"]) -> None:
        self.cgroup = cgroup
        self.parent = parent
        # Creation ordinal: the issue path visits backlogged groups in this
        # order, matching the old full-scan order over the states dict.
        self.seq = 0
        self.children: Dict[str, GroupState] = {}
        # Effective weight: the configured weight, lowered while donating.
        self.weight_eff: float = float(cgroup.weight)
        self.donating = False
        # Count of active groups in this subtree (including self).
        self.active_refs = 0
        self.active = False
        # Issue-path state.
        self.local_vtime = 0.0
        self.waitq: Deque["Bio"] = deque()
        self.wake_event: Optional["Event"] = None
        # Planning-path accounting (reset each period).
        self.abs_usage = 0.0
        self.period_ios = 0
        # Lifetime accounting: the per-period values are folded in here by
        # the planning path before the in-place reset, and surfaced through
        # the io.stat ``cost.*`` keys (repro.obs.iostat).
        self.usage_total = 0.0
        self.ios_total = 0
        self.indebt_total = 0.0   # wall seconds observed in debt
        self.indelay_total = 0.0  # wall seconds of userspace-boundary delay
        # Debt in relative-vtime seconds beyond global vtime (see debt.py).
        # Hweight cache (and its cached reciprocal — the issue path charges
        # ``abs_cost / hweight`` per bio, so the division is hoisted here).
        self._hw_gen = -1
        self._hw_value = 0.0
        self._hw_inv_gen = -1
        self._hw_inv = 0.0

    @property
    def is_leaf_like(self) -> bool:
        """True when no active child exists (donation considers only these)."""
        return not any(child.active_refs > 0 for child in self.children.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GroupState({self.cgroup.path or '/'}, w_eff={self.weight_eff:.2f})"


class WeightTree:
    """The IOCost view of the cgroup hierarchy."""

    def __init__(self) -> None:
        self.generation = 0
        self._states: Dict[str, GroupState] = {}
        self.root: Optional[GroupState] = None

    # -- state management ---------------------------------------------------

    def state_of(self, cgroup: Cgroup) -> GroupState:
        """Get or create the state chain for ``cgroup`` up to the root."""
        state = self._states.get(cgroup.path)
        if state is not None:
            return state
        parent_state = None
        if cgroup.parent is not None:
            parent_state = self.state_of(cgroup.parent)
        state = GroupState(cgroup, parent_state)
        state.seq = len(self._states)
        self._states[cgroup.path] = state
        if parent_state is not None:
            parent_state.children[cgroup.name] = state
        else:
            self.root = state
        self.bump()
        return state

    def lookup(self, path: str) -> Optional[GroupState]:
        return self._states.get(path)

    def states(self) -> Iterator[GroupState]:
        return iter(self._states.values())

    def active_leaves(self) -> List[GroupState]:
        """Active groups with no active children (donation candidates)."""
        return [
            state
            for state in self._states.values()
            if state.active and state.is_leaf_like
        ]

    # -- generation ----------------------------------------------------------

    def bump(self) -> None:
        """Invalidate all cached hweights."""
        self.generation += 1

    # -- activity --------------------------------------------------------------

    def activate(self, state: GroupState) -> None:
        """Mark a group active (it issued IO).  No-op if already active."""
        if state.active:
            return
        state.active = True
        node: Optional[GroupState] = state
        while node is not None:
            node.active_refs += 1
            node = node.parent
        self.bump()

    def deactivate(self, state: GroupState) -> None:
        """Mark a group inactive (a full period passed with no IO)."""
        if not state.active:
            return
        state.active = False
        node: Optional[GroupState] = state
        while node is not None:
            node.active_refs -= 1
            node = node.parent
        self.bump()

    # -- hweight ------------------------------------------------------------------

    def hweight(self, state: GroupState) -> float:
        """The group's share of the device, compounded over active siblings.

        Cached; cost is O(depth) on a generation change and O(1) otherwise.
        An inactive group's hweight is what it *would* get were it to
        activate alongside the currently-active set.
        """
        if state._hw_gen == self.generation:
            return state._hw_value
        if state.parent is None:
            value = 1.0
        else:
            siblings = sum(
                child.weight_eff
                for child in state.parent.children.values()
                if child.active_refs > 0 or child is state
            )
            if siblings <= 0:
                value = 0.0
            else:
                value = self.hweight(state.parent) * state.weight_eff / siblings
        state._hw_gen = self.generation
        state._hw_value = value
        return value

    def hweight_inv(self, state: GroupState) -> float:
        """Cached ``1.0 / hweight(state)`` (``inf`` for a zero hweight).

        The per-bio charge is ``abs_cost / hweight``; caching the
        reciprocal alongside the hweight turns that into a multiply on the
        issue fast path.  Same generation keying as :meth:`hweight`.
        """
        if state._hw_inv_gen == self.generation:
            return state._hw_inv
        hweight = self.hweight(state)
        inv = 1.0 / hweight if hweight > 0 else float("inf")
        state._hw_inv_gen = self.generation
        state._hw_inv = inv
        return inv

    # -- weight updates ------------------------------------------------------------

    def refresh_base_weights(self) -> None:
        """Reset effective weights to the configured cgroup weights.

        The planning path calls this before recomputing donations, which
        also picks up any ``cgroup.weight`` changes made since last period.
        """
        for state in self._states.values():
            state.weight_eff = float(state.cgroup.weight)
            state.donating = False
        self.bump()

    def rescind(self, state: GroupState) -> None:
        """Issue-path donation rescind (§3.6 requirement 3).

        Restores configured weights along the donor's path to the root.  The
        paper propagates an exact partial update; restoring the full base
        weight on the path is a conservative approximation that lasts at
        most one planning period (donations are recomputed every period).
        """
        node: Optional[GroupState] = state
        while node is not None:
            node.weight_eff = float(node.cgroup.weight)
            node.donating = False
            node = node.parent
        self.bump()
