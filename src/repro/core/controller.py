"""The IOCost controller: fast issue path + periodic planning path (§3.1).

**Issue path** (per bio, microsecond scale): price the bio with the device
cost model, divide by the issuing group's cached hweight to get the relative
cost, and compare against the group's budget — the gap between global and
local vtime.  Enough budget → dispatch immediately and advance local vtime;
otherwise the bio waits until global vtime progresses far enough (a timer is
armed for exactly that moment).  All state touched is local to the group.

**Planning path** (per period, millisecond scale): deactivate idle groups,
tally per-group usage and recompute budget donations (§3.6), and adjust
vrate from the device-level QoS signals (§3.3).

Swap/journal bios follow the §3.5 debt protocol, selectable via
:class:`~repro.core.debt.SwapChargeMode` for the Figure 15 ablations.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Optional

from repro.analysis.stats import LatencyWindow
from repro.block.bio import Bio, BioFlags
from repro.cgroup import Cgroup
from repro.controllers.base import Features, IOController
from repro.core.cost_model import CostModel
from repro.core.debt import DebtConfig, DebtTracker, SwapChargeMode
from repro.core.donation import compute_donations
from repro.core.hierarchy import GroupState, WeightTree
from repro.core.qos import QoSParams, VRateController
from repro.core.vtime import VTimeClock
from repro.obs.prof import PROF
from repro.obs.trace import TRACE
from repro.sanitize import SANITIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.block.layer import BlockLayer

#: Bios carrying these flags bypass budget under the debt protocol.
URGENT_FLAGS = BioFlags.SWAP | BioFlags.JOURNAL
#: Integer value of URGENT_FLAGS: the enqueue fast path tests flag bits as
#: ints because ``Flag.__and__`` constructs an enum member per call.
_URGENT_VAL = URGENT_FLAGS.value

#: A leaf using less than this fraction of its hweight becomes a donor.
DONATION_THRESHOLD = 0.9
#: Headroom multiplier on a donor's kept budget, so it can grow back a bit
#: before needing to rescind.
DONATION_HEADROOM = 1.2
#: Minimum fraction of its hweight a donor always keeps.
DONATION_MIN_KEEP = 0.02

_INF = float("inf")


def _group_seq(state: GroupState) -> int:
    """Sort key: visit backlogged groups in creation order (see pump)."""
    return state.seq


class IOCost(IOController):
    """Work-conserving, low-overhead, proportional IO controller."""

    name = "iocost"
    features = Features(
        low_overhead="yes",
        work_conserving="yes",
        memory_management_aware="yes",
        proportional_fairness="yes",
        cgroup_control="yes",
    )
    #: Modeled serialized CPU cost of the issue fast path (Fig 9): a few
    #: arithmetic ops and a cached hweight lookup.
    issue_overhead = 0.6e-6

    def __init__(
        self,
        cost_model: CostModel,
        qos: QoSParams = QoSParams(),
        swap_mode: SwapChargeMode = SwapChargeMode.DEBT,
        donation_enabled: bool = True,
        debt_config: DebtConfig = DebtConfig(),
        initial_vrate: float = 1.0,
    ) -> None:
        super().__init__()
        self.model = cost_model
        self.qos = qos
        self.swap_mode = swap_mode
        self.donation_enabled = donation_enabled
        self._debt_config = debt_config
        self._initial_vrate = initial_vrate

        self.tree = WeightTree()
        self.clock: VTimeClock = None  # type: ignore[assignment]
        self.vrate_ctl: VRateController = None  # type: ignore[assignment]
        self.debt: DebtTracker = None  # type: ignore[assignment]
        #: Budget cap in vtime seconds: how much unused budget a group may
        #: bank (prevents long-idle-then-burst overshoot).
        self.budget_cap = qos.period

        self._urgent: Deque[Bio] = deque()
        #: Groups whose waitq is non-empty (docs/PERF.md): ``pump()`` runs
        #: ~2× per bio, so it must not scan every group state.  Maintained
        #: at the two waitq touch points (enqueue append, _try_issue
        #: popleft); visited in group-creation order, matching the old
        #: full scan over the states dict.
        self._backlogged: Dict[GroupState, None] = {}
        self._plan_timer = None
        # Period counters.
        self._budget_blocked_events = 0
        # Lifetime statistics.
        self.urgent_ios = 0
        self.debt_charged = 0.0
        self.rescinds = 0
        self.donation_passes = 0
        #: Terminally failed bios observed at completion, and the absolute
        #: cost they paid (charged at enqueue; never refunded on failure).
        self.failed_ios = 0
        self.failed_cost = 0.0
        # Cached tracepoints (single flag check each when tracing is off).
        self._tp_debt = TRACE.points["debt_pay"]
        self._tp_vrate = TRACE.points["vrate_adjust"]
        self._tp_period = TRACE.points["qos_period"]
        # Cached self-profiler (same zero-cost guard, repro.obs.prof).
        self._prof = PROF
        # Cached sanitizer: cost-conservation ledger + vtime monotonicity
        # (repro.sanitize), audited from the planning path.
        self._san = SANITIZE

    # -- lifecycle ------------------------------------------------------------

    def attach(self, layer: "BlockLayer") -> None:
        super().attach(layer)
        sim = layer.sim
        self.clock = VTimeClock(sim, self._initial_vrate)
        self.vrate_ctl = VRateController(self.clock, self.qos)
        self.debt = DebtTracker(self.clock, self._debt_config)
        # QoS latency windows scaled to the planning period, so each
        # adjustment acts on fresh samples (the block layer's own windows
        # serve measurement and are much wider).
        window = 3 * self.qos.period
        self._read_window = LatencyWindow(window)
        self._write_window = LatencyWindow(window)
        self._plan_timer = sim.schedule(self.qos.period, self._plan)

    def detach(self) -> None:
        if self._plan_timer is not None:
            self._plan_timer.cancel()
            self._plan_timer = None
        for state in self.tree.states():
            if state.wake_event is not None:
                state.wake_event.cancel()
                state.wake_event = None

    # -- configuration ------------------------------------------------------------

    def set_weight(self, cgroup: Cgroup, weight: int) -> None:
        """Update a cgroup's weight with immediate effect."""
        cgroup.weight = weight
        state = self.tree.lookup(cgroup.path)
        if state is not None and not state.donating:
            state.weight_eff = float(weight)
        self.tree.bump()

    def hweight_of(self, cgroup: Cgroup) -> float:
        """Current hierarchical weight share of a cgroup (diagnostic)."""
        return self.tree.hweight(self.tree.state_of(cgroup))

    def userspace_delay(self, cgroup: Cgroup) -> float:
        """§3.5 return-to-userspace debt throttle, called by the MM layer."""
        state = self.tree.lookup(cgroup.path)
        if state is None:
            return 0.0
        delay = self.debt.userspace_delay(state)
        if delay > 0 and self._tp_debt.enabled:
            self._tp_debt.emit(
                self.layer.sim.now,
                dev=self.layer.dev,
                cgroup=cgroup.path,
                kind="userspace_delay",
                amount=delay,
                debt=self.debt.debt_walltime(state),
            )
        return delay

    # -- issue path ------------------------------------------------------------

    def enqueue(self, bio: Bio) -> None:
        group = self.tree.state_of(bio.cgroup)
        bio.abs_cost = self.model.cost(bio)
        if self._san.enabled:
            self._san.note_incurred(id(self), bio.abs_cost)
        if not group.active:
            self._activate(group)
        group.period_ios += 1

        # Only reclaim-side *writes* (swap-out, journal) are the §3.5
        # priority-inversion case: they complete on behalf of some other
        # cgroup.  Swap-in reads are synchronous for the faulting cgroup
        # itself and are throttled like any other IO.
        urgent = bio.is_write and (bio.flags.value & _URGENT_VAL) != 0
        if urgent and self.swap_mode is not SwapChargeMode.ORIGIN_THROTTLE:
            if self.swap_mode is SwapChargeMode.DEBT:
                # Charge the owner: local vtime runs ahead (debt), but the
                # bio itself is never blocked on budget.
                hweight = self.tree.hweight(group)
                if hweight > 0:
                    relative = bio.abs_cost / hweight
                    group.local_vtime = (
                        max(group.local_vtime, self.clock.now()) + relative
                    )
                    self.debt_charged += bio.abs_cost
                    if self._tp_debt.enabled:
                        self._tp_debt.emit(
                            self.layer.sim.now,
                            dev=self.layer.dev,
                            cgroup=group.cgroup.path,
                            kind="charge",
                            amount=bio.abs_cost,
                            debt=self.debt.debt_walltime(group),
                        )
                group.abs_usage += bio.abs_cost
            else:  # SwapChargeMode.ROOT: free IO, charged to nobody.
                root = self.tree.root
                if root is not None:
                    root.abs_usage += bio.abs_cost
            # Either way the cost has left the queue-side ledger: DEBT
            # charged the owner, ROOT deliberately wrote it off.
            if self._san.enabled:
                self._san.note_charged(id(self), bio.abs_cost)
            self.urgent_ios += 1
            self._urgent.append(bio)
            return

        if not group.waitq:
            self._backlogged[group] = None
        group.waitq.append(bio)

    def pump(self) -> None:
        layer = self.layer
        if self._prof.enabled:
            self._prof.pump_calls += 1
        # Urgent (swap/journal) bios first: they bypass budget entirely.
        if self._urgent:
            while self._urgent and layer.can_dispatch():
                layer.dispatch(self._urgent.popleft())
        # Ordered cheapest-check-first: the completion-side pump usually
        # finds nothing backlogged and must cost two truth tests.
        backlogged = self._backlogged
        if not backlogged:
            return
        if not layer.can_dispatch():
            return
        if len(backlogged) == 1:
            # The common case: one group waiting on budget.  _try_issue
            # drops it from the map itself when the waitq drains.
            self._try_issue(next(iter(backlogged)))
            return
        for state in sorted(backlogged, key=_group_seq):
            if state.waitq:
                self._try_issue(state)
                if not layer.can_dispatch():
                    break

    def _activate(self, group: GroupState) -> None:
        if group.active:
            return
        self.tree.activate(group)
        # A newly-active group starts with zero budget and zero debt.
        group.local_vtime = max(group.local_vtime, self.clock.now())

    def _try_issue(self, group: GroupState) -> None:
        layer = self.layer
        tree = self.tree
        waitq = group.waitq
        while waitq and layer.can_dispatch():
            bio = waitq[0]
            # Cached reciprocal: the per-bio charge is a multiply, not a
            # division (hierarchy.hweight_inv, same generation keying as
            # the hweight cache itself).
            inv_hweight = tree.hweight_inv(group)
            if inv_hweight == _INF:
                break
            relative = bio.abs_cost * inv_hweight
            # A donor whose donated share cannot even afford this IO from a
            # full budget bank rescinds *before* issuing — otherwise the
            # oversize-issue rule below would charge a catastrophically
            # inflated relative cost against the shrunken weight.
            if group.donating and relative > self.budget_cap:
                tree.rescind(group)
                self.rescinds += 1
                continue
            now_v = self.clock.now()
            # Cap banked budget.
            floor = now_v - self.budget_cap
            if group.local_vtime < floor:
                group.local_vtime = floor
            budget = now_v - group.local_vtime
            # An IO whose relative cost exceeds the budget cap could never
            # accumulate enough budget; it issues once the bank is full and
            # charges the full cost forward (transiently negative budget),
            # which preserves the group's long-run rate.
            need = min(relative, self.budget_cap)
            if budget + 1e-12 >= need:
                group.local_vtime += relative
                group.abs_usage += bio.abs_cost
                if self._san.enabled:
                    self._san.note_charged(id(self), bio.abs_cost)
                waitq.popleft()
                layer.dispatch(bio)
            else:
                if group.donating:
                    # §3.6: a donor whose budget runs low rescinds locally
                    # in the issue path and retries with restored weight.
                    tree.rescind(group)
                    self.rescinds += 1
                    continue
                self._budget_blocked_events += 1
                self.note_throttle(bio, "budget")
                self._arm_wake(group, need - budget)
                break
        if not waitq:
            self._backlogged.pop(group, None)

    def _arm_wake(self, group: GroupState, vtime_gap: float) -> None:
        if group.wake_event is not None:
            group.wake_event.cancel()
        delay = self.clock.wall_delay_for(vtime_gap)
        group.wake_event = self.layer.sim.schedule(delay, self._wake, group)

    def _wake(self, group: GroupState) -> None:
        group.wake_event = None
        self.pump()

    def on_complete(self, bio: Bio) -> None:
        # Failed bios (device errors, timeouts — see docs/FAULTS.md) flow
        # through here too: their degraded latency lands in the QoS windows,
        # so the vrate loop reacts to a misbehaving device the same way it
        # reacts to a saturated one.  Their cost was charged at enqueue and
        # is never refunded — errored IO still pays (graceful degradation).
        latency = bio.device_latency
        if not bio.ok:
            self.failed_ios += 1
            self.failed_cost += bio.abs_cost
        if bio.is_write:
            self._write_window.record(self.layer.sim.now, latency)
        else:
            self._read_window.record(self.layer.sim.now, latency)

    # -- planning path ------------------------------------------------------------

    def _plan(self) -> None:
        sim = self.layer.sim
        if self._prof.enabled:
            self._prof.plan_ticks += 1
        if self._san.enabled:
            self._audit()
        self._deactivate_idle()
        if self.donation_enabled:
            self._recompute_donations()
        prev_saturations = self.vrate_ctl.saturation_events
        prev_starvations = self.vrate_ctl.starvation_events
        vrate = self.vrate_ctl.adjust(
            sim.now,
            self._read_window,
            self._write_window,
            self.layer.slot_utilization,
            budget_starved=self._budget_blocked_events > 0,
        )
        if self._tp_vrate.enabled:
            self._tp_vrate.emit(
                sim.now,
                dev=self.layer.dev,
                vrate=vrate,
                busy_level=self.vrate_ctl.busy_level,
                saturated=self.vrate_ctl.saturation_events > prev_saturations,
                starved=self.vrate_ctl.starvation_events > prev_starvations,
                read_p=self._read_window.percentile(sim.now, self.qos.read_pct),
                write_p=self._write_window.percentile(sim.now, self.qos.write_pct),
            )
        # Fold the per-period counters into the lifetime statistics before
        # the in-place reset; the io.stat surface reads the totals.
        now_v = self.clock.now()
        active_groups = 0
        for state in self.tree.states():
            if state.active:
                active_groups += 1
            state.usage_total += state.abs_usage
            state.ios_total += state.period_ios
            if state.local_vtime > now_v:
                state.indebt_total += self.qos.period
            state.abs_usage = 0.0
            state.period_ios = 0
        if self._tp_period.enabled:
            self._tp_period.emit(
                sim.now,
                dev=self.layer.dev,
                period=self.qos.period,
                vrate=vrate,
                active_groups=active_groups,
                budget_blocked=self._budget_blocked_events,
            )
        self._budget_blocked_events = 0
        self.pump()
        self._plan_timer = sim.schedule(self.qos.period, self._plan)

    def _audit(self) -> None:
        """Per-period sanitizer audit (only called while SANITIZE is on):
        cost conservation across the whole tree, vtime monotonicity per
        group.  Urgent bios were charged at enqueue, so only budget-waitq
        bios count as pending."""
        san = self._san
        pending = 0.0
        for state in self.tree.states():
            for queued in state.waitq:
                pending += queued.abs_cost
            san.check_vtime(id(self), state.cgroup.path, state.local_vtime)
        san.check_conservation(id(self), pending, self.layer.dev)

    def _deactivate_idle(self) -> None:
        for state in list(self.tree.states()):
            if state.active and state.period_ios == 0 and not state.waitq:
                self.tree.deactivate(state)

    def _recompute_donations(self) -> None:
        self.tree.refresh_base_weights()
        capacity = self.qos.period * self.clock.vrate
        if capacity <= 0:
            return
        targets = {}
        for leaf in self.tree.active_leaves():
            if leaf.waitq:
                continue  # backlogged groups obviously want their share
            hweight = self.tree.hweight(leaf)
            if hweight <= 0:
                continue
            used_share = leaf.abs_usage / capacity
            if used_share < hweight * DONATION_THRESHOLD:
                keep = min(
                    hweight,
                    max(used_share * DONATION_HEADROOM, hweight * DONATION_MIN_KEEP),
                )
                targets[leaf] = keep
        if targets:
            compute_donations(
                self.tree, targets, now=self.layer.sim.now, dev=self.layer.dev
            )
            self.donation_passes += 1

    # -- introspection ------------------------------------------------------------

    @property
    def vrate(self) -> float:
        return self.clock.vrate

    def cost_stat(self, cgroup: Cgroup) -> dict:
        """Kernel iocost io.stat keys for one cgroup.

        Surfaces the lifetime statistics the planning path accumulates
        before its per-period reset (they used to dead-end there):

        * ``cost.vrate`` — current global vrate (same for every cgroup);
        * ``cost.usage`` — lifetime absolute cost issued (device seconds);
        * ``cost.ios`` — lifetime IOs seen by the issue path;
        * ``cost.wait`` — wall seconds the cgroup's bios waited above the
          device (from the block layer's completion accounting);
        * ``cost.indebt`` — wall seconds observed in §3.5 debt;
        * ``cost.indelay`` — wall seconds of userspace-boundary delay.
        """
        stat = super().cost_stat(cgroup)
        stat["cost.vrate"] = self.clock.vrate if self.clock is not None else 1.0
        state = self.tree.lookup(cgroup.path)
        if state is None:
            stat.update({
                "cost.usage": 0.0, "cost.ios": 0, "cost.wait": 0.0,
                "cost.indebt": 0.0, "cost.indelay": 0.0,
            })
            return stat
        stat.update({
            # Include the running period's partial usage so the surface is
            # monotone between planning ticks.
            "cost.usage": state.usage_total + state.abs_usage,
            "cost.ios": state.ios_total + state.period_ios,
            "cost.wait": cgroup.stats.wait_total,
            "cost.indebt": state.indebt_total,
            "cost.indelay": state.indelay_total,
        })
        return stat

    def stat(self, cgroup: Cgroup) -> dict:
        """Kernel ``io.cost.stat``-style snapshot for one cgroup.

        Keys: ``active``, ``weight`` (configured), ``weight_eff``
        (donation-adjusted), ``hweight``, ``budget`` (vtime seconds of
        headroom; negative = in debt), ``debt_walltime``, ``queued``
        (bios waiting on budget), ``donating``.
        """
        state = self.tree.lookup(cgroup.path)
        if state is None:
            return {
                "active": False,
                "weight": cgroup.weight,
                "weight_eff": float(cgroup.weight),
                "hweight": 0.0,
                "budget": 0.0,
                "debt_walltime": 0.0,
                "queued": 0,
                "donating": False,
            }
        return {
            "active": state.active,
            "weight": cgroup.weight,
            "weight_eff": state.weight_eff,
            "hweight": self.tree.hweight(state),
            "budget": self.clock.now() - state.local_vtime,
            "debt_walltime": self.debt.debt_walltime(state),
            "queued": len(state.waitq),
            "donating": state.donating,
        }
