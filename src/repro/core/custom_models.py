"""Custom cost models — the "arbitrary eBPF program" escape hatch (§3.2).

The kernel allows replacing the linear model with an arbitrary eBPF
program.  The Python equivalent is anything satisfying the
:class:`~repro.core.cost_model.CostModel` protocol; this module ships the
useful prebuilt shapes:

* :class:`TableCostModel` — per-size-bucket cost tables per IO class, for
  devices whose cost curve is distinctly non-linear (e.g. a large internal
  stripe size, or read-modify-write cliffs).
* :class:`PiecewiseLinearCostModel` — linear segments between breakpoints.
* :class:`CallableCostModel` — wrap any ``f(bio) -> seconds``.

All compose with :class:`~repro.core.controller.IOCost` unchanged — the
controller only ever calls ``cost(bio)``.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Sequence, Tuple

from repro.block.bio import Bio

#: IO classes keyed like the linear model: (is_write, sequential).
IOClass = Tuple[bool, bool]


class CallableCostModel:
    """Wrap an arbitrary function as a cost model."""

    def __init__(self, fn: Callable[[Bio], float]) -> None:
        self._fn = fn

    def cost(self, bio: Bio) -> float:
        value = self._fn(bio)
        if value <= 0:
            raise ValueError(f"cost function returned non-positive {value}")
        return value


class TableCostModel:
    """Step-function cost per IO class over size buckets.

    ``tables`` maps an IO class to a sorted list of ``(max_bytes, cost)``
    entries; an IO falls into the first bucket whose ``max_bytes`` is >=
    its size.  IOs beyond the last bucket are charged pro-rata by size
    (the last bucket's bytes-per-second rate).
    """

    def __init__(self, tables: Dict[IOClass, Sequence[Tuple[int, float]]]) -> None:
        if not tables:
            raise ValueError("need at least one IO-class table")
        self._tables: Dict[IOClass, List[Tuple[int, float]]] = {}
        for io_class, entries in tables.items():
            entries = sorted(entries)
            if not entries:
                raise ValueError(f"empty table for {io_class}")
            if any(cost <= 0 or size <= 0 for size, cost in entries):
                raise ValueError("table entries must be positive")
            self._tables[io_class] = list(entries)

    def _table_for(self, bio: Bio) -> List[Tuple[int, float]]:
        io_class = (bio.is_write, bio.sequential)
        table = self._tables.get(io_class)
        if table is None:
            # Fall back to the direction-only table if present.
            table = self._tables.get((bio.is_write, False)) or next(
                iter(self._tables.values())
            )
        return table

    def cost(self, bio: Bio) -> float:
        table = self._table_for(bio)
        sizes = [size for size, _ in table]
        index = bisect.bisect_left(sizes, bio.nbytes)
        if index < len(table):
            return table[index][1]
        # Beyond the table: extrapolate at the last bucket's byte rate.
        last_size, last_cost = table[-1]
        return last_cost * (bio.nbytes / last_size)


class PiecewiseLinearCostModel:
    """Linear interpolation between (bytes, cost) breakpoints per class."""

    def __init__(self, segments: Dict[IOClass, Sequence[Tuple[int, float]]]) -> None:
        if not segments:
            raise ValueError("need at least one IO-class segment list")
        self._segments: Dict[IOClass, List[Tuple[int, float]]] = {}
        for io_class, points in segments.items():
            points = sorted(points)
            if len(points) < 2:
                raise ValueError(f"need >=2 breakpoints for {io_class}")
            if any(cost <= 0 for _, cost in points):
                raise ValueError("costs must be positive")
            self._segments[io_class] = list(points)

    def cost(self, bio: Bio) -> float:
        io_class = (bio.is_write, bio.sequential)
        points = self._segments.get(io_class) or next(iter(self._segments.values()))
        sizes = [size for size, _ in points]
        nbytes = bio.nbytes
        if nbytes <= sizes[0]:
            return points[0][1]
        if nbytes >= sizes[-1]:
            # Extrapolate along the final segment's slope.
            (x0, y0), (x1, y1) = points[-2], points[-1]
            slope = (y1 - y0) / (x1 - x0)
            return max(y1 + slope * (nbytes - x1), 1e-12)
        index = bisect.bisect_right(sizes, nbytes)
        (x0, y0), (x1, y1) = points[index - 1], points[index]
        frac = (nbytes - x0) / (x1 - x0)
        return y0 + frac * (y1 - y0)
