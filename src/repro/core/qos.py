"""QoS parameters and dynamic vrate adjustment (paper §3.3).

Simple linear models cannot capture modern SSDs (caching, reordering,
garbage collection), so IOCost adjusts the global ``vrate`` on two signals:

* **device saturation** — the configured completion-latency percentile
  exceeds its target, or in-flight requests deplete the available request
  slots → lower vrate;
* **budget deficiency** — the kernel could issue more IO (bios are waiting
  on budget) while the device is *not* saturated → raise vrate.

``vrate`` is bounded by administrator-configured ``vrate_min``/``vrate_max``
(derived per device with :mod:`repro.core.qos_tuning`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.stats import LatencyWindow, TimeSeries
from repro.core.vtime import VTimeClock


@dataclass(frozen=True)
class QoSParams:
    """Per-device QoS configuration (the kernel's ``io.cost.qos`` analogue).

    ``read_lat_target``/``write_lat_target`` of ``None`` disable the
    corresponding latency signal (the paper's "QoS disabled" overhead runs).
    ``vrate_min``/``vrate_max`` are fractions (1.0 = 100%).
    """

    read_lat_target: Optional[float] = 5e-3
    read_pct: float = 95.0
    write_lat_target: Optional[float] = 20e-3
    write_pct: float = 95.0
    vrate_min: float = 0.25
    vrate_max: float = 4.0
    period: float = 0.05
    #: Request-slot utilisation treated as depletion (saturation signal).
    slot_depletion_threshold: float = 0.95

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0 < self.vrate_min <= self.vrate_max:
            raise ValueError("need 0 < vrate_min <= vrate_max")
        for pct in (self.read_pct, self.write_pct):
            if not 0 < pct <= 100:
                raise ValueError("percentiles must be in (0, 100]")


class VRateController:
    """Periodic vrate adjustment driven by saturation/starvation signals."""

    #: Multiplicative step when raising vrate (device idle + budget-starved).
    RAISE_FACTOR = 1.05
    #: Hardest single-period cut when saturated.
    MAX_CUT = 0.7

    #: Bounds for the diagnostic busy level (kernel iocost keeps ±16 too).
    BUSY_LEVEL_LIMIT = 16

    def __init__(self, clock: VTimeClock, qos: QoSParams) -> None:
        self.clock = clock
        self.qos = qos
        self.vrate_series = TimeSeries("vrate")
        self.read_lat_series = TimeSeries("read_latency")
        self.saturation_events = 0
        self.starvation_events = 0
        # Diagnostic only (the kernel's ``busy_level``, what iocost_monitor
        # prints as ``busy=+N``): consecutive saturated periods push it up,
        # starved periods push it down, quiet periods decay it toward 0.
        # It feeds no control decision here.
        self.busy_level = 0

    # -- signal extraction ---------------------------------------------------

    def _latency_violation(
        self, now: float, window: LatencyWindow, target: Optional[float], pct: float
    ) -> Optional[float]:
        """Return observed/target ratio if violating, else None."""
        if target is None:
            return None
        observed = window.percentile(now, pct)
        if observed is None:
            return None
        if observed > target:
            return observed / target
        return None

    # -- adjustment ---------------------------------------------------------

    def adjust(
        self,
        now: float,
        read_window: LatencyWindow,
        write_window: LatencyWindow,
        slot_utilization: float,
        budget_starved: bool,
    ) -> float:
        """One planning-period adjustment; returns the new vrate."""
        qos = self.qos
        read_excess = self._latency_violation(
            now, read_window, qos.read_lat_target, qos.read_pct
        )
        write_excess = self._latency_violation(
            now, write_window, qos.write_lat_target, qos.write_pct
        )
        depleted = slot_utilization >= qos.slot_depletion_threshold

        vrate = self.clock.vrate
        excess = max(read_excess or 0.0, write_excess or 0.0)
        if excess > 0 or depleted:
            self.saturation_events += 1
            self.busy_level = min(self.busy_level + 1, self.BUSY_LEVEL_LIMIT)
            if excess > 0:
                # Cut proportionally to how far over target we are, bounded.
                cut = max(self.MAX_CUT, min(0.95, 1.0 / excess ** 0.5))
            else:
                cut = 0.9
            vrate *= cut
        elif budget_starved:
            self.starvation_events += 1
            self.busy_level = max(self.busy_level - 1, -self.BUSY_LEVEL_LIMIT)
            vrate *= self.RAISE_FACTOR
        elif self.busy_level > 0:
            self.busy_level -= 1
        elif self.busy_level < 0:
            self.busy_level += 1

        vrate = min(max(vrate, qos.vrate_min), qos.vrate_max)
        if vrate != self.clock.vrate:
            self.clock.set_vrate(vrate)

        self.vrate_series.record(now, vrate)
        read_p = read_window.percentile(now, qos.read_pct)
        if read_p is not None:
            self.read_lat_series.record(now, read_p)
        return vrate
