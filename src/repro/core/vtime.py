"""The global virtual-time clock (paper §3.1, step ④).

Global ``vtime`` progresses with the (simulated) wall clock at a rate set by
``vrate``: at vrate 1.5 the clock generates budget 1.5× faster than the
device cost model nominally allows.  Each cgroup's *local* vtime advances by
the relative cost of every IO it issues; the gap ``global - local`` is the
group's available budget.

The clock is piecewise linear: ``set_vrate`` re-anchors the line so past
vtime is unaffected and future vtime accrues at the new rate.
"""

from __future__ import annotations

from repro.sim import Simulator


class VTimeClock:
    """Piecewise-linear virtual clock over a simulator's wall clock."""

    def __init__(self, sim: Simulator, vrate: float = 1.0) -> None:
        if vrate <= 0:
            raise ValueError("vrate must be positive")
        self.sim = sim
        self._vrate = vrate
        self._anchor_wall = sim.now
        self._anchor_vtime = 0.0

    @property
    def vrate(self) -> float:
        return self._vrate

    def set_vrate(self, vrate: float) -> None:
        """Change the rate from now on (history is preserved)."""
        if vrate <= 0:
            raise ValueError("vrate must be positive")
        self._anchor_vtime = self.now()
        self._anchor_wall = self.sim.now
        self._vrate = vrate

    def now(self) -> float:
        """Current global vtime."""
        return self._anchor_vtime + (self.sim.now - self._anchor_wall) * self._vrate

    def wall_delay_for(self, vtime_gap: float) -> float:
        """Wall-clock seconds until vtime advances by ``vtime_gap``."""
        if vtime_gap <= 0:
            return 0.0
        return vtime_gap / self._vrate
