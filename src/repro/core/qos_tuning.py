"""Systematic QoS-parameter tuning with ResourceControlBench (paper §3.4).

Two scenarios, swept across pinned vrate values, bound the production vrate
range for a device:

1. **Solo / throughput scenario** — ResourceControlBench runs alone with a
   working set larger than memory, so paging throughput limits performance.
   As vrate drops, throughput drops.  The *upper* bound is the smallest
   vrate above which more throughput "results in no meaningful advantages
   for memory overcommit" (the RPS plateau).

2. **Protection scenario** — ResourceControlBench runs alongside a
   memory leak in the system slice.  As vrate is lowered, IO control
   improves "until ResourceControlBench's latency is sufficiently
   protected from thrashing".  The *lower* bound is the largest vrate that
   still meets the latency threshold (below it no further control
   improvements are needed).

``tune_qos`` runs both sweeps on simulated machines and returns the bounded
:class:`~repro.core.qos.QoSParams`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree, make_meta_hierarchy
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.qos import QoSParams
from repro.sim import Simulator

MB = 1024 * 1024

DEFAULT_VRATE_CANDIDATES = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0)


@dataclass
class TuningResult:
    """Sweep data plus the derived bounds."""

    device: str
    candidates: List[float]
    solo_rps: Dict[float, float]
    protected_p95: Dict[float, float]
    vrate_min: float
    vrate_max: float

    def to_qos(self, base: Optional[QoSParams] = None) -> QoSParams:
        base = base or QoSParams()
        return replace(base, vrate_min=self.vrate_min, vrate_max=self.vrate_max)


def _pinned_iocost(params: ModelParams, vrate: float, period: float) -> IOCost:
    qos = QoSParams(
        read_lat_target=None,
        write_lat_target=None,
        vrate_min=vrate,
        vrate_max=vrate,
        period=period,
    )
    return IOCost(LinearCostModel(params), qos=qos, initial_vrate=vrate)


def _make_machine(
    spec: DeviceSpec, params: ModelParams, vrate: float, seed: int
) -> Tuple[Simulator, BlockLayer, IOCost, CgroupTree]:
    from repro.mm.memory import MemoryManager

    sim = Simulator()
    device = Device(sim, spec, np.random.default_rng(seed))
    controller = _pinned_iocost(params, vrate, period=0.05)
    layer = BlockLayer(sim, device, controller)
    cgroups = make_meta_hierarchy()
    return sim, layer, controller, cgroups


def _solo_rps(
    spec: DeviceSpec,
    params: ModelParams,
    vrate: float,
    duration: float,
    total_mem: int,
    seed: int,
) -> float:
    """Scenario 1: paging-bound RCBench alone; returns steady-state RPS."""
    from repro.mm.memory import MemoryManager
    from repro.workloads.rcbench import ResourceControlBench

    sim, layer, controller, cgroups = _make_machine(spec, params, vrate, seed)
    mm = MemoryManager(sim, layer, total_bytes=total_mem, swap_bytes=64 * total_mem)
    bench_group = cgroups.get_or_create("workload.slice/rcbench", weight=500)
    bench = ResourceControlBench(
        sim,
        layer,
        mm,
        bench_group,
        load=1.0,
        working_set=int(total_mem * 1.3),  # paging-bound by construction
        stop_at=duration,
        seed=seed + 1,
    ).start()
    sim.run(until=duration)
    controller.detach()
    half = duration / 2
    if len(bench.rps_series.slice(half, duration)) == 0:
        return 0.0
    return bench.rps_series.mean(half, duration)


def _protected_p95(
    spec: DeviceSpec,
    params: ModelParams,
    vrate: float,
    duration: float,
    total_mem: int,
    seed: int,
) -> float:
    """Scenario 2: RCBench vs memory leak; returns RCBench p95 latency."""
    from repro.mm.memory import MemoryManager
    from repro.workloads.memleak import MemoryLeaker
    from repro.workloads.rcbench import ResourceControlBench

    sim, layer, controller, cgroups = _make_machine(spec, params, vrate, seed)
    mm = MemoryManager(sim, layer, total_bytes=total_mem, swap_bytes=64 * total_mem)
    bench_group = cgroups.get_or_create("workload.slice/rcbench", weight=500)
    leak_group = cgroups.lookup("system.slice")
    bench = ResourceControlBench(
        sim,
        layer,
        mm,
        bench_group,
        load=0.7,
        working_set=int(total_mem * 0.6),
        stop_at=duration,
        seed=seed + 1,
    ).start()
    MemoryLeaker(
        sim, layer, mm, leak_group, rate_bps=total_mem / 2.0, stop_at=duration, seed=seed + 2
    ).start()
    sim.run(until=duration)
    controller.detach()
    p95 = bench.request_percentile(95, last=500)
    return p95 if p95 is not None else float("inf")


def tune_qos(
    spec: DeviceSpec,
    params: Optional[ModelParams] = None,
    candidates: Sequence[float] = DEFAULT_VRATE_CANDIDATES,
    latency_threshold: float = 75e-3,
    rps_plateau_fraction: float = 0.95,
    duration: float = 10.0,
    total_mem: int = 256 * MB,
    seed: int = 0,
) -> TuningResult:
    """Derive vrate bounds for a device (paper §3.4, simplified)."""
    params = params or ModelParams.from_device_spec(spec)
    candidates = sorted(candidates)
    solo = {
        v: _solo_rps(spec, params, v, duration, total_mem, seed) for v in candidates
    }
    protected = {
        v: _protected_p95(spec, params, v, duration, total_mem, seed + 1000)
        for v in candidates
    }

    # Upper bound: smallest vrate reaching the RPS plateau.
    best_rps = max(solo.values()) or 1.0
    vrate_max = candidates[-1]
    for v in candidates:
        if solo[v] >= rps_plateau_fraction * best_rps:
            vrate_max = v
            break

    # Lower bound: largest vrate whose latency is still protected.
    vrate_min = candidates[0]
    for v in reversed(candidates):
        if protected[v] <= latency_threshold:
            vrate_min = v
            break

    if vrate_min > vrate_max:
        vrate_min = vrate_max
    return TuningResult(
        device=spec.name,
        candidates=list(candidates),
        solo_rps=solo,
        protected_p95=protected,
        vrate_min=vrate_min,
        vrate_max=vrate_max,
    )
