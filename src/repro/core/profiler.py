"""Offline device profiling (paper §3.2, Figure 5 step ⑧).

Derives the six linear-model parameters for a device by running saturating
workloads against it — the reproduction of the paper's fio-based tooling
("issuing as many 4KB random reads as possible to determine the base cost
for random reads").  Six phases:

* 4 KiB random reads / sequential reads → ``rrandiops`` / ``rseqiops``
* 1 MiB sequential reads → ``rbps``
* same three for writes → ``wrandiops`` / ``wseqiops`` / ``wbps``

Write phases run longer so garbage-collection reaches steady state: the
parameters must capture *sustainable* peak performance, not burst.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.block.bio import Bio, IOOp
from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.controllers.noop import NoopController
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.sim import Simulator

SEQ_IO_SIZE = 1 << 20  # 1 MiB transfers for the bandwidth phases
PAGE = 4096


@dataclass(frozen=True)
class DeviceProfile:
    """Measured device parameters in kernel configuration format."""

    device: str
    rbps: float
    rseqiops: float
    rrandiops: float
    wbps: float
    wseqiops: float
    wrandiops: float
    # Convenience latency observations (used by the Fig 3 bench).
    read_lat_p50: float
    write_lat_p50: float

    def to_model_params(self) -> ModelParams:
        return ModelParams(
            rbps=self.rbps,
            rseqiops=self.rseqiops,
            rrandiops=self.rrandiops,
            wbps=self.wbps,
            wseqiops=self.wseqiops,
            wrandiops=self.wrandiops,
        )

    def to_cost_model(self) -> LinearCostModel:
        return LinearCostModel(self.to_model_params())

    def config_line(self) -> str:
        """The Figure 6 configuration string for this device."""
        return (
            f"rbps={self.rbps:.0f} rseqiops={self.rseqiops:.0f} "
            f"rrandiops={self.rrandiops:.0f} wbps={self.wbps:.0f} "
            f"wseqiops={self.wseqiops:.0f} wrandiops={self.wrandiops:.0f}"
        )


def _saturate(
    spec: DeviceSpec,
    op: IOOp,
    sequential: bool,
    io_size: int,
    duration: float,
    seed: int,
    warmup: float = 0.05,
) -> tuple:
    """Closed-loop saturation run; returns (iops, bps, p50_latency)."""
    sim = Simulator()
    rng = np.random.default_rng(seed)
    device = Device(sim, spec, np.random.default_rng(seed + 1))
    layer = BlockLayer(sim, device, NoopController(), latency_window=duration + warmup)
    group = CgroupTree().create("profiler")

    depth = min(spec.nr_slots, spec.parallelism * 4)
    sector_space = 1 << 30
    state = {"next_sector": 0, "completed": 0, "bytes": 0, "latencies": []}

    def next_sector() -> int:
        if sequential:
            sector = state["next_sector"]
            state["next_sector"] = sector + io_size // 512
            return sector
        # Page-aligned random offsets (odd page stride makes accidental
        # contiguity with the previous IO vanishingly unlikely).
        return int(rng.integers(1, sector_space)) * (PAGE // 512)

    def issue() -> None:
        bio = Bio(op, io_size, next_sector(), group)
        layer.submit(bio).wait(completed)

    def completed(bio: Bio) -> None:
        if sim.now >= warmup:
            state["completed"] += 1
            state["bytes"] += bio.nbytes
            state["latencies"].append(bio.device_latency)
        if sim.now < warmup + duration:
            issue()

    for _ in range(depth):
        issue()
    sim.run(until=warmup + duration)

    iops = state["completed"] / duration
    bps = state["bytes"] / duration
    latencies = sorted(state["latencies"])
    p50 = latencies[len(latencies) // 2] if latencies else 0.0
    return iops, bps, p50


def profile_device(
    spec: DeviceSpec,
    seed: int = 0,
    read_duration: float = 0.25,
    write_duration: float = 1.0,
) -> DeviceProfile:
    """Profile a device model into linear cost-model parameters.

    ``write_duration`` defaults longer than ``read_duration`` so the GC
    model reaches its sustained (post-buffer) rate.
    """
    rrandiops, _, read_lat = _saturate(
        spec, IOOp.READ, False, PAGE, read_duration, seed
    )
    rseqiops, _, _ = _saturate(spec, IOOp.READ, True, PAGE, read_duration, seed + 10)
    _, rbps, _ = _saturate(spec, IOOp.READ, True, SEQ_IO_SIZE, read_duration, seed + 20)
    wrandiops, _, write_lat = _saturate(
        spec, IOOp.WRITE, False, PAGE, write_duration, seed + 30
    )
    wseqiops, _, _ = _saturate(spec, IOOp.WRITE, True, PAGE, write_duration, seed + 40)
    _, wbps, _ = _saturate(
        spec, IOOp.WRITE, True, SEQ_IO_SIZE, write_duration, seed + 50
    )
    return DeviceProfile(
        device=spec.name,
        rbps=rbps,
        rseqiops=rseqiops,
        rrandiops=rrandiops,
        wbps=wbps,
        wseqiops=wseqiops,
        wrandiops=wrandiops,
        read_lat_p50=read_lat,
        write_lat_p50=write_lat,
    )
