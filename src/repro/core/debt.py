"""Priority-inversion handling via debt (paper §3.5).

Swap-out (and filesystem-journal) IO must be charged to the cgroup that
*owns* the memory, but it completes synchronously on behalf of whichever
process triggered reclaim.  Throttling it would block the innocent party —
a priority inversion.  IOCost instead issues such IO immediately and lets
the owner go into *debt*: its local vtime runs ahead of global vtime, so
its future IO is throttled until the debt is repaid from future budget.

A cgroup that leaks memory but issues no normal IO would never repay.  The
backstop is a check before each return to userspace: if accumulated debt
exceeds a threshold, the thread is blocked momentarily, throttling the
generation of "free" IO at its source.  The memory-management substrate
calls :meth:`DebtTracker.userspace_delay` at its allocation boundaries to
model this.

:class:`SwapChargeMode` selects between the production behaviour and the
two deliberately-broken ablations evaluated in Figure 15.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.hierarchy import GroupState
from repro.core.vtime import VTimeClock


class SwapChargeMode(enum.Enum):
    """How swap/journal IO is charged (Figure 15's three configurations)."""

    #: Production: charge the owner, issue immediately, repay via debt.
    DEBT = "debt"
    #: Ablation: charge the root cgroup — swap IO is never throttled, so a
    #: leaker generates unbounded "free" IO.
    ROOT = "root"
    #: Ablation: throttle swap IO in the owner's queue like any other IO —
    #: the priority inversion the debt mechanism exists to avoid.
    ORIGIN_THROTTLE = "origin_throttle"


@dataclass(frozen=True)
class DebtConfig:
    """Thresholds for the return-to-userspace throttle."""

    #: Debt (wall seconds of the group's own budget) above which returning
    #: threads are blocked.
    threshold: float = 0.01
    #: Longest single block applied at the userspace boundary.
    max_delay: float = 0.25
    #: Fraction of the outstanding repayment time charged per boundary hit.
    delay_fraction: float = 0.5


class DebtTracker:
    """Computes debt levels and userspace-boundary delays.

    Debt is not stored separately: a group is in debt exactly when its local
    vtime exceeds global vtime (negative budget).  This class interprets
    that gap.
    """

    def __init__(self, clock: VTimeClock, config: DebtConfig = DebtConfig()) -> None:
        self.clock = clock
        self.config = config
        self.userspace_blocks = 0
        self.total_blocked_time = 0.0

    def debt_vtime(self, group: GroupState) -> float:
        """Outstanding debt in vtime seconds (0 when the group has budget)."""
        return max(0.0, group.local_vtime - self.clock.now())

    def debt_walltime(self, group: GroupState) -> float:
        """Wall seconds of future budget needed to repay the debt."""
        return self.clock.wall_delay_for(self.debt_vtime(group))

    def userspace_delay(self, group: GroupState) -> float:
        """Delay to impose before the group's threads return to userspace.

        Zero while debt is under the threshold; otherwise a bounded fraction
        of the outstanding repayment time, so memory-driven "free" IO is
        throttled at its source without ever fully stopping the task.
        """
        owed = self.debt_walltime(group)
        if owed <= self.config.threshold:
            return 0.0
        delay = min(self.config.max_delay, owed * self.config.delay_fraction)
        self.userspace_blocks += 1
        self.total_blocked_time += delay
        group.indelay_total += delay  # io.stat cost.indelay
        return delay
