"""IOCost — the paper's primary contribution.

The public surface:

* :class:`~repro.core.cost_model.LinearCostModel` /
  :class:`~repro.core.cost_model.ModelParams` — the §3.2 device cost model.
* :class:`~repro.core.qos.QoSParams` — latency targets and vrate bounds.
* :class:`~repro.core.controller.IOCost` — the controller (issue path +
  planning path + donation + debt).
* :func:`~repro.core.profiler.profile_device` — offline model generation.
* :func:`~repro.core.qos_tuning.tune_qos` — §3.4 QoS parameter derivation.
"""

from repro.core.cost_model import CostModel, LinearCostModel, ModelParams
from repro.core.vtime import VTimeClock
from repro.core.hierarchy import GroupState, WeightTree
from repro.core.donation import DonationResult, compute_donations
from repro.core.qos import QoSParams, VRateController
from repro.core.debt import DebtTracker, SwapChargeMode
from repro.core.controller import IOCost
from repro.core.profiler import DeviceProfile, profile_device
from repro.core.qos_tuning import TuningResult, tune_qos

__all__ = [
    "TuningResult",
    "tune_qos",
    "CostModel",
    "DebtTracker",
    "DeviceProfile",
    "DonationResult",
    "GroupState",
    "IOCost",
    "LinearCostModel",
    "ModelParams",
    "QoSParams",
    "SwapChargeMode",
    "VRateController",
    "VTimeClock",
    "WeightTree",
    "compute_donations",
    "profile_device",
]
