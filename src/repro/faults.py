"""Deterministic device fault injection (``repro.faults``).

Real SSDs misbehave — write-latency spikes, firmware garbage-collection
stalls, transient media errors, and full device hangs are exactly the
"unpredictable SSD behaviours" (§5) that IOCost's QoS range and vrate
adaptation exist to absorb.  This module scripts such misbehaviour over
*simulated* time so degradation scenarios are reproducible:

* a :class:`FaultPlan` holds an ordered set of fault windows and is attached
  to one :class:`~repro.block.device.Device` (``Testbed(faults=...)``);
* fault *kinds*: :class:`Brownout` (latency multiplier), :class:`GCStall`
  (requests beginning inside the window are deferred to its end, like a
  firmware GC pause), :class:`ErrorBurst` (requests fail with a seeded
  per-request probability), and :class:`Hang` (requests beginning service
  never complete until the window ends — or ever, for an unbounded hang);
* every fault boundary is announced through the ``dev_fault_begin`` /
  ``dev_fault_end`` tracepoints, and error decisions draw from the plan's
  *own* seeded RNG stream so injecting faults never perturbs the device's
  service-time noise sequence (determinism contract, docs/STATIC_ANALYSIS.md).

The plan itself is pure data + a seeded generator: it never reads the
clock and schedules nothing — the device owns simulated time.  See
``docs/FAULTS.md`` for the full format and the error/retry semantics the
block layer adds on top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Dict, Iterable, Mapping, Optional, Sequence, Tuple, Type

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.block.bio import Bio


class FaultError(ValueError):
    """Raised for malformed fault windows or an unseeded error draw."""


@dataclass(frozen=True)
class _Window:
    """A half-open ``[start, start + duration)`` window of simulated time."""

    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise FaultError("fault start must be >= 0")
        if not self.duration > 0:
            raise FaultError("fault duration must be positive")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class Brownout(_Window):
    """Device brownout: every request serviced in the window is slower.

    Models ageing media / thermal throttling: service times (after the
    device's own noise model) are multiplied by ``latency_mult``.
    """

    latency_mult: float = 4.0
    kind: ClassVar[str] = "brownout"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.latency_mult < 1.0:
            raise FaultError("brownout latency_mult must be >= 1")


@dataclass(frozen=True)
class GCStall(_Window):
    """Firmware garbage-collection pause.

    Requests *beginning service* inside the window are deferred until the
    window ends (then serviced normally); requests already on the media
    when the stall begins complete undisturbed.
    """

    kind: ClassVar[str] = "gc_stall"


@dataclass(frozen=True)
class ErrorBurst(_Window):
    """Transient IO errors: requests beginning service in the window fail
    with probability ``error_rate`` (drawn from the plan's seeded RNG).
    ``op`` restricts the burst to ``"read"`` or ``"write"`` requests.
    """

    error_rate: float = 1.0
    op: Optional[str] = None
    kind: ClassVar[str] = "error_burst"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.error_rate <= 1.0:
            raise FaultError("error_rate must be in (0, 1]")
        if self.op not in (None, "read", "write"):
            raise FaultError("error burst op must be 'read', 'write', or None")


@dataclass(frozen=True)
class Hang(_Window):
    """Full device hang: requests beginning service in the window never
    complete.  With a finite ``duration`` the parked requests resume (and
    then complete) when the window ends — a controller reset; the default
    ``duration=inf`` hangs them forever, so only a block-layer timeout
    (``io_timeout``) can reclaim them.
    """

    duration: float = math.inf
    kind: ClassVar[str] = "hang"


Fault = _Window  # every concrete kind subclasses the window

_FAULT_KINDS: Dict[str, Type[_Window]] = {
    cls.kind: cls for cls in (Brownout, GCStall, ErrorBurst, Hang)
}


@dataclass(frozen=True)
class FaultDecision:
    """The combined effect of every active fault on one request.

    ``delay`` defers the start of service (GC stall), ``latency_mult``
    scales its duration (brownouts compose multiplicatively), ``error``
    fails it, ``hang`` parks it indefinitely.
    """

    delay: float = 0.0
    latency_mult: float = 1.0
    error: bool = False
    hang: bool = False


NO_FAULT = FaultDecision()


class FaultPlan:
    """An immutable script of device faults plus a seeded RNG for error draws.

    The RNG is dedicated to fault decisions: either pass ``seed=`` here or
    let :class:`~repro.testbed.Testbed` bind a label-keyed stream via
    :meth:`bind` — both keep error draws out of the device's service-noise
    stream.  A plan containing an :class:`ErrorBurst` raises
    :class:`FaultError` at the first draw if neither happened.
    """

    def __init__(self, faults: Sequence[_Window], *, seed: Optional[int] = None) -> None:
        for fault in faults:
            if not isinstance(fault, _Window):
                raise FaultError(f"not a fault window: {fault!r}")
        self.faults: Tuple[_Window, ...] = tuple(faults)
        self._rng: Optional[np.random.Generator] = None
        if seed is not None:
            self._rng = np.random.default_rng(seed)

    def bind(self, rng: np.random.Generator) -> "FaultPlan":
        """Attach an RNG stream unless the plan was already seeded."""
        if self._rng is None:
            self._rng = rng
        return self

    def decide(self, now: float, bio: "Bio") -> FaultDecision:
        """Combined fault effect for a request beginning service at ``now``."""
        delay = 0.0
        latency_mult = 1.0
        error = False
        hang = False
        for fault in self.faults:
            if not fault.active(now):
                continue
            kind = fault.kind
            if kind == "brownout":
                latency_mult *= fault.latency_mult  # type: ignore[attr-defined]
            elif kind == "gc_stall":
                delay = max(delay, fault.end - now)
            elif kind == "error_burst":
                burst_op: Optional[str] = fault.op  # type: ignore[attr-defined]
                if burst_op is None or burst_op == bio.op.value:
                    # Draw per matching burst, unconditionally: the stream
                    # consumed stays a pure function of serviced requests.
                    if self._draw() < fault.error_rate:  # type: ignore[attr-defined]
                        error = True
            else:  # hang
                hang = True
        if not (delay or error or hang) and latency_mult == 1.0:
            return NO_FAULT
        return FaultDecision(delay=delay, latency_mult=latency_mult, error=error, hang=hang)

    def hang_active(self, now: float) -> bool:
        """True while any hang window covers ``now``."""
        return any(f.kind == "hang" and f.active(now) for f in self.faults)

    def _draw(self) -> float:
        if self._rng is None:
            raise FaultError(
                "fault plan has error faults but no RNG: pass seed= or bind()"
            )
        return float(self._rng.random())

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds = ", ".join(f.kind for f in self.faults)
        return f"FaultPlan([{kinds}])"


def fault_from_dict(config: Mapping[str, object]) -> _Window:
    """Build one fault from a config table (the TOML/JSON spec surface).

    ``{"kind": "brownout", "start": 0.5, "duration": 0.2, "latency_mult": 8}``
    """
    params = dict(config)
    kind = params.pop("kind", None)
    if not isinstance(kind, str) or kind not in _FAULT_KINDS:
        raise FaultError(
            f"unknown fault kind {kind!r} (expected one of {sorted(_FAULT_KINDS)})"
        )
    try:
        return _FAULT_KINDS[kind](**params)  # type: ignore[arg-type]
    except TypeError as exc:
        raise FaultError(f"bad parameters for fault kind {kind!r}: {exc}") from None


def plan_from_config(
    configs: Iterable[Mapping[str, object]], *, seed: Optional[int] = None
) -> FaultPlan:
    """Build a :class:`FaultPlan` from an iterable of fault tables."""
    return FaultPlan([fault_from_dict(c) for c in configs], seed=seed)
