"""Stacked IO control: a cgroup gate above a classic scheduler.

In the kernel, IOCost is not an IO scheduler — it is an ``rq_qos`` policy
that throttles bios *before* they reach whatever scheduler the device uses
(commonly ``none`` or ``mq-deadline``; see the paper's Figure 2).  This
module reproduces that stacking: a *gate* controller (IOCost, blk-throttle)
meters bios by cgroup policy, and a *scheduler* controller (mq-deadline,
kyber) orders the metered stream for the device.

The gate runs against a shim that looks like a block layer but whose
``dispatch`` feeds the scheduler's queue instead of the device, so both
components run unmodified.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.block.bio import Bio
from repro.cgroup import Cgroup
from repro.controllers.base import Features, IOController

if TYPE_CHECKING:  # pragma: no cover
    from repro.block.layer import BlockLayer


class _GateShim:
    """Adapter: presents the scheduler's queue to the gate as a layer.

    The gate throttles by its own budgets; request slots and device
    backpressure are the scheduler's concern, so ``can_dispatch`` is always
    true here and ``dispatch`` simply hands the bio down.
    """

    def __init__(self, stacked: "StackedController", real: "BlockLayer"):
        self._stacked = stacked
        self._real = real

    def can_dispatch(self) -> bool:
        return True

    def dispatch(self, bio: Bio) -> None:
        scheduler = self._stacked.scheduler
        scheduler.enqueue(bio)
        scheduler.pump()

    def __getattr__(self, name):
        # sim, device, latency windows, slot_utilization, stats...
        return getattr(self._real, name)


class StackedController(IOController):
    """Gate (cgroup policy) stacked above a scheduler (device ordering)."""

    name = "stacked"

    def __init__(self, gate: IOController, scheduler: IOController):
        super().__init__()
        self.gate = gate
        self.scheduler = scheduler
        # The stack has the gate's control properties; overhead compounds
        # (the worse of the two low-overhead ratings wins).
        gate_features = gate.features
        rank = ("yes", "partial", "no").index
        worst_overhead = max(
            gate_features.low_overhead,
            scheduler.features.low_overhead,
            key=rank,
        )
        self.features = Features(
            low_overhead=worst_overhead,
            work_conserving=gate_features.work_conserving,
            memory_management_aware=gate_features.memory_management_aware,
            proportional_fairness=gate_features.proportional_fairness,
            cgroup_control=gate_features.cgroup_control,
        )
        self.issue_overhead = gate.issue_overhead + scheduler.issue_overhead

    def attach(self, layer: "BlockLayer") -> None:
        super().attach(layer)
        self.scheduler.attach(layer)
        self.gate.attach(_GateShim(self, layer))

    def detach(self) -> None:
        self.gate.detach()
        self.scheduler.detach()

    def enqueue(self, bio: Bio) -> None:
        self.gate.enqueue(bio)

    def pump(self) -> None:
        self.gate.pump()
        self.scheduler.pump()

    def on_complete(self, bio: Bio) -> None:
        self.gate.on_complete(bio)
        self.scheduler.on_complete(bio)

    def userspace_delay(self, cgroup: Cgroup) -> float:
        """Forward the §3.5 debt hook to the gate when it has one."""
        hook = getattr(self.gate, "userspace_delay", None)
        return hook(cgroup) if hook is not None else 0.0
