"""blk-throttle: per-cgroup IOPS / bytes-per-second limits (paper §2.2).

Each cgroup gets token buckets for read/write IOPS and bandwidth; bios wait
in per-cgroup FIFOs until every applicable bucket has tokens.  Hard limits
only: unused capacity is *not* redistributed — the classic
non-work-conserving design whose over-provisioning cost the paper's
Figure 11 demonstrates.  Limits are also brittle to configure per device ×
per workload, the configuration-explosion argument of §2.3.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.block.bio import Bio
from repro.controllers.base import Features, IOController


@dataclass(frozen=True)
class ThrottleLimits:
    """Per-cgroup limits; ``None`` means unlimited (kernel: "max")."""

    riops: Optional[float] = None
    wiops: Optional[float] = None
    rbps: Optional[float] = None
    wbps: Optional[float] = None


class _Bucket:
    """Token bucket refilled continuously at ``rate`` per second."""

    __slots__ = ("rate", "tokens", "burst", "last")

    def __init__(self, rate: float, burst_sec: float = 0.02):
        self.rate = rate
        self.burst = rate * burst_sec
        self.tokens = self.burst
        self.last = 0.0

    def refill(self, now: float) -> None:
        self.tokens = min(self.burst, self.tokens + (now - self.last) * self.rate)
        self.last = now

    def try_take(self, now: float, amount: float) -> bool:
        """Take ``amount`` if the bucket is ready.

        A bio larger than the burst capacity is granted against a *full*
        bucket and drives the token count negative (carryover), so big IOs
        flow at the configured average rate instead of deadlocking.
        """
        self.refill(now)
        if self.tokens >= min(amount, self.burst):
            self.tokens -= amount
            return True
        return False

    def wait_time(self, now: float, amount: float) -> float:
        self.refill(now)
        deficit = min(amount, self.burst) - self.tokens
        return max(0.0, deficit / self.rate)


class _GroupThrottle:
    __slots__ = ("limits", "queue", "riops", "wiops", "rbps", "wbps", "wake")

    def __init__(self, limits: ThrottleLimits):
        self.limits = limits
        self.queue: Deque[Bio] = deque()
        self.riops = _Bucket(limits.riops) if limits.riops else None
        self.wiops = _Bucket(limits.wiops) if limits.wiops else None
        self.rbps = _Bucket(limits.rbps) if limits.rbps else None
        self.wbps = _Bucket(limits.wbps) if limits.wbps else None
        self.wake = None

    def buckets_for(self, bio: Bio):
        if bio.is_write:
            return [(b, a) for b, a in ((self.wiops, 1.0), (self.wbps, float(bio.nbytes))) if b]
        return [(b, a) for b, a in ((self.riops, 1.0), (self.rbps, float(bio.nbytes))) if b]


class BlkThrottleController(IOController):
    """Upper-limit throttling via token buckets."""

    name = "blk-throttle"
    features = Features(
        low_overhead="partial",
        work_conserving="no",
        memory_management_aware="no",
        proportional_fairness="no",
        cgroup_control="yes",
    )
    issue_overhead = 1.1e-6

    def __init__(self, limits: Optional[Dict[str, ThrottleLimits]] = None) -> None:
        super().__init__()
        self._config = dict(limits or {})
        self._groups: Dict[str, _GroupThrottle] = {}

    def set_limits(self, path: str, limits: ThrottleLimits) -> None:
        """Configure (or replace) a cgroup's limits."""
        self._config[path] = limits
        self._groups.pop(path, None)

    def _group(self, path: str) -> _GroupThrottle:
        group = self._groups.get(path)
        if group is None:
            group = _GroupThrottle(self._config.get(path, ThrottleLimits()))
            self._groups[path] = group
        return group

    def enqueue(self, bio: Bio) -> None:
        self._group(bio.cgroup.path).queue.append(bio)

    def pump(self) -> None:
        layer = self.layer
        now = layer.sim.now
        for group in self._groups.values():
            while group.queue and layer.can_dispatch():
                bio = group.queue[0]
                buckets = group.buckets_for(bio)
                waits = [bucket.wait_time(now, amount) for bucket, amount in buckets]
                if any(wait > 0 for wait in waits):
                    self.note_throttle(bio, "tokens")
                    self._arm_wake(group, max(waits))
                    break
                for bucket, amount in buckets:
                    bucket.try_take(now, amount)
                group.queue.popleft()
                layer.dispatch(bio)
            if not layer.can_dispatch():
                return

    def _arm_wake(self, group: _GroupThrottle, delay: float) -> None:
        if group.wake is not None:
            group.wake.cancel()
        group.wake = self.layer.sim.schedule(delay + 1e-9, self._wake, group)

    def _wake(self, group: _GroupThrottle) -> None:
        group.wake = None
        self.pump()

    def detach(self) -> None:
        for group in self._groups.values():
            if group.wake is not None:
                group.wake.cancel()
                group.wake = None
