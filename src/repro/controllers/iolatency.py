"""IOLatency: per-cgroup latency targets with strict prioritisation (§2.2).

Meta's first-generation controller (upstreamed before IOCost).  Each cgroup
may set a completion-latency target; when a protected cgroup's observed
latency exceeds its target, cgroups with *looser* targets (lower priority)
get their queue depth scaled down until the victim recovers.

The paper's criticisms, all reproduced here: only strict prioritisation (no
way to share proportionally between equal-priority groups — Figure 10), and
work conservation that depends on fragile per-device, per-workload target
tuning (Figure 11 shows it performing adequately; Figure 16 shows it
failing for stacked equal-priority ensembles).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.block.bio import Bio
from repro.controllers.base import Features, IOController


class _LatGroup:
    __slots__ = ("path", "target", "queue", "inflight", "depth")

    def __init__(self, path: str, target: Optional[float], max_depth: int):
        self.path = path
        self.target = target  # None = unprotected (lowest priority)
        self.queue: Deque[Bio] = deque()
        self.inflight = 0
        self.depth = max_depth


class IOLatencyController(IOController):
    """Latency-target controller with queue-depth scaling."""

    name = "iolatency"
    features = Features(
        low_overhead="yes",
        work_conserving="partial",
        memory_management_aware="yes",
        proportional_fairness="no",
        cgroup_control="yes",
    )
    issue_overhead = 0.8e-6

    ADJUST_INTERVAL = 0.05
    MIN_DEPTH = 1

    def __init__(self, targets: Optional[Dict[str, float]] = None) -> None:
        super().__init__()
        self._targets = dict(targets or {})
        self._groups: Dict[str, _LatGroup] = {}
        self._timer = None
        # Target of the currently-suffering protected group (None if all
        # targets are met).  New lower-priority groups inherit the
        # throttled state instead of starting wide open.
        self._victim_target: Optional[float] = None

    def attach(self, layer) -> None:
        super().attach(layer)
        self._timer = layer.sim.schedule(self.ADJUST_INTERVAL, self._adjust)

    def detach(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def set_target(self, path: str, target: float) -> None:
        self._targets[path] = target
        group = self._groups.get(path)
        if group is not None:
            group.target = target

    def _group(self, bio: Bio) -> _LatGroup:
        path = bio.cgroup.path
        group = self._groups.get(path)
        if group is None:
            group = _LatGroup(
                path, self._targets.get(path), self.layer.device.spec.nr_slots
            )
            if self._victim_target is not None and (
                group.target is None or group.target > self._victim_target
            ):
                group.depth = self.MIN_DEPTH
            self._groups[path] = group
        return group

    def enqueue(self, bio: Bio) -> None:
        group = self._group(bio)
        if group.inflight >= group.depth:
            self.note_throttle(bio, "depth")
        group.queue.append(bio)

    def pump(self) -> None:
        layer = self.layer
        progressed = True
        while progressed and layer.can_dispatch():
            progressed = False
            for group in self._groups.values():
                if group.queue and group.inflight < group.depth:
                    group.inflight += 1
                    layer.dispatch(group.queue.popleft())
                    progressed = True
                    if not layer.can_dispatch():
                        return

    def on_complete(self, bio: Bio) -> None:
        group = self._groups.get(bio.cgroup.path)
        if group is not None:
            group.inflight -= 1

    # -- periodic depth scaling -------------------------------------------------

    def _adjust(self) -> None:
        layer = self.layer
        now = layer.sim.now
        max_depth = layer.device.spec.nr_slots

        # Is any protected group missing its target?
        victim_target = None
        for group in self._groups.values():
            if group.target is None:
                continue
            observed = layer.cgroup_window(group.path).percentile(now, 90)
            if observed is not None and observed > group.target:
                if victim_target is None or group.target < victim_target:
                    victim_target = group.target
        self._victim_target = victim_target

        for group in self._groups.values():
            if victim_target is not None and (
                group.target is None or group.target > victim_target
            ):
                # Lower priority than the victim: halve its depth.
                group.depth = max(self.MIN_DEPTH, group.depth // 2)
            else:
                # Grow back gradually while nobody above is suffering.
                group.depth = min(max_depth, group.depth + max(1, group.depth // 4))

        self._timer = layer.sim.schedule(self.ADJUST_INTERVAL, self._adjust)
        self.pump()
