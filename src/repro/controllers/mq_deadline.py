"""mq-deadline: the default Linux scheduler (no cgroup awareness).

FIFO queues per direction with expiry deadlines; reads are preferred over
writes (synchronous reads must not be starved by async writebacks), but an
expired write jumps the line and writes get a dispatch slot after every few
read batches.  Ensures "respectable machine-wide performance" only — no
per-cgroup resources (Table 1: no proportional fairness, no cgroup control).
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.block.bio import Bio
from repro.block.layer import BlockLayerError
from repro.controllers.base import Features, IOController


class MQDeadlineController(IOController):
    """Deadline-based global IO scheduler."""

    name = "mq-deadline"
    features = Features(
        low_overhead="yes",
        work_conserving="yes",
        memory_management_aware="no",
        proportional_fairness="no",
        cgroup_control="no",
    )
    #: Fig 9 shows moderate overhead for mq-deadline (sorting + deadline
    #: bookkeeping under a queue lock).
    issue_overhead = 1.6e-6

    #: Default expiry deadlines mirroring the kernel's read_expire=500ms,
    #: write_expire=5s.
    READ_EXPIRE = 0.5
    WRITE_EXPIRE = 5.0
    #: Writes are considered after this many consecutive read dispatches.
    WRITES_STARVED = 2

    def __init__(self) -> None:
        super().__init__()
        self._reads: Deque[Bio] = deque()
        self._writes: Deque[Bio] = deque()
        self._starved = 0

    def enqueue(self, bio: Bio) -> None:
        if bio.is_write:
            self._writes.append(bio)
        else:
            self._reads.append(bio)

    def _write_expired(self) -> bool:
        if not self._writes:
            return False
        head = self._writes[0]
        if head.submit_time is None:
            raise BlockLayerError("queued bio never passed BlockLayer.submit()")
        return self.layer.sim.now - head.submit_time >= self.WRITE_EXPIRE

    def _pick(self) -> Bio:
        if self._write_expired():
            self._starved = 0
            return self._writes.popleft()
        if self._reads and (self._starved < self.WRITES_STARVED or not self._writes):
            self._starved += 1
            return self._reads.popleft()
        if self._writes:
            self._starved = 0
            return self._writes.popleft()
        return self._reads.popleft()

    def pump(self) -> None:
        while (self._reads or self._writes) and self.layer.can_dispatch():
            self.layer.dispatch(self._pick())
