"""IO controller interface and Table 1 capability metadata.

A controller sits between bio submission and device dispatch (the
"controller / scheduler" box of the paper's Figure 2).  The contract is an
elevator model:

* :meth:`IOController.enqueue` — a bio arrived from a cgroup; stash or
  dispatch it.
* :meth:`IOController.pump` — dispatch as many queued bios as policy and
  free request slots allow; called after enqueues and completions.
* :meth:`IOController.on_complete` — bookkeeping for a finished bio.

``issue_overhead`` models the serialized per-IO CPU cost of the mechanism's
issue path — the quantity Figure 9 measures.  The block layer charges it on
a single CPU-time resource before the device sees the request, so a
controller with a heavyweight issue path (BFQ) caps achievable IOPS no
matter how fast the device is.  Values are calibrated to reproduce the
relative overheads of Figure 9, not absolute kernel numbers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Dict

from repro.obs.trace import TRACE

if TYPE_CHECKING:  # pragma: no cover
    from repro.block.bio import Bio
    from repro.block.layer import BlockLayer
    from repro.cgroup import Cgroup


@dataclass(frozen=True)
class Features:
    """The capability flags of the paper's Table 1.

    Values are "yes", "no", or "partial" (the paper's ✓ / ✗ / ~).
    """

    low_overhead: str
    work_conserving: str
    memory_management_aware: str
    proportional_fairness: str
    cgroup_control: str

    def __post_init__(self) -> None:
        for field_name, value in self.__dict__.items():
            if value not in ("yes", "no", "partial"):
                raise ValueError(f"{field_name} must be yes/no/partial, got {value!r}")


class IOController(abc.ABC):
    """Base class for every IO control mechanism."""

    name: ClassVar[str] = "abstract"
    features: ClassVar[Features]
    #: Serialized CPU seconds consumed per IO on the issue path (Fig 9 model).
    issue_overhead: float = 0.0

    def __init__(self) -> None:
        self.layer: "BlockLayer" = None  # type: ignore[assignment]
        # Shared observability state: every mechanism counts held-back bios
        # the same way, so cross-controller comparisons read one counter.
        self.throttled_ios = 0
        self.throttled_by_cgroup: Dict[str, int] = {}
        self._tp_throttle = TRACE.points["bio_throttle"]

    def attach(self, layer: "BlockLayer") -> None:
        """Bind to a block layer.  Called once, before any IO."""
        self.layer = layer

    def note_throttle(self, bio: "Bio", reason: str) -> None:
        """Record that ``bio`` was held back (budget, tokens, depth, ...).

        Bumps the shared throttle counters and emits the ``bio_throttle``
        tracepoint.  Subclasses call this wherever their policy first makes
        a bio wait.
        """
        self.throttled_ios += 1
        path = bio.cgroup.path
        self.throttled_by_cgroup[path] = self.throttled_by_cgroup.get(path, 0) + 1
        if self._tp_throttle.enabled:
            # ``ctl`` is this controller's own name: in a stacked
            # configuration (controllers/stacked.py) the gate and the
            # scheduler each note their own throttles, so a trace separates
            # iocost budget waits from device-queue (mq-deadline/kyber
            # depth) waits per bio.
            self._tp_throttle.emit(
                self.layer.sim.now,
                dev=self.layer.dev,
                id=bio.id,
                cgroup=path,
                op=bio.op.value,
                nbytes=bio.nbytes,
                reason=reason,
                ctl=self.name,
            )

    def cost_stat(self, cgroup: "Cgroup") -> Dict[str, float]:
        """Controller-specific io.stat keys for one cgroup.

        The base implementation contributes the shared throttle counter;
        IOCost overrides this to add its ``cost.*`` surface.
        """
        return {"throttled": self.throttled_by_cgroup.get(cgroup.path, 0)}

    @abc.abstractmethod
    def enqueue(self, bio: "Bio") -> None:
        """Accept a submitted bio."""

    @abc.abstractmethod
    def pump(self) -> None:
        """Dispatch queued bios while policy and request slots allow."""

    def on_complete(self, bio: "Bio") -> None:
        """A dispatched bio completed (default: nothing to do)."""

    def detach(self) -> None:
        """Tear down timers etc.  Called when an experiment ends."""
