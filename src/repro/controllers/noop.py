"""The "none" mechanism: no scheduler, no control.

Bios flow straight to the device in FIFO order, gated only by request-slot
availability.  This is the Figure 9 baseline showing the achievable
throughput of the block layer itself.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.block.bio import Bio
from repro.controllers.base import Features, IOController


class NoopController(IOController):
    """Pass-through dispatch (the paper's *none* column)."""

    name = "none"
    features = Features(
        low_overhead="yes",
        work_conserving="yes",
        memory_management_aware="no",
        proportional_fairness="no",
        cgroup_control="no",
    )
    issue_overhead = 0.0

    def __init__(self) -> None:
        super().__init__()
        self._queue: Deque[Bio] = deque()

    def enqueue(self, bio: Bio) -> None:
        self._queue.append(bio)

    def pump(self) -> None:
        while self._queue and self.layer.can_dispatch():
            self.layer.dispatch(self._queue.popleft())
