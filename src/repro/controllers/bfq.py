"""BFQ: budget fair queueing by sectors (paper §2.2, [41]).

BFQ grants the device *exclusively* to one cgroup queue at a time, for a
sector budget proportional to its weight, then moves to the next queue in a
weighted round robin.  That design encodes the two failure modes the paper
measures:

* **Heavy issue path** (Figure 9): per-IO budget accounting, queue merging
  and tree reshuffling under a single scheduler lock — modelled as a large
  serialized ``issue_overhead`` that caps achievable IOPS far below fast
  devices.
* **Sector fairness ≠ occupancy fairness** (Figure 12): a random-read queue
  receives the same *sectors* as a sequential one, which on a seek-bound
  disk translates into far more device *time*.
* **Wide latency swings** (Figures 10/11): while one queue's slice runs,
  everyone else waits out the whole slice — and BFQ *idles*: when the
  in-service queue momentarily empties with budget remaining, the device
  is held idle for a window awaiting the queue's next sync IO (preserving
  its sequential locality), starving everyone else meanwhile.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.block.bio import Bio, SECTOR_SIZE
from repro.controllers.base import Features, IOController


class _BfqQueue:
    __slots__ = (
        "path",
        "weight",
        "queue",
        "budget_left",
        "budget_granted",
        "next_budget",
        "slice_deadline",
    )

    def __init__(self, path: str, weight: int):
        self.path = path
        self.weight = weight
        self.queue: Deque[Bio] = deque()
        self.budget_left = 0
        self.budget_granted = 0
        self.next_budget = 0
        self.slice_deadline = 0.0


class BFQController(IOController):
    """Weighted round-robin of exclusive, sector-budgeted service slices."""

    name = "bfq"
    features = Features(
        low_overhead="no",
        work_conserving="yes",
        memory_management_aware="no",
        proportional_fairness="yes",
        cgroup_control="yes",
    )
    #: Fig 9: "severe software overheads ... despite significant tuning".
    issue_overhead = 8e-6

    #: Initial sector budget per unit weight.  Budgets adapt like kernel
    #: BFQ's auto-tuning: a queue that exhausts its budget gets double next
    #: time (up to MAX_SECTORS_PER_WEIGHT * weight), so fast sequential
    #: queues ramp to slices bounded by the time quantum, while seeky
    #: queues keep small budgets.
    SECTORS_PER_WEIGHT = 64
    MAX_SECTORS_PER_WEIGHT = 1024
    #: Cap on dispatches in flight from the active queue at once.
    SLICE_DEPTH = 32
    #: How long an empty in-service queue keeps the device idle waiting
    #: for its next sync IO (the kernel's slice_idle, ~2-8 ms).
    IDLE_WINDOW = 2e-3
    #: Time quantum per unit weight: a slice also expires after
    #: weight * SLICE_TIME_PER_WEIGHT seconds (kernel BFQ's time budget),
    #: so a slow queue cannot hold the device for its whole sector budget.
    #: Default-weight queues get ~100 ms, long enough to amortise the
    #: slice-boundary seek on spinning disks.
    SLICE_TIME_PER_WEIGHT = 1e-3

    def __init__(self) -> None:
        super().__init__()
        self._queues: Dict[str, _BfqQueue] = {}
        self._round: List[str] = []
        self._active: Optional[_BfqQueue] = None
        self._active_inflight = 0
        self._idle_timer = None

    def detach(self) -> None:
        if self._idle_timer is not None:
            self._idle_timer.cancel()
            self._idle_timer = None

    def _queue_for(self, bio: Bio) -> _BfqQueue:
        path = bio.cgroup.path
        queue = self._queues.get(path)
        if queue is None:
            queue = _BfqQueue(path, bio.cgroup.weight)
            self._queues[path] = queue
            self._round.append(path)
        queue.weight = bio.cgroup.weight  # pick up weight changes
        return queue

    def enqueue(self, bio: Bio) -> None:
        queue = self._queue_for(bio)
        queue.queue.append(bio)
        # The idled-for IO arrived: stop idling and resume the slice.
        if self._idle_timer is not None and self._active is queue:
            self._idle_timer.cancel()
            self._idle_timer = None

    # -- slice management -----------------------------------------------------

    def _grant_slice(self, queue: _BfqQueue) -> None:
        self._active = queue
        if queue.next_budget <= 0:
            queue.next_budget = queue.weight * self.SECTORS_PER_WEIGHT
        queue.budget_left = queue.budget_granted = queue.next_budget
        queue.slice_deadline = (
            self.layer.sim.now + queue.weight * self.SLICE_TIME_PER_WEIGHT
        )

    def _retire_slice(self, queue: _BfqQueue) -> None:
        """Adapt the next budget from how this slice ended (auto-tuning)."""
        minimum = queue.weight * self.SECTORS_PER_WEIGHT
        maximum = queue.weight * self.MAX_SECTORS_PER_WEIGHT
        used = queue.budget_granted - queue.budget_left
        if queue.budget_left <= 0:
            # Exhausted its sectors: a fast queue — grow the budget.
            queue.next_budget = min(2 * queue.budget_granted, maximum)
        else:
            # Time-expired or drained: size the budget to what it can use.
            queue.next_budget = max(used, minimum)

    def _next_queue(self) -> Optional[_BfqQueue]:
        """Round-robin to the next backlogged queue."""
        for _ in range(len(self._round)):
            path = self._round.pop(0)
            self._round.append(path)
            queue = self._queues[path]
            if queue.queue:
                return queue
        return None

    def _expire_if_done(self) -> None:
        active = self._active
        if active is None:
            return
        out_of_grant = (
            active.budget_left <= 0 or self.layer.sim.now >= active.slice_deadline
        )
        if out_of_grant and self._active_inflight == 0:
            self._retire_slice(active)
            self._active = None
        elif not active.queue and self._active_inflight == 0:
            # Queue drained with budget left: idle the device for a window
            # in case the queue's process issues another sync IO soon.
            if self._idle_timer is None:
                self._idle_timer = self.layer.sim.schedule(
                    self.IDLE_WINDOW, self._idle_expired
                )

    def _idle_expired(self) -> None:
        self._idle_timer = None
        if self._active is not None:
            self._retire_slice(self._active)
        self._active = None
        self.pump()

    def pump(self) -> None:
        layer = self.layer
        while layer.can_dispatch():
            self._expire_if_done()
            if self._idle_timer is not None:
                return  # device held idle for the in-service queue
            if self._active is None:
                nxt = self._next_queue()
                if nxt is None:
                    return
                self._grant_slice(nxt)
            active = self._active
            if (
                not active.queue
                or active.budget_left <= 0
                or self.layer.sim.now >= active.slice_deadline
                or self._active_inflight >= self.SLICE_DEPTH
            ):
                return  # wait for completions (exclusive service)
            bio = active.queue.popleft()
            sectors = max(1, bio.nbytes // SECTOR_SIZE)
            active.budget_left -= sectors
            self._active_inflight += 1
            layer.dispatch(bio)

    def on_complete(self, bio: Bio) -> None:
        # Slices only expire once their dispatches drain, so outstanding
        # completions always belong to the active queue.
        if self._active is not None and bio.cgroup.path == self._active.path:
            self._active_inflight -= 1
