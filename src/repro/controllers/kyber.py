"""Kyber: latency-goal token scheduler (no cgroup awareness).

Kyber splits IO into domains (reads, synchronous writes) and adjusts each
domain's allowed queue depth so that per-domain completion latencies meet
built-in targets (2 ms reads / 10 ms writes in the kernel).  Its fast path
is nearly free — Figure 9 shows it indistinguishable from no scheduler.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.block.bio import Bio
from repro.controllers.base import Features, IOController


class KyberController(IOController):
    """Per-domain depth-throttling scheduler."""

    name = "kyber"
    features = Features(
        low_overhead="yes",
        work_conserving="yes",
        memory_management_aware="no",
        proportional_fairness="no",
        cgroup_control="no",
    )
    issue_overhead = 0.05e-6

    READ_TARGET = 2e-3
    WRITE_TARGET = 10e-3
    ADJUST_INTERVAL = 0.1
    MIN_DEPTH = 1

    def __init__(self) -> None:
        super().__init__()
        self._reads: Deque[Bio] = deque()
        self._writes: Deque[Bio] = deque()
        self._read_inflight = 0
        self._write_inflight = 0
        self._read_depth = 0  # set at attach from device slots
        self._write_depth = 0
        self._timer = None

    def attach(self, layer) -> None:
        super().attach(layer)
        slots = layer.device.spec.nr_slots
        self._read_depth = slots
        self._write_depth = max(self.MIN_DEPTH, slots // 4)
        self._timer = layer.sim.schedule(self.ADJUST_INTERVAL, self._adjust)

    def detach(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def enqueue(self, bio: Bio) -> None:
        (self._writes if bio.is_write else self._reads).append(bio)

    def pump(self) -> None:
        layer = self.layer
        progressed = True
        while progressed and layer.can_dispatch():
            progressed = False
            if self._reads and self._read_inflight < self._read_depth:
                self._read_inflight += 1
                layer.dispatch(self._reads.popleft())
                progressed = True
            if not layer.can_dispatch():
                break
            if self._writes and self._write_inflight < self._write_depth:
                self._write_inflight += 1
                layer.dispatch(self._writes.popleft())
                progressed = True

    def on_complete(self, bio: Bio) -> None:
        if bio.is_write:
            self._write_inflight -= 1
        else:
            self._read_inflight -= 1

    def _adjust(self) -> None:
        """Shrink a domain's depth when its latency target is missed."""
        layer = self.layer
        now = layer.sim.now
        slots = layer.device.spec.nr_slots
        read_p99 = layer.read_latency.percentile(now, 99)
        write_p99 = layer.write_latency.percentile(now, 99)
        if read_p99 is not None and read_p99 > self.READ_TARGET:
            self._read_depth = max(self.MIN_DEPTH, self._read_depth // 2)
        else:
            self._read_depth = min(slots, self._read_depth + max(1, self._read_depth // 4))
        if write_p99 is not None and write_p99 > self.WRITE_TARGET:
            self._write_depth = max(self.MIN_DEPTH, self._write_depth // 2)
        else:
            self._write_depth = min(slots, self._write_depth + max(1, self._write_depth // 4))
        self._timer = layer.sim.schedule(self.ADJUST_INTERVAL, self._adjust)
        self.pump()
