"""IO control mechanisms: IOCost plus the Table 1 baselines.

``IOCost`` itself lives in :mod:`repro.core.controller`; it is re-exported
here lazily (module ``__getattr__``) to keep the package import graph
acyclic — ``repro.core`` imports controller base classes from this package.
"""

from typing import Dict, List, Type

from repro.controllers.base import Features, IOController
from repro.controllers.noop import NoopController
from repro.controllers.mq_deadline import MQDeadlineController
from repro.controllers.kyber import KyberController
from repro.controllers.blk_throttle import BlkThrottleController, ThrottleLimits
from repro.controllers.bfq import BFQController
from repro.controllers.iolatency import IOLatencyController
from repro.controllers.stacked import StackedController

__all__ = [
    "BFQController",
    "BlkThrottleController",
    "CONTROLLER_CLASSES",
    "Features",
    "IOController",
    "IOCost",
    "IOLatencyController",
    "KyberController",
    "MQDeadlineController",
    "NoopController",
    "StackedController",
    "TABLE1_CONTROLLERS",
    "ThrottleLimits",
]


def _table1() -> List[Type[IOController]]:
    from repro.core.controller import IOCost

    return [
        KyberController,
        MQDeadlineController,
        BlkThrottleController,
        BFQController,
        IOLatencyController,
        IOCost,
    ]


def __getattr__(name: str):
    if name == "IOCost":
        from repro.core.controller import IOCost

        return IOCost
    if name == "TABLE1_CONTROLLERS":
        return _table1()
    if name == "CONTROLLER_CLASSES":
        return {cls.name: cls for cls in [NoopController, *_table1()]}
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
