"""CLI for the runtime sanitizers: ``python -m repro.sanitize diff``.

``diff`` runs the differential fast/slow-path harness (:mod:`.diff`) and
exits 0 when the two traces are byte-identical, 1 on divergence.  On
divergence (or with ``--out``) the two JSONL traces are written next to
each other so ``diff fast.jsonl slow.jsonl`` localizes the break.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Optional, Sequence

from repro.sanitize.diff import DEFAULT_BIOS, DEFAULT_DEPTH, run_diff


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.sanitize",
        description="Runtime sanitizer tooling.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    diff = sub.add_parser(
        "diff",
        help="byte-diff the fast-path trace against the sanitized slow-path trace",
    )
    diff.add_argument("--bios", type=int, default=DEFAULT_BIOS)
    diff.add_argument("--depth", type=int, default=DEFAULT_DEPTH)
    diff.add_argument(
        "--out", type=Path, default=None, metavar="DIR",
        help="always write fast.jsonl/slow.jsonl here (default: only on divergence)",
    )
    return parser


def _write_traces(report: dict, out_dir: Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "fast.jsonl").write_text(report["fast_trace"])
    (out_dir / "slow.jsonl").write_text(report["slow_trace"])
    print(f"traces written to {out_dir}/fast.jsonl and {out_dir}/slow.jsonl")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    report = run_diff(args.bios, args.depth)
    checks = " ".join(
        f"{name}={count}" for name, count in report["sanitize_checks"].items() if count
    )
    print(
        f"{report['bios']} bios at depth {report['depth']}: "
        f"{report['events']} trace events per run"
    )
    print(f"sanitize checks (slow run): {checks or 'none'}")
    if report["identical"]:
        print("fast and slow path traces are byte-identical")
        if args.out is not None:
            _write_traces(report, args.out)
        return 0
    divergence = report["divergence"]
    print(
        f"TRACE DIVERGENCE at line {divergence['line']}:\n"
        f"  fast: {divergence['fast']}\n"
        f"  slow: {divergence['slow']}"
    )
    _write_traces(report, args.out if args.out is not None else Path("sanitize-diff"))
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    raise SystemExit(main())
