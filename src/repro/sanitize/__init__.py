"""Runtime sanitizers: TSan/ASan-style invariant checkers for the DES.

PR 8 forked the engine's hot paths (callback vs Signal completions,
``run()`` vs ``_run_profiled()``, chunked vs scalar draws) for a ~3.8x
speedup; golden-trace tests pin their equivalence, but only on the
workloads they run.  This module makes the *invariants themselves*
checkable on any workload, the way a sanitizer build does for C:

* **time monotonicity + heap integrity** — dispatched event times never go
  backwards; the heap is a valid binary heap of ``(time, seq, ...)``
  entries with unique sequence numbers (`repro.sim.engine`);
* **device slot conservation** — the block layer's ``inflight`` stays in
  ``[0, nr_slots]`` and the device's busy channels in ``[0, parallelism]``
  on every completion/error/timeout/abort path (`repro.block`);
* **iocost cost conservation** — every absolute cost priced at enqueue is
  eventually charged to exactly one group (or still queued): per period,
  incurred == charged + waitq-pending (`repro.core.controller`);
* **debt monotonicity** — a group's local vtime never moves backwards
  (debt is repaid by global vtime catching up, never by rollback);
* **span leaks** — an open bio span silently evicted from the tracker is
  an accounting hole (`repro.obs.spans`);
* **RNG stream aliasing** — two labeled streams whose first ``k`` draws
  collide share one bit stream (`Testbed.rng_for` / ``noise_stream``).

Cost model: every hook site is behind the same cached-object ``enabled``
flag pattern as :mod:`repro.obs.trace` tracepoints and
:mod:`repro.obs.prof` counters — one attribute check per site while
disabled, held to the existing overhead budgets (docs/SANITIZERS.md).

Enable with ``REPRO_SANITIZE=1`` in the environment (picked up at import,
which is how CI runs the whole tier-1 suite sanitized), the pytest
``--sanitize`` flag (tests/conftest.py), or programmatically::

    from repro.sanitize import SANITIZE

    SANITIZE.reset().enable()
    bed.run(1.0)
    SANITIZE.describe()        # checks performed per invariant

A check that fails raises :class:`SanitizeError` at the violating call
site — fail-stop, like a sanitizer, because continuing past corrupted
accounting produces wrong results with no further diagnostic value.
Deliberate-violation tests temporarily drop the flag with
:meth:`Sanitizer.suspended`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Sequence, Tuple

import numpy as np


class SanitizeError(AssertionError):
    """An engine/controller/device invariant was violated at runtime."""


#: Draws fingerprinted per labeled RNG stream.  Eight uint64s ≈ a 512-bit
#: fingerprint: two independent streams colliding by chance is negligible,
#: so a collision means shared seed material.
FINGERPRINT_DRAWS = 8

#: Relative slack for float-sum comparisons (cost conservation): the same
#: costs are summed in different association orders on the two sides.
_REL_TOL = 1e-9


class Sanitizer:
    """Invariant checkers behind a single ``enabled`` flag.

    Mirrors :class:`repro.obs.prof.SimProfiler`: a process-global instance
    (:data:`SANITIZE`) that every instrumented component caches, with all
    per-site work gated on :attr:`enabled`.  ``checks`` counts performed
    checks per invariant so tests can assert a checker actually ran.
    """

    #: Check-counter keys, one per invariant family.
    CHECKS = (
        "time_monotonic",
        "heap_integrity",
        "slot_conservation",
        "channel_conservation",
        "cost_conservation",
        "vtime_monotonic",
        "span_leak",
        "rng_fingerprint",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.checks: Dict[str, int] = {name: 0 for name in self.CHECKS}
        # Cost-conservation ledger, keyed by controller identity.
        self._incurred: Dict[int, float] = {}
        self._charged: Dict[int, float] = {}
        # Per-(controller, cgroup) last observed local vtime.
        self._vtime: Dict[Tuple[int, str], float] = {}
        # RNG stream fingerprint -> label of first check-in.
        self._streams: Dict[Tuple[int, ...], str] = {}

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> "Sanitizer":
        self.enabled = True
        return self

    def disable(self) -> "Sanitizer":
        self.enabled = False
        return self

    def reset(self) -> "Sanitizer":
        """Clear every ledger and counter (does not change ``enabled``)."""
        for name in self.CHECKS:
            self.checks[name] = 0
        self._incurred.clear()
        self._charged.clear()
        self._vtime.clear()
        self._streams.clear()
        return self

    def __enter__(self) -> "Sanitizer":
        return self.enable()

    def __exit__(self, *exc: Any) -> None:
        self.disable()

    @contextmanager
    def suspended(self) -> Iterator["Sanitizer"]:
        """Temporarily drop the flag (deliberate-violation tests)."""
        was = self.enabled
        self.enabled = False
        try:
            yield self
        finally:
            self.enabled = was

    # -- engine: time + heap ------------------------------------------------

    def check_monotonic(self, now: float, event_time: float) -> None:
        """A dispatched event's time must never precede the clock."""
        self.checks["time_monotonic"] += 1
        if event_time < now:
            raise SanitizeError(
                f"time went backwards: dispatching event at t={event_time!r} "
                f"with clock at t={now!r}"
            )

    def check_heap(self, heap: Sequence[Tuple[float, int, Any]], now: float) -> None:
        """Full heap validation: shape, unique seqs, nothing in the past.

        O(heap) — called at batch boundaries (``schedule_bulk``) and from
        tests, never per event.
        """
        self.checks["heap_integrity"] += 1
        size = len(heap)
        seqs = set()
        for index, entry in enumerate(heap):
            time, seq = entry[0], entry[1]
            if time != time or time == float("inf"):
                raise SanitizeError(f"heap entry {index} has time {time!r}")
            if time < now:
                raise SanitizeError(
                    f"heap entry {index} is scheduled in the past "
                    f"(t={time!r} < now={now!r})"
                )
            if seq in seqs:
                raise SanitizeError(
                    f"duplicate heap sequence number {seq}: tie-break order "
                    "is ambiguous and comparison can reach the Event"
                )
            seqs.add(seq)
            child = 2 * index + 1
            for offset in (0, 1):
                if child + offset < size:
                    child_entry = heap[child + offset]
                    if (entry[0], entry[1]) > (child_entry[0], child_entry[1]):
                        raise SanitizeError(
                            f"heap invariant broken at index {index}: "
                            f"parent {(entry[0], entry[1])} > child "
                            f"{(child_entry[0], child_entry[1])}"
                        )

    # -- block layer / device: slot + channel conservation -------------------

    def check_slots(self, inflight: int, nr_slots: int, dev: str) -> None:
        """Request-slot balance after every acquire/release."""
        self.checks["slot_conservation"] += 1
        if inflight < 0:
            raise SanitizeError(
                f"device {dev}: request slot released twice "
                f"(inflight={inflight})"
            )
        if inflight > nr_slots:
            raise SanitizeError(
                f"device {dev}: {inflight} bios dispatched against "
                f"{nr_slots} request slots (slot leak)"
            )

    def check_channels(self, busy: int, parallelism: int, dev: str) -> None:
        """Device service-channel balance after every begin/complete/abort."""
        self.checks["channel_conservation"] += 1
        if busy < 0:
            raise SanitizeError(
                f"device {dev}: service channel freed twice (busy={busy})"
            )
        if busy > parallelism:
            raise SanitizeError(
                f"device {dev}: {busy} busy channels exceed parallelism "
                f"{parallelism} (channel leak)"
            )

    # -- iocost: cost conservation + debt monotonicity ------------------------

    def note_incurred(self, controller: int, cost: float) -> None:
        """A bio was priced at enqueue: ``cost`` entered the system."""
        self._incurred[controller] = self._incurred.get(controller, 0.0) + cost

    def note_charged(self, controller: int, cost: float) -> None:
        """``cost`` was charged to some group's ``abs_usage``."""
        self._charged[controller] = self._charged.get(controller, 0.0) + cost

    def check_conservation(self, controller: int, pending: float, dev: str) -> None:
        """Per-period: incurred == charged + still-queued (nothing vanishes,
        nothing is charged twice)."""
        self.checks["cost_conservation"] += 1
        incurred = self._incurred.get(controller, 0.0)
        charged = self._charged.get(controller, 0.0)
        slack = _REL_TOL * max(1.0, incurred)
        if abs(incurred - (charged + pending)) > slack:
            raise SanitizeError(
                f"device {dev}: iocost cost conservation violated — "
                f"incurred {incurred!r} != charged {charged!r} + "
                f"pending {pending!r}"
            )

    def check_vtime(self, controller: int, cgroup: str, local_vtime: float) -> None:
        """A group's local vtime never decreases: debt is repaid by global
        vtime catching up, never by rolling the charge back."""
        self.checks["vtime_monotonic"] += 1
        key = (controller, cgroup)
        last = self._vtime.get(key)
        if last is not None and local_vtime < last:
            raise SanitizeError(
                f"cgroup {cgroup}: local vtime moved backwards "
                f"({last!r} -> {local_vtime!r}); debt must never be "
                "double-paid or rolled back"
            )
        self._vtime[key] = local_vtime

    # -- spans ---------------------------------------------------------------

    def span_evicted(self, dev: str, bio_id: int) -> None:
        """An open span was dropped at the pending bound: a latency
        attribution silently lost — fail-stop under sanitize."""
        self.checks["span_leak"] += 1
        raise SanitizeError(
            f"span leak: open span for bio #{bio_id} on {dev} evicted at "
            "the pending bound (raise max_pending or drain completions)"
        )

    def check_spans(self, tracker: Any, require_drained: bool = False) -> None:
        """Explicit tracker audit (diff harness, tests): no evictions, and —
        when ``require_drained`` — no spans still open."""
        self.checks["span_leak"] += 1
        if tracker.evicted:
            raise SanitizeError(
                f"span leak: {tracker.evicted} open span(s) were evicted"
            )
        if require_drained and tracker.open_count:
            raise SanitizeError(
                f"span leak: {tracker.open_count} span(s) still open after "
                "the workload drained"
            )

    # -- rng stream aliasing ---------------------------------------------------

    def check_stream(self, label: str, seed_seq: "np.random.SeedSequence") -> None:
        """Fingerprint a labeled stream's seed material; error on aliasing.

        The fingerprint is drawn from a *fresh* generator built on the same
        :class:`~numpy.random.SeedSequence` — seed sequences are pure
        functions of (entropy, spawn_key), so this never consumes or
        perturbs the caller's stream.  Two different labels mapping to one
        fingerprint means both consumers share a bit stream.
        """
        self.checks["rng_fingerprint"] += 1
        probe = np.random.default_rng(seed_seq)
        fingerprint = tuple(
            int(x) for x in probe.integers(0, 2 ** 63, size=FINGERPRINT_DRAWS)
        )
        first = self._streams.get(fingerprint)
        if first is None:
            self._streams[fingerprint] = label
        elif first != label:
            raise SanitizeError(
                f"rng stream aliasing: labels {first!r} and {label!r} "
                f"produce identical draw sequences (first "
                f"{FINGERPRINT_DRAWS} draws collide) — two consumers are "
                "sharing one bit stream"
            )

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """JSON-able per-invariant check counts."""
        return dict(self.checks)

    def describe(self) -> str:
        parts: List[str] = [f"{name}={self.checks[name]}" for name in self.CHECKS]
        return " ".join(parts)


#: The process-global sanitizer every instrumented component caches — the
#: analogue of :data:`repro.obs.prof.PROF`.
SANITIZE = Sanitizer()

if os.environ.get("REPRO_SANITIZE", "").strip().lower() in {"1", "true", "yes", "on"}:
    SANITIZE.enable()


__all__ = [
    "FINGERPRINT_DRAWS",
    "SANITIZE",
    "SanitizeError",
    "Sanitizer",
]
