"""``python -m repro.sanitize diff`` — differential fast/slow-path harness.

PR 8's speedups forked three hot paths, each with a slow twin that is
*supposed* to be observably identical:

* **completions** — the callback fast path (``submit(bio, on_done=...)``)
  vs the Signal protocol (``submit(bio).wait(...)``);
* **the event loop** — the inlined :meth:`~repro.sim.Simulator.run` vs the
  ``step()``-based ``_run_profiled`` that the profiler/sanitizer force;
* **sector draws** — chunked vectorized pre-draws vs scalar draws from the
  same stream.

This harness runs one fixed 50k-bio closed-loop workload (the
:mod:`repro.tools.engine_bench` rig shape) twice — once entirely on the
fast variants with all instrumentation off, once entirely on the slow
variants with the profiler *and* every runtime sanitizer on — records the
full tracepoint stream of each run, and **byte-diffs** the two JSONL
traces.  Identical bytes means identical event names, timestamps, bio
ids, costs, and field values in identical order: the strongest
equivalence the observability layer can express.  The slow run doubles
as a sanitized run, so the workload also passes every invariant in
:class:`repro.sanitize.Sanitizer` on the way through.

Wall-clock time is irrelevant here; only the simulated traces matter.
"""

from __future__ import annotations

import io
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.block.bio import Bio, IOOp, reset_bio_ids
from repro.block.device import Device
from repro.block.device_models import SSD_NEW
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.obs.prof import PROF
from repro.obs.trace import TRACE, TraceBuffer
from repro.sanitize import SANITIZE
from repro.sim import Simulator
from repro.testbed import make_controller

DEFAULT_BIOS = 50_000
DEFAULT_DEPTH = 64

#: Trace-ring headroom per bio: submit/throttle/issue/complete plus the
#: periodic planning events.  Sized so the ring never drops (a dropped
#: event would make the byte-diff vacuous, so dropping is an error).
_EVENTS_PER_BIO = 12


class _FastDriver:
    """Closed loop on every fast path: callback completions, chunked draws."""

    SECTOR_CHUNK = 4096

    def __init__(
        self,
        layer: BlockLayer,
        group: Any,
        rng: np.random.Generator,
        bios: int,
        depth: int,
        on_drained: Any,
    ) -> None:
        self.layer = layer
        self.group = group
        self.rng = rng
        self.bios = bios
        self.depth = depth
        self.issued = 0
        self.done = 0
        self.on_drained = on_drained
        self._sectors: List[int] = []
        self._i = 0

    def start(self) -> None:
        for _ in range(min(self.depth, self.bios)):
            self._issue()

    def _next_sector(self) -> int:
        i = self._i
        if i == len(self._sectors):
            self._sectors = (
                self.rng.integers(0, 1 << 30, size=self.SECTOR_CHUNK) * 8
            ).tolist()
            i = 0
        self._i = i + 1
        return self._sectors[i]

    def _issue(self) -> None:
        self.issued += 1
        self.layer.submit(
            Bio(IOOp.READ, 4096, self._next_sector(), self.group),
            on_done=self._done_cb,
        )

    def _done_cb(self, bio: Bio) -> None:
        self.done += 1
        if self.issued < self.bios:
            self._issue()
        elif self.done >= self.bios:
            self.on_drained()


class _SlowDriver(_FastDriver):
    """The same closed loop on every slow path: Signal completions,
    scalar sector draws (stream-equivalent to the chunked pre-draw)."""

    def _next_sector(self) -> int:
        return int(self.rng.integers(0, 1 << 30)) * 8

    def _issue(self) -> None:
        self.issued += 1
        signal = self.layer.submit(Bio(IOOp.READ, 4096, self._next_sector(), self.group))
        if signal is None:  # pragma: no cover - submit() contract
            raise RuntimeError("submit() without on_done must return a Signal")
        signal.wait(self._done_cb)


def run_traced(bios: int, depth: int, slow: bool) -> str:
    """One rig run with full tracing; returns the JSONL trace text.

    ``slow=False`` runs with all instrumentation off (the inlined engine
    loop, callback completions, chunked draws); ``slow=True`` enables the
    profiler and the sanitizers — forcing the ``step()``-based loop — and
    drives completions through Signals with scalar draws.
    """
    reset_bio_ids()
    prof_was, san_was = PROF.enabled, SANITIZE.enabled
    if slow:
        PROF.reset()
        PROF.enable()
        SANITIZE.reset()
        SANITIZE.enable()
    else:
        # The fast run must take the genuinely uninstrumented paths even
        # when the ambient process is sanitized (REPRO_SANITIZE=1 CI):
        # with SANITIZE armed the engine falls back to the slow loop and
        # the byte-diff would compare slow against slow.
        PROF.disable()
        SANITIZE.disable()
    buffer = TraceBuffer(capacity=bios * _EVENTS_PER_BIO + 4096)
    try:
        sim = Simulator()
        device = Device(sim, SSD_NEW, np.random.default_rng(0))
        controller = make_controller("iocost", SSD_NEW)
        layer = BlockLayer(sim, device, controller)
        group = CgroupTree().create("diff")
        driver_cls = _SlowDriver if slow else _FastDriver
        driver = driver_cls(
            layer, group, np.random.default_rng(1), bios, depth,
            on_drained=controller.detach,
        )
        buffer.attach(TRACE)
        driver.start()
        sim.run()
    finally:
        if slow:
            PROF.reset()
        PROF.enabled = prof_was
        # The slow run's check counters stay readable; only the flag is
        # restored to its ambient state.
        SANITIZE.enabled = san_was
        buffer.detach()
    if layer.completed_ios != bios:
        raise RuntimeError(f"diff rig completed {layer.completed_ios} of {bios} bios")
    if buffer.dropped:
        raise RuntimeError(
            f"trace ring dropped {buffer.dropped} events; the byte-diff "
            "would be vacuous (raise the capacity)"
        )
    out = io.StringIO()
    buffer.save(out)
    return out.getvalue()


def first_divergence(
    fast: str, slow: str
) -> Optional[Tuple[int, Optional[str], Optional[str]]]:
    """First differing line as (1-based line number, fast line, slow line);
    None when the traces are byte-identical."""
    if fast == slow:
        return None
    fast_lines = fast.splitlines()
    slow_lines = slow.splitlines()
    for index in range(max(len(fast_lines), len(slow_lines))):
        a = fast_lines[index] if index < len(fast_lines) else None
        b = slow_lines[index] if index < len(slow_lines) else None
        if a != b:
            return (index + 1, a, b)
    # Same lines but different bytes: trailing-newline difference.
    return (max(len(fast_lines), len(slow_lines)) + 1, None, None)


def run_diff(bios: int = DEFAULT_BIOS, depth: int = DEFAULT_DEPTH) -> dict:
    """Run both variants and compare; returns a JSON-able report."""
    fast = run_traced(bios, depth, slow=False)
    slow = run_traced(bios, depth, slow=True)
    divergence = first_divergence(fast, slow)
    report = {
        "bios": bios,
        "depth": depth,
        "events": fast.count("\n"),
        "identical": divergence is None,
        "sanitize_checks": SANITIZE.snapshot(),
        "fast_trace": fast,
        "slow_trace": slow,
    }
    if divergence is not None:
        line, fast_line, slow_line = divergence
        report["divergence"] = {
            "line": line,
            "fast": fast_line,
            "slow": slow_line,
        }
    return report
