"""Observability: tracepoints, metrics, io.stat, and overhead profiling.

The real IOCost is debugged in production through three surfaces this
package reproduces for the simulated stack:

* :mod:`repro.obs.trace` — a kernel-style tracepoint registry.  Emitting
  sites are compiled into the hot paths but cost a single flag check while
  no subscriber is attached; a bounded ring buffer collects typed events
  and round-trips them through JSONL (``bio_complete`` events convert to
  :class:`repro.block.trace.TraceRecord` for replay).
* :mod:`repro.obs.metrics` — counters, gauges, and log-bucketed HDR-style
  latency histograms; also home of the exact nearest-rank percentile that
  :mod:`repro.analysis.stats` now delegates to.
* :mod:`repro.obs.iostat` — the cgroup2 ``io.stat`` surface: per-cgroup
  rbytes/wbytes/rios/wios/dbytes plus iocost's ``cost.*`` keys, aggregated
  hierarchically and surviving cgroup removal.
* :mod:`repro.obs.spans` — bio-lifecycle spans: the four bio tracepoints
  stitched into per-bio latency decompositions (queue wait, per-controller
  throttle wait, service) with per-cgroup × per-device stage histograms
  and a :meth:`~repro.obs.spans.SpanTracker.breakdown` rollup.
* :mod:`repro.obs.timeline` — Chrome trace-event JSON export of spans
  (loads in Perfetto: a process per cgroup, a row per device).
* :mod:`repro.obs.prof` — the deterministic engine self-profiler: counts
  events dispatched, heap operations, bios moved, and tracepoint
  emissions behind the same zero-cost guard pattern as tracepoints.
* :mod:`repro.obs.snapshot` — the per-period monitor snapshot format
  shared by the live monitor (:mod:`repro.tools.monitor`) and its CLI.
* :mod:`repro.obs.overhead` — wall-clock profiling of simulator runs, so
  Figure 9-style experiments can quantify the cost of tracing itself.

See ``docs/OBSERVABILITY.md`` for the tracepoints → spans → breakdown →
Perfetto walk-through.
"""

from repro.obs.iostat import IOStat
from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry, exact_percentile
from repro.obs.overhead import OverheadReport, disabled_check_cost, wall_time
from repro.obs.prof import PROF, SimProfiler
from repro.obs.snapshot import MonitorSnapshot, load_snapshots, render_snapshot
from repro.obs.spans import Annotation, Span, SpanTracker
from repro.obs.timeline import to_chrome_trace, validate_chrome_trace, write_chrome_trace
from repro.obs.trace import TRACE, TraceBuffer, TraceEvent, TracePoint, TraceRegistry

__all__ = [
    "PROF",
    "TRACE",
    "Annotation",
    "Counter",
    "Gauge",
    "Histogram",
    "IOStat",
    "MetricRegistry",
    "MonitorSnapshot",
    "OverheadReport",
    "SimProfiler",
    "Span",
    "SpanTracker",
    "TraceBuffer",
    "TraceEvent",
    "TracePoint",
    "TraceRegistry",
    "disabled_check_cost",
    "exact_percentile",
    "load_snapshots",
    "render_snapshot",
    "to_chrome_trace",
    "validate_chrome_trace",
    "wall_time",
    "write_chrome_trace",
]
