"""Monitor snapshot format: what ``iocost_monitor.py`` prints, as data.

The real ``iocost_monitor`` (a drgn script shipped with the kernel) walks
live kernel memory each period and prints device state (vrate%, busy level)
plus one row per active cgroup (hweight, usage, debt, delay).  The
simulation equivalent is a :class:`MonitorSnapshot` captured per planning
period by :class:`repro.tools.monitor.Monitor`, serialised as JSONL so runs
can be re-rendered or diffed offline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, TextIO


@dataclass(frozen=True)
class MonitorSnapshot:
    """One per-period observation of one device's stack.

    Multi-device machines produce one snapshot per device per period;
    ``dev`` carries the device's stable ``maj:min`` id (``None`` on streams
    recorded before device ids existed).
    """

    time: float
    device: str
    controller: str
    period: float
    vrate: float
    busy_level: int
    #: path -> row; keys include ``weight``, ``hweight``, ``usage_delta``,
    #: ``debt_ms``, ``delay_ms``, ``queued``, ``active`` plus the io.stat
    #: counters (``rbytes``/``wbytes``/... and ``cost.*``) for this device.
    groups: Dict[str, Dict[str, float]] = field(default_factory=dict)
    dev: Optional[str] = None

    def to_json(self) -> str:
        payload = {
            "time": self.time,
            "device": self.device,
            "dev": self.dev,
            "controller": self.controller,
            "period": self.period,
            "vrate": self.vrate,
            "busy_level": self.busy_level,
            "groups": self.groups,
        }
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "MonitorSnapshot":
        payload = json.loads(line)
        return cls(
            time=payload["time"],
            device=payload["device"],
            controller=payload["controller"],
            period=payload["period"],
            vrate=payload["vrate"],
            busy_level=payload["busy_level"],
            groups=payload.get("groups", {}),
            dev=payload.get("dev"),
        )


def load_snapshots(stream: TextIO) -> List[MonitorSnapshot]:
    """Load a JSONL snapshot stream written by the monitor."""
    return [MonitorSnapshot.from_json(line) for line in stream if line.strip()]


_HEADER = (
    f"  {'cgroup':<28} {'act':>3} {'weight':>7} {'hweight%':>8} "
    f"{'usage%':>7} {'wait_ms':>8} {'debt_ms':>8} {'delay_ms':>8}"
)


def render_snapshot(snapshot: MonitorSnapshot) -> str:
    """Render one snapshot in ``iocost_monitor`` style."""
    dev = f"[{snapshot.dev}] " if snapshot.dev else ""
    lines = [
        f"{snapshot.device} {dev}{snapshot.controller}  "
        f"t={snapshot.time:8.3f}s  per={snapshot.period * 1e3:.1f}ms  "
        f"vrate={snapshot.vrate * 100:7.2f}%  busy={snapshot.busy_level:+d}",
        _HEADER,
    ]
    for path in sorted(snapshot.groups):
        row = snapshot.groups[path]
        name = path or "/"
        if len(name) > 28:
            name = "..." + name[-25:]
        active = "*" if row.get("active") else " "
        usage_pct = row.get("usage_pct", 0.0)
        lines.append(
            f"  {name:<28} {active:>3} {row.get('weight', 0):>7.0f} "
            f"{row.get('hweight', 0.0) * 100:>8.2f} {usage_pct:>7.2f} "
            f"{row.get('wait_ms', 0.0):>8.2f} {row.get('debt_ms', 0.0):>8.2f} "
            f"{row.get('delay_ms', 0.0):>8.2f}"
        )
    return "\n".join(lines)


def render_snapshots(snapshots: Iterable[MonitorSnapshot]) -> str:
    """Render a whole stream, blank-line separated."""
    return "\n\n".join(render_snapshot(snapshot) for snapshot in snapshots)
