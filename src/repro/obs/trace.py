"""Kernel-style tracepoints for the simulated IO stack.

The kernel debugs IOCost through static tracepoints (``iocost_ioc_vrate_adj``,
``iocost_iocg_activate``, block events consumed by blktrace, ...): emitting
sites are compiled into the hot paths, cost one branch while nothing is
attached, and fan out to subscribers when enabled.  This module is the
simulator's equivalent:

* :data:`TRACE` — the global registry holding one :class:`TracePoint` per
  catalogued event.  Call sites cache the point object and guard emission
  with ``if point.enabled:`` — a single attribute check when tracing is off.
* :class:`TraceBuffer` — a bounded ring buffer subscriber with JSONL
  persistence.  ``bio_complete`` events convert to
  :class:`repro.block.trace.TraceRecord` via :meth:`TraceBuffer.to_trace_records`,
  so a captured trace can be replayed with the existing
  :class:`~repro.block.trace.TraceReplayer`.

Events are *typed*: each tracepoint declares its field names and emission
rejects unknown fields *and* missing required fields (everything declared
except :data:`OPTIONAL_FIELDS`), so subscribers can rely on the schema.

The event catalogue::

    bio_submit       bio entered the block layer
    bio_throttle     a controller held a bio back (budget, tokens, depth)
    bio_issue        bio dispatched to the device (re-emitted per retry)
    bio_complete     device finished a bio successfully (TraceRecord-convertible)
    bio_error        bio finished with a non-OK status after all retries
    bio_requeue      block layer requeued a failed/timed-out bio for retry
    dev_fault_begin  an injected device fault window opened (repro.faults)
    dev_fault_end    an injected device fault window closed
    vrate_adjust     IOCost planning path adjusted (or confirmed) vrate
    qos_period       one IOCost planning period ran
    donation_recalc  §3.6 donation pass rewrote weights
    debt_pay         §3.5 debt activity (charge / userspace throttle)
    reclaim_scan     memory reclaim picked a victim cgroup
    swap_out         reclaim wrote pages to swap
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field

from repro.obs.prof import PROF
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
)

#: The tracepoint catalogue: name -> declared field names.  ``time`` is
#: implicit on every event (simulated seconds).
#: Every device-scoped event also declares ``dev``, the ``maj:min`` id of
#: the block device the event happened on, so multi-device traces can be
#: demultiplexed.  Emitting it is optional (single-device unit rigs skip it).
#: Every bio-lifecycle event carries ``id``, the bio's process-unique
#: ordinal, so the four events of one bio stitch into a span keyed by
#: ``(dev, id)`` (:class:`repro.obs.spans.SpanTracker`).
EVENT_CATALOGUE: Dict[str, Tuple[str, ...]] = {
    "bio_submit": ("dev", "id", "cgroup", "op", "nbytes", "sector", "flags", "prio"),
    "bio_throttle": ("dev", "id", "cgroup", "op", "nbytes", "reason", "ctl"),
    "bio_issue": ("dev", "id", "cgroup", "op", "nbytes", "wait"),
    "bio_complete": (
        "dev", "id", "cgroup", "op", "nbytes", "sector", "flags", "prio",
        "submit_time", "latency", "device_latency",
    ),
    # Final failure: status is the bio's terminal BioStatus value
    # ("eio"/"timeout"), retries how many requeues it burned first.
    "bio_error": ("dev", "id", "cgroup", "op", "nbytes", "status", "retries"),
    # One retry decision: backoff is the exponential delay (seconds)
    # before the bio re-enters dispatch.
    "bio_requeue": (
        "dev", "id", "cgroup", "op", "nbytes", "status", "retries", "backoff",
    ),
    # Fault windows (repro.faults): index is the fault's position in its
    # plan; until the window's absolute end time (-1.0 = unbounded hang).
    "dev_fault_begin": ("dev", "kind", "index", "until"),
    "dev_fault_end": ("dev", "kind", "index"),
    "vrate_adjust": (
        "dev", "vrate", "busy_level", "saturated", "starved", "read_p", "write_p",
    ),
    "qos_period": ("dev", "period", "vrate", "active_groups", "budget_blocked"),
    "donation_recalc": ("dev", "donors", "donated_total"),
    "debt_pay": ("dev", "cgroup", "kind", "amount", "debt"),
    "reclaim_scan": ("requester", "victim", "nbytes", "free_bytes"),
    "swap_out": ("dev", "owner", "charged_to", "nbytes"),
}

#: Declared fields that :meth:`TracePoint.emit` may omit.  ``dev`` is the
#: only one: single-device unit rigs predate device ids and legitimately
#: emit without it.  Every other declared field is required — ``id`` (the
#: per-bio identity :class:`repro.obs.spans.SpanTracker` keys spans on)
#: and ``ctl`` (the throttling controller's name, separating iocost from
#: blk-throttle from device-queue blame in stacked configurations) among
#: them.  An emit that skips a required field raises :class:`TraceError`,
#: and the ``trace-catalogue`` simlint rule enforces the same contract
#: statically.
OPTIONAL_FIELDS: FrozenSet[str] = frozenset({"dev"})


class TraceError(ValueError):
    """Raised for unknown events, unknown fields, or missing required
    fields relative to a point's schema."""


@dataclass(frozen=True)
class TraceEvent:
    """One emitted event: name, simulated timestamp, typed fields."""

    name: str
    time: float
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {"event": self.name, "time": self.time}
        payload.update(self.fields)
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        payload = json.loads(line)
        name = payload.pop("event")
        time = payload.pop("time")
        return cls(name=name, time=time, fields=payload)


class TracePoint:
    """One named event source.

    ``enabled`` is a plain attribute kept in sync with the subscriber list;
    hot paths read it once and skip everything else while it is False.
    """

    __slots__ = ("name", "fields", "required", "enabled", "subscribers")

    def __init__(self, name: str, fields: Sequence[str]):
        self.name = name
        self.fields = tuple(fields)
        #: Fields every emit must supply (declared minus OPTIONAL_FIELDS).
        self.required = frozenset(fields) - OPTIONAL_FIELDS
        self.enabled = False
        self.subscribers: List[Callable[[TraceEvent], None]] = []

    def emit(self, time: float, **fields: Any) -> None:
        """Deliver one event to every subscriber (call only when enabled)."""
        unknown = set(fields) - set(self.fields)
        if unknown:
            raise TraceError(
                f"tracepoint {self.name!r} has no field(s) {sorted(unknown)}"
            )
        missing = self.required - set(fields)
        if missing:
            raise TraceError(
                f"tracepoint {self.name!r} emitted without required "
                f"field(s) {sorted(missing)}"
            )
        if PROF.enabled:
            PROF.note_emit(self.name)
        event = TraceEvent(self.name, time, fields)
        for subscriber in self.subscribers:
            subscriber(event)

    def _attach(self, subscriber: Callable[[TraceEvent], None]) -> None:
        self.subscribers.append(subscriber)
        self.enabled = True

    def _detach(self, subscriber: Callable[[TraceEvent], None]) -> None:
        try:
            self.subscribers.remove(subscriber)
        except ValueError:
            return
        self.enabled = bool(self.subscribers)


class Subscription:
    """Handle returned by :meth:`TraceRegistry.subscribe`; ``close()`` detaches."""

    def __init__(self, points: List[TracePoint], callback: Callable[[TraceEvent], None]):
        self._points = points
        self._callback = callback
        self._open = True

    def close(self) -> None:
        if not self._open:
            return
        self._open = False
        for point in self._points:
            point._detach(self._callback)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class TraceRegistry:
    """A set of named tracepoints (the module-level :data:`TRACE` normally)."""

    def __init__(self, catalogue: Optional[Dict[str, Tuple[str, ...]]] = None):
        catalogue = EVENT_CATALOGUE if catalogue is None else catalogue
        self.points: Dict[str, TracePoint] = {
            name: TracePoint(name, fields) for name, fields in catalogue.items()
        }

    def point(self, name: str) -> TracePoint:
        try:
            return self.points[name]
        except KeyError:
            raise TraceError(f"unknown tracepoint {name!r}") from None

    @property
    def enabled(self) -> bool:
        """True while any tracepoint has a subscriber."""
        return any(point.enabled for point in self.points.values())

    def subscribe(
        self,
        callback: Callable[[TraceEvent], None],
        events: Optional[Iterable[str]] = None,
    ) -> Subscription:
        """Attach ``callback`` to the named events (all events by default)."""
        names = list(events) if events is not None else list(self.points)
        points = [self.point(name) for name in names]
        for point in points:
            point._attach(callback)
        return Subscription(points, callback)

    def reset(self) -> None:
        """Drop every subscriber (test/teardown helper)."""
        for point in self.points.values():
            point.subscribers.clear()
            point.enabled = False


#: The global registry all instrumented modules emit through — the analogue
#: of the kernel's static tracepoints being process-global.
TRACE = TraceRegistry()


class TraceBuffer:
    """Bounded ring buffer of :class:`TraceEvent` with JSONL persistence.

    Subscribe it to a registry (``with TraceBuffer().attach(...)``) to start
    collection; when the buffer is full the oldest events are dropped, as a
    kernel trace ring does.
    """

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.recorded = 0
        self._subscription: Optional[Subscription] = None

    def __call__(self, event: TraceEvent) -> None:
        self._events.append(event)
        self.recorded += 1

    # -- subscription ------------------------------------------------------

    def attach(
        self,
        registry: Optional[TraceRegistry] = None,
        events: Optional[Iterable[str]] = None,
    ) -> "TraceBuffer":
        if self._subscription is not None:
            raise TraceError("buffer already attached")
        registry = TRACE if registry is None else registry
        self._subscription = registry.subscribe(self, events)
        return self

    def detach(self) -> None:
        if self._subscription is not None:
            self._subscription.close()
            self._subscription = None

    def __enter__(self) -> "TraceBuffer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.detach()

    # -- access ------------------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Events lost to ring overflow."""
        return self.recorded - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def select(self, name: str) -> List[TraceEvent]:
        return [event for event in self._events if event.name == name]

    # -- persistence ---------------------------------------------------------

    def save(self, stream: TextIO) -> int:
        """Write buffered events as JSON lines; returns the count."""
        count = 0
        for event in self._events:
            stream.write(event.to_json() + "\n")
            count += 1
        return count

    def to_trace_records(self) -> list:
        """Convert buffered ``bio_complete`` events to replayable records.

        Returns :class:`repro.block.trace.TraceRecord` objects sorted by
        submit time — the bridge between live tracing and the existing
        trace-replay tooling.
        """
        from repro.block.trace import TraceRecord  # local: avoids import cycle

        records = []
        for event in self._events:
            if event.name != "bio_complete":
                continue
            fields = event.fields
            records.append(
                TraceRecord(
                    submit_time=fields["submit_time"],
                    cgroup=fields["cgroup"],
                    op=fields["op"],
                    nbytes=fields["nbytes"],
                    sector=fields["sector"],
                    flags=fields["flags"],
                    latency=fields["latency"],
                    prio=fields.get("prio"),
                )
            )
        records.sort(key=lambda record: record.submit_time)
        return records


def load_events(stream: TextIO) -> List[TraceEvent]:
    """Load a JSONL event stream written by :meth:`TraceBuffer.save`."""
    return [TraceEvent.from_json(line) for line in stream if line.strip()]
