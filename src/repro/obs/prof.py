"""Deterministic self-profiler: how much work did the engine itself do?

ROADMAP item 2 ("make the event engine the fastest Python DES it can be")
needs a denominator before any optimisation: *what* does the engine spend
its event budget on?  Wall-clock profilers (``cProfile``, wrapped by
:mod:`repro.tools.engine_bench`) answer that in seconds but are
non-deterministic; this module counts the engine's own operations in
simulation-exact integers, so two runs with the same seeds produce the
same profile and a regression in per-bio work shows up as a counter
delta, not a noisy timing.

Instrumented components (each site pays one ``enabled`` flag check while
profiling is off — the same zero-cost guard pattern as
:mod:`repro.obs.trace` tracepoints, held to the same <5% bar by
``benchmarks/test_obs_overhead.py``):

* :class:`repro.sim.Simulator` — events dispatched, heap pushes/pops;
* :class:`repro.block.layer.BlockLayer` — bios submitted, issued, completed;
* :class:`repro.core.controller.IOCost` — pump calls and planning ticks;
* :class:`repro.obs.trace.TracePoint` — emissions per tracepoint site.

Usage::

    from repro.obs.prof import PROF

    PROF.reset()
    with PROF:                  # or PROF.enable() / PROF.disable()
        bed.run(1.0)
    PROF.snapshot()             # JSON-able counter dict
    PROF.per_bio()              # work amplification: ops per completed bio
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class SimProfiler:
    """Counter bundle behind a single ``enabled`` flag.

    Counters are plain integer attributes so enabled-path increments stay
    cheap; ``emits_by_point`` maps tracepoint name -> emission count (only
    populated while tracing is *also* enabled, since disabled tracepoints
    never reach ``emit``).
    """

    __slots__ = (
        "enabled",
        "events_dispatched",
        "heap_pushes",
        "heap_pops",
        "bios_submitted",
        "bios_issued",
        "bios_completed",
        "pump_calls",
        "plan_ticks",
        "emits_by_point",
    )

    #: Plain-integer counter attribute names (everything but the flag and
    #: the per-point emission map).
    COUNTERS = (
        "events_dispatched",
        "heap_pushes",
        "heap_pops",
        "bios_submitted",
        "bios_issued",
        "bios_completed",
        "pump_calls",
        "plan_ticks",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.emits_by_point: Dict[str, int] = {}
        self.events_dispatched = 0
        self.heap_pushes = 0
        self.heap_pops = 0
        self.bios_submitted = 0
        self.bios_issued = 0
        self.bios_completed = 0
        self.pump_calls = 0
        self.plan_ticks = 0

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> "SimProfiler":
        self.enabled = True
        return self

    def disable(self) -> "SimProfiler":
        self.enabled = False
        return self

    def reset(self) -> "SimProfiler":
        """Zero every counter (does not change ``enabled``)."""
        for name in self.COUNTERS:
            setattr(self, name, 0)
        self.emits_by_point.clear()
        return self

    def __enter__(self) -> "SimProfiler":
        return self.enable()

    def __exit__(self, *exc: Any) -> None:
        self.disable()

    # -- enabled-path helpers ------------------------------------------------

    def note_emit(self, point_name: str) -> None:
        """Count one tracepoint emission (called from ``TracePoint.emit``)."""
        self.emits_by_point[point_name] = self.emits_by_point.get(point_name, 0) + 1

    # -- reporting -----------------------------------------------------------

    @property
    def total_checks(self) -> int:
        """Total guard passes the counters witnessed.

        Each instrumented site increments exactly one plain counter per
        pass, so the sum equals the number of ``if prof.enabled:`` checks
        the same deterministic run performs while profiling is *disabled* —
        the quantity the overhead model needs.  Tracepoint emissions are
        excluded: their guard is the tracepoint's own ``enabled`` flag.
        """
        return sum(getattr(self, name) for name in self.COUNTERS)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able counter view (stable key order irrelevant: plain dict)."""
        out: Dict[str, Any] = {name: getattr(self, name) for name in self.COUNTERS}
        out["emits_by_point"] = dict(self.emits_by_point)
        return out

    def per_bio(self) -> Optional[Dict[str, float]]:
        """Work amplification: engine ops per completed bio, or ``None``
        when nothing completed."""
        if self.bios_completed == 0:
            return None
        done = float(self.bios_completed)
        return {
            name: getattr(self, name) / done
            for name in self.COUNTERS
            if name != "bios_completed"
        }

    def describe(self) -> str:
        parts = [f"{name}={getattr(self, name)}" for name in self.COUNTERS]
        if self.emits_by_point:
            emitted = sum(self.emits_by_point.values())
            parts.append(f"trace_emits={emitted}")
        return " ".join(parts)


#: The process-global profiler every instrumented component caches — the
#: analogue of :data:`repro.obs.trace.TRACE` being process-global.
PROF = SimProfiler()
