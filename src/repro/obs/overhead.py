"""Wall-clock overhead profiling for simulator runs.

Figure 9's question — "what does the control mechanism cost on the hot
path?" — applies to the tracing layer itself: instrumented call sites pay a
flag check per tracepoint even while tracing is disabled.  This module
measures that cost so ``benchmarks/test_obs_overhead.py`` can assert it
stays negligible and record the trajectory across PRs:

* :func:`wall_time` — best-of-N wall-clock timing of a callable (the whole
  simulated run, driven by :class:`~repro.sim.Simulator`).
* :func:`disabled_check_cost` — measured per-call cost of the disabled
  ``if point.enabled:`` guard, the exact code shape every emitting site
  uses.
* :class:`OverheadReport` — the derived numbers: events/sec, checks per
  event, and the disabled-tracing overhead fraction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs.prof import SimProfiler
from repro.obs.trace import TRACE, TracePoint, TraceRegistry


def wall_time(fn: Callable[[], object], repeat: int = 3) -> float:
    """Minimum wall-clock seconds over ``repeat`` invocations of ``fn``.

    Minimum (not mean) is the standard microbenchmark reduction: scheduler
    noise only ever adds time.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def disabled_check_cost(iterations: int = 200_000) -> float:
    """Per-call wall-clock cost (seconds) of a disabled tracepoint guard.

    Times ``if point.enabled: point.emit(...)`` with no subscribers —
    byte-for-byte the pattern at every instrumented call site — against an
    empty loop, and returns the difference per iteration (floored at 0).
    """
    point = TracePoint("bench", ("value",))

    start = time.perf_counter()
    for _ in range(iterations):
        if point.enabled:
            point.emit(0.0, value=1)
    guarded = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(iterations):
        pass
    empty = time.perf_counter() - start

    return max(0.0, (guarded - empty) / iterations)


def disabled_prof_check_cost(iterations: int = 200_000) -> float:
    """Per-call wall-clock cost (seconds) of a disabled profiler guard.

    Times ``if prof.enabled: prof.counter += 1`` against an empty loop —
    the exact shape of every :data:`repro.obs.prof.PROF` call site — and
    returns the difference per iteration (floored at 0).
    """
    prof = SimProfiler()

    start = time.perf_counter()
    for _ in range(iterations):
        if prof.enabled:
            prof.bios_submitted += 1
    guarded = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(iterations):
        pass
    empty = time.perf_counter() - start

    return max(0.0, (guarded - empty) / iterations)


def count_emissions(
    fn: Callable[[], object], registry: Optional[TraceRegistry] = None
) -> int:
    """Run ``fn`` once with every tracepoint enabled, counting emissions.

    The emission count of an enabled run equals the guard-check count of
    the same (deterministic) run with tracing disabled, which is what the
    overhead model needs.
    """
    registry = TRACE if registry is None else registry
    counter = {"n": 0}

    def count(_event: object) -> None:
        counter["n"] += 1

    subscription = registry.subscribe(count)
    try:
        fn()
    finally:
        subscription.close()
    return counter["n"]


@dataclass(frozen=True)
class OverheadReport:
    """Derived overhead numbers for one instrumented run."""

    wall_sec: float
    events_processed: int
    trace_checks: int
    check_cost: float

    @property
    def events_per_second(self) -> float:
        if self.wall_sec <= 0:
            return 0.0
        return self.events_processed / self.wall_sec

    @property
    def checks_per_event(self) -> float:
        if self.events_processed == 0:
            return 0.0
        return self.trace_checks / self.events_processed

    @property
    def overhead_fraction(self) -> float:
        """Fraction of the run spent on disabled-tracepoint flag checks."""
        if self.wall_sec <= 0:
            return 0.0
        return (self.trace_checks * self.check_cost) / self.wall_sec

    def describe(self) -> str:
        return (
            f"wall={self.wall_sec * 1e3:.1f}ms "
            f"events={self.events_processed} "
            f"({self.events_per_second:,.0f}/s) "
            f"checks={self.trace_checks} "
            f"check_cost={self.check_cost * 1e9:.1f}ns "
            f"overhead={self.overhead_fraction * 100:.3f}%"
        )
