"""Bio-lifecycle spans: stitch tracepoints into latency attributions.

A bio's end-to-end latency is the sum of *stages* — time queued behind a
controller's policy, time waiting for a request slot or the issue-path CPU,
time being serviced by the device.  The raw tracepoints
(:mod:`repro.obs.trace`) record the boundary *events*; this module stitches
the four bio-lifecycle events of each bio into one :class:`Span` and
decomposes its latency so "p99 is X" becomes "p99 is X, of which Y was
iocost throttling":

* ``queue_wait`` — submit until the first throttle (or until issue when no
  controller ever held the bio back);
* ``throttle_wait:<ctl>`` — per *controller* wait segments.  Each
  ``bio_throttle`` event opens a segment attributed to its ``ctl`` field
  that runs until the next throttle (or issue), so stacked configurations
  separate iocost budget waits from blk-throttle token waits from
  device-queue depth waits on the same bio.  Consecutive same-``ctl``
  segments merge.
* ``service`` — issue until completion (device queue + media time).

Durations are integer *simulated microseconds* (timestamps are rounded to
usec at span assembly).  ``service`` is computed as the residual of the
end-to-end latency minus every wait stage, so the stages of any span sum to
its end-to-end latency **exactly** — integer arithmetic, no float drift —
which :meth:`SpanTracker.breakdown` relies on when it reports per-stage
shares.

``debt_pay`` and ``donation_recalc`` events that fire while a span is open
are attached to it as annotations: when a bio's latency spike coincides
with a debt payback or a donation-pass weight rewrite, the span says so.

Usage::

    tracker = SpanTracker().attach()      # subscribes to TRACE
    ... run the testbed ...
    tracker.detach()
    tracker.breakdown()                   # machine-wide stage rollup
    tracker.breakdown(cgroup="/ws", dev="8:0")
    tracker.spans                         # the raw Span objects
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import Histogram
from repro.obs.trace import TRACE, Subscription, TraceEvent, TraceRegistry
from repro.sanitize import SANITIZE

#: Stage names (the per-controller stages are ``THROTTLE_PREFIX + ctl``).
QUEUE_WAIT = "queue_wait"
SERVICE = "service"
THROTTLE_PREFIX = "throttle_wait:"
#: Retry attribution: first dispatch -> final dispatch (failed service
#: attempts plus exponential backoffs, docs/FAULTS.md).  Present only on
#: spans that were requeued at least once.
RETRY_WAIT = "retry_wait"

#: Events the tracker subscribes to.
SPAN_EVENTS: Tuple[str, ...] = (
    "bio_submit",
    "bio_throttle",
    "bio_issue",
    "bio_complete",
    "bio_error",
    "bio_requeue",
    "debt_pay",
    "donation_recalc",
    "dev_fault_begin",
    "dev_fault_end",
)


class SpanError(RuntimeError):
    """Raised on span-protocol violations (duplicate submit, bad event)."""


def _usec(time_sec: float) -> int:
    """Simulated seconds -> integer simulated microseconds."""
    return int(round(time_sec * 1e6))


@dataclass(frozen=True)
class Annotation:
    """A controller- or device-side event that fired while the span was open."""

    time_usec: int
    event: str  # "debt_pay", "donation_recalc", "dev_fault_begin/_end"
    detail: str  # e.g. "charge amount=..." / "donors=3" / "kind=hang index=0"


@dataclass(frozen=True)
class Span:
    """One bio's stitched lifecycle with its latency decomposition.

    ``stages`` is ordered — wait stages in occurrence order, ``service``
    last — and its durations sum to ``end_to_end_usec`` exactly.
    """

    dev: str
    bio_id: int
    cgroup: str
    op: str
    nbytes: int
    submit_usec: int
    issue_usec: int
    complete_usec: int
    stages: Tuple[Tuple[str, int], ...]
    annotations: Tuple[Annotation, ...] = ()
    #: Terminal outcome ("ok", "eio", "timeout") and requeue count.
    status: str = "ok"
    retries: int = 0

    @property
    def end_to_end_usec(self) -> int:
        return self.complete_usec - self.submit_usec

    @property
    def service_usec(self) -> int:
        return self.stages[-1][1]

    def stage_usec(self, stage: str) -> int:
        """Total duration of one stage (0 when the span lacks it)."""
        return sum(dur for name, dur in self.stages if name == stage)

    @property
    def throttle_usec(self) -> int:
        """Total time across every ``throttle_wait:*`` stage."""
        return sum(
            dur for name, dur in self.stages if name.startswith(THROTTLE_PREFIX)
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able view (used by the blkprof CLI)."""
        return {
            "dev": self.dev,
            "id": self.bio_id,
            "cgroup": self.cgroup,
            "op": self.op,
            "nbytes": self.nbytes,
            "submit_usec": self.submit_usec,
            "issue_usec": self.issue_usec,
            "complete_usec": self.complete_usec,
            "end_to_end_usec": self.end_to_end_usec,
            "status": self.status,
            "retries": self.retries,
            "stages": [[name, dur] for name, dur in self.stages],
            "annotations": [
                {"time_usec": ann.time_usec, "event": ann.event, "detail": ann.detail}
                for ann in self.annotations
            ],
        }


@dataclass
class _OpenSpan:
    """Mutable accumulator between ``bio_submit`` and ``bio_complete``."""

    dev: str
    bio_id: int
    cgroup: str
    op: str
    nbytes: int
    submit_usec: int
    #: Most recent dispatch (bio_issue re-fires per retry).
    issue_usec: Optional[int] = None
    #: First dispatch; retry_wait spans first_issue -> last issue.
    first_issue_usec: Optional[int] = None
    requeues: int = 0
    #: (time_usec, ctl) per bio_throttle event, in emission order.
    throttles: List[Tuple[int, str]] = field(default_factory=list)
    annotations: List[Annotation] = field(default_factory=list)


class SpanTracker:
    """Trace subscriber that assembles bios into :class:`Span` objects.

    Completed spans land in a bounded ring (oldest dropped, like a trace
    buffer) *and* in per-``(cgroup, dev)`` × per-stage latency histograms,
    so :meth:`breakdown` keeps working after the ring wraps.
    """

    def __init__(
        self,
        capacity: int = 65536,
        resolution: float = 0.02,
        max_pending: int = 65536,
    ):
        if capacity <= 0:
            raise SpanError("capacity must be positive")
        if max_pending <= 0:
            raise SpanError("max_pending must be positive")
        self.capacity = capacity
        self.resolution = resolution
        #: Bound on the open-span map: bios whose completion never arrives
        #: (hung devices, detached-mid-run rigs) would otherwise grow it
        #: without limit.  The oldest open span is evicted past the bound.
        self.max_pending = max_pending
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self._pending: Dict[Tuple[str, int], _OpenSpan] = {}
        #: (cgroup, dev, stage) -> Histogram of stage durations in usec.
        self._stage_hist: Dict[Tuple[str, str, str], Histogram] = {}
        #: (cgroup, dev) -> Histogram of end-to-end latencies in usec.
        self._e2e_hist: Dict[Tuple[str, str], Histogram] = {}
        self.completed = 0
        #: Completed spans whose terminal status was not "ok".
        self.errored = 0
        #: Open spans dropped because the pending map hit ``max_pending``
        #: (their bio_complete/bio_error never arrived in time).
        self.evicted = 0
        #: Lifecycle events for bios whose submit was never seen (tracker
        #: attached mid-run); counted, not an error.
        self.orphan_events = 0
        self._subscription: Optional[Subscription] = None
        # Cached sanitizer: evicting an open span silently loses a latency
        # attribution, which is fail-stop under sanitize (repro.sanitize).
        self._san = SANITIZE

    # -- subscription ------------------------------------------------------

    def attach(self, registry: Optional[TraceRegistry] = None) -> "SpanTracker":
        if self._subscription is not None:
            raise SpanError("tracker already attached")
        registry = TRACE if registry is None else registry
        self._subscription = registry.subscribe(self, SPAN_EVENTS)
        return self

    def detach(self) -> None:
        if self._subscription is not None:
            self._subscription.close()
            self._subscription = None

    def __enter__(self) -> "SpanTracker":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.detach()

    # -- event intake ------------------------------------------------------

    def __call__(self, event: TraceEvent) -> None:
        name = event.name
        if name == "bio_submit":
            self._on_submit(event)
        elif name == "bio_throttle":
            self._on_throttle(event)
        elif name == "bio_issue":
            self._on_issue(event)
        elif name == "bio_complete":
            self._on_complete(event)
        elif name == "bio_error":
            self._on_error(event)
        elif name == "bio_requeue":
            self._on_requeue(event)
        elif name == "debt_pay":
            self._on_debt(event)
        elif name == "donation_recalc":
            self._on_donation(event)
        elif name in ("dev_fault_begin", "dev_fault_end"):
            self._on_fault(event)
        # Other events (a caller subscribed us too broadly) are ignored.

    @staticmethod
    def _key(fields: Dict[str, Any]) -> Tuple[str, int]:
        # ``dev`` is the catalogue's one optional field; single-device unit
        # rigs omit it consistently across all four events, so "" keys match.
        return (str(fields.get("dev", "")), int(fields["id"]))

    def _on_submit(self, event: TraceEvent) -> None:
        fields = event.fields
        key = self._key(fields)
        if key in self._pending:
            raise SpanError(f"duplicate bio_submit for dev={key[0]!r} id={key[1]}")
        if len(self._pending) >= self.max_pending:
            # Evict the oldest open span (dict preserves insertion order):
            # its completion never arrived — a hung bio or a torn-down rig.
            victim = next(iter(self._pending))
            if self._san.enabled:
                self._san.span_evicted(victim[0], victim[1])
            del self._pending[victim]
            self.evicted += 1
        self._pending[key] = _OpenSpan(
            dev=key[0],
            bio_id=key[1],
            cgroup=str(fields["cgroup"]),
            op=str(fields["op"]),
            nbytes=int(fields["nbytes"]),
            submit_usec=_usec(event.time),
        )

    def _on_throttle(self, event: TraceEvent) -> None:
        open_span = self._pending.get(self._key(event.fields))
        if open_span is None:
            self.orphan_events += 1
            return
        open_span.throttles.append((_usec(event.time), str(event.fields["ctl"])))

    def _on_issue(self, event: TraceEvent) -> None:
        open_span = self._pending.get(self._key(event.fields))
        if open_span is None:
            self.orphan_events += 1
            return
        issue_usec = _usec(event.time)
        open_span.issue_usec = issue_usec
        if open_span.first_issue_usec is None:
            open_span.first_issue_usec = issue_usec

    def _on_requeue(self, event: TraceEvent) -> None:
        open_span = self._pending.get(self._key(event.fields))
        if open_span is None:
            self.orphan_events += 1
            return
        open_span.requeues += 1

    def _on_complete(self, event: TraceEvent) -> None:
        self._close(event, status="ok")

    def _on_error(self, event: TraceEvent) -> None:
        self._close(event, status=str(event.fields["status"]))

    def _close(self, event: TraceEvent, status: str) -> None:
        key = self._key(event.fields)
        open_span = self._pending.pop(key, None)
        if open_span is None:
            self.orphan_events += 1
            return
        span = self._finalise(open_span, _usec(event.time), status=status)
        self._spans.append(span)
        self.completed += 1
        if status != "ok":
            self.errored += 1
        self._record(span)

    def _on_debt(self, event: TraceEvent) -> None:
        fields = event.fields
        dev = str(fields.get("dev", ""))
        cgroup = str(fields["cgroup"])
        annotation = Annotation(
            time_usec=_usec(event.time),
            event="debt_pay",
            detail=f"kind={fields['kind']} amount={fields['amount']}",
        )
        for open_span in self._pending.values():
            if open_span.dev == dev and open_span.cgroup == cgroup:
                open_span.annotations.append(annotation)

    def _on_donation(self, event: TraceEvent) -> None:
        fields = event.fields
        dev = str(fields.get("dev", ""))
        annotation = Annotation(
            time_usec=_usec(event.time),
            event="donation_recalc",
            detail=f"donors={fields['donors']}",
        )
        for open_span in self._pending.values():
            if open_span.dev == dev:
                open_span.annotations.append(annotation)

    def _on_fault(self, event: TraceEvent) -> None:
        fields = event.fields
        dev = str(fields.get("dev", ""))
        annotation = Annotation(
            time_usec=_usec(event.time),
            event=event.name,
            detail=f"kind={fields['kind']} index={fields['index']}",
        )
        for open_span in self._pending.values():
            if open_span.dev == dev:
                open_span.annotations.append(annotation)

    # -- span assembly -----------------------------------------------------

    @staticmethod
    def _finalise(
        open_span: _OpenSpan, complete_usec: int, status: str = "ok"
    ) -> Span:
        issue_usec = (
            open_span.issue_usec
            if open_span.issue_usec is not None
            else complete_usec  # never issued: the whole span is wait
        )
        # Wait stages are bounded by the *first* dispatch; retries own the
        # stretch from there to the final dispatch (retry_wait below).
        first_issue_usec = (
            open_span.first_issue_usec
            if open_span.first_issue_usec is not None
            else issue_usec
        )
        end_to_end = complete_usec - open_span.submit_usec
        stages: List[Tuple[str, int]] = []
        waited = 0

        # queue_wait: submit -> first throttle (or issue when unthrottled).
        first_boundary = (
            open_span.throttles[0][0] if open_span.throttles else first_issue_usec
        )
        queue_wait = first_boundary - open_span.submit_usec
        stages.append((QUEUE_WAIT, queue_wait))
        waited += queue_wait

        # throttle_wait:<ctl>: each throttle event owns the segment until
        # the next throttle (or issue); consecutive same-ctl segments merge.
        throttles = open_span.throttles
        for position, (start_usec, ctl) in enumerate(throttles):
            next_usec = (
                throttles[position + 1][0]
                if position + 1 < len(throttles)
                else first_issue_usec
            )
            segment = next_usec - start_usec
            stage_name = THROTTLE_PREFIX + ctl
            if stages[-1][0] == stage_name:
                stages[-1] = (stage_name, stages[-1][1] + segment)
            else:
                stages.append((stage_name, segment))
            waited += segment

        # retry_wait: first dispatch -> final dispatch (failed service
        # attempts + exponential backoffs); absent on first-try spans.
        if issue_usec > first_issue_usec:
            retry_wait = issue_usec - first_issue_usec
            stages.append((RETRY_WAIT, retry_wait))
            waited += retry_wait

        # service is the residual, so the integer stage durations sum to
        # end_to_end exactly by construction.
        stages.append((SERVICE, end_to_end - waited))

        return Span(
            dev=open_span.dev,
            bio_id=open_span.bio_id,
            cgroup=open_span.cgroup,
            op=open_span.op,
            nbytes=open_span.nbytes,
            submit_usec=open_span.submit_usec,
            issue_usec=issue_usec,
            complete_usec=complete_usec,
            stages=tuple(stages),
            annotations=tuple(open_span.annotations),
            status=status,
            retries=open_span.requeues,
        )

    def _record(self, span: Span) -> None:
        scope = (span.cgroup, span.dev)
        e2e = self._e2e_hist.get(scope)
        if e2e is None:
            e2e = self._e2e_hist[scope] = Histogram(
                f"e2e:{span.cgroup}:{span.dev}", self.resolution
            )
        e2e.record(span.end_to_end_usec)
        for stage_name, duration_usec in span.stages:
            key = (span.cgroup, span.dev, stage_name)
            hist = self._stage_hist.get(key)
            if hist is None:
                hist = self._stage_hist[key] = Histogram(
                    f"{stage_name}:{span.cgroup}:{span.dev}", self.resolution
                )
            hist.record(duration_usec)

    # -- access ------------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """Completed spans still in the ring (oldest first)."""
        return list(self._spans)

    @property
    def open_count(self) -> int:
        """Bios submitted but not yet completed."""
        return len(self._pending)

    @property
    def dropped(self) -> int:
        """Completed spans lost to ring overflow (histograms keep them)."""
        return self.completed - len(self._spans)

    def select(
        self, cgroup: Optional[str] = None, dev: Optional[str] = None
    ) -> List[Span]:
        """Ring spans filtered by cgroup and/or device."""
        return [
            span
            for span in self._spans
            if (cgroup is None or span.cgroup == cgroup)
            and (dev is None or span.dev == dev)
        ]

    def scopes(self) -> List[Tuple[str, str]]:
        """Every (cgroup, dev) pair with at least one completed span."""
        return sorted(self._e2e_hist)

    # -- rollup ------------------------------------------------------------

    def breakdown(
        self, cgroup: Optional[str] = None, dev: Optional[str] = None
    ) -> Dict[str, Any]:
        """Latency-attribution rollup over completed spans.

        Filters by ``cgroup`` / ``dev`` (None = all), merges the matching
        histograms, and reports per-stage totals, percentiles, and the
        share of summed end-to-end time each stage accounts for::

            {"count": ..., "end_to_end": {usec summary},
             "stages": {"queue_wait": {..., "total_usec": T, "share": T/E},
                        "throttle_wait:iocost": {...}, "service": {...}}}

        Because span stages sum exactly, the stage ``total_usec`` values
        sum exactly to the end-to-end ``total_usec``.
        """

        def matches(scope_cgroup: str, scope_dev: str) -> bool:
            return (cgroup is None or scope_cgroup == cgroup) and (
                dev is None or scope_dev == dev
            )

        e2e = Histogram("end_to_end", self.resolution)
        for (scope_cgroup, scope_dev), hist in self._e2e_hist.items():
            if matches(scope_cgroup, scope_dev):
                e2e.merge(hist)

        merged: Dict[str, Histogram] = {}
        for (scope_cgroup, scope_dev, stage_name), hist in self._stage_hist.items():
            if not matches(scope_cgroup, scope_dev):
                continue
            into = merged.get(stage_name)
            if into is None:
                into = merged[stage_name] = Histogram(stage_name, self.resolution)
            into.merge(hist)

        total_usec = e2e.sum
        stages: Dict[str, Dict[str, float]] = {}
        for stage_name in sorted(merged, key=_stage_order):
            hist = merged[stage_name]
            summary = hist.summary()
            summary["total_usec"] = hist.sum
            summary["share"] = hist.sum / total_usec if total_usec > 0 else 0.0
            stages[stage_name] = summary

        e2e_summary = e2e.summary()
        e2e_summary["total_usec"] = e2e.sum
        return {"count": e2e.count, "end_to_end": e2e_summary, "stages": stages}

    def describe(self, cgroup: Optional[str] = None, dev: Optional[str] = None) -> str:
        """Human-readable one-scope breakdown (blkprof's default output)."""
        rollup = self.breakdown(cgroup, dev)
        if rollup["count"] == 0:
            if self.evicted:
                return f"no completed spans (evicted={self.evicted} open spans)"
            return "no completed spans"
        e2e = rollup["end_to_end"]
        lines = [
            f"spans: {rollup['count']}  "
            f"p50={e2e['p50']:.0f}us p99={e2e['p99']:.0f}us "
            f"mean={e2e['mean']:.0f}us"
        ]
        for stage_name, summary in rollup["stages"].items():
            lines.append(
                f"  {stage_name:<24} {summary['share']:>6.1%}  "
                f"mean={summary['mean']:.0f}us p99={summary['p99']:.0f}us"
            )
        if self.errored or self.evicted:
            lines.append(
                f"  errored={self.errored} evicted={self.evicted} "
                f"(pending bound {self.max_pending})"
            )
        return "\n".join(lines)


def _stage_order(stage_name: str) -> Tuple[int, str]:
    """Sort key: queue_wait, throttle_wait:* (alphabetical), retry_wait,
    service."""
    if stage_name == QUEUE_WAIT:
        return (0, stage_name)
    if stage_name == RETRY_WAIT:
        return (2, stage_name)
    if stage_name == SERVICE:
        return (3, stage_name)
    return (1, stage_name)


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """Serialise spans as JSON lines (blkprof ``spans`` subcommand)."""
    return "\n".join(
        json.dumps(span.to_dict(), separators=(",", ":")) for span in spans
    )
