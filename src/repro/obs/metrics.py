"""Metrics primitives: counters, gauges, log-bucketed latency histograms.

The kernel side of IOCost reports through monotonically-increasing counters
(``io.stat``), instantaneous gauges (vrate, hweight) and latency percentile
windows.  This module provides those shapes for the simulation, plus the
exact nearest-rank percentile that :mod:`repro.analysis.stats` re-exports
for backwards compatibility.

:class:`Histogram` is HDR-style: samples land in logarithmically-spaced
buckets (default ~2% relative width), so memory stays bounded regardless of
sample count while ``p50/p95/p99`` queries stay within one bucket width of
exact and ``max``/``min``/``count``/``sum`` are tracked exactly.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def exact_percentile(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of ``samples`` (``pct`` in [0, 100]).

    Raises ``ValueError`` on an empty sample set — callers that can observe
    empty windows must handle that case explicitly rather than silently
    reading a default.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile {pct} out of range")
    ordered = sorted(samples)
    if pct == 0.0:
        return ordered[0]
    rank = max(1, int(-(-pct * len(ordered) // 100)))  # ceil without floats
    return ordered[rank - 1]


class Counter:
    """Monotonically-increasing event/amount counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "", value: float = 0.0):
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Log-bucketed histogram with exact count/sum/min/max.

    ``resolution`` is the relative bucket width (0.02 -> every reported
    percentile is within 2% of the exact sample).  Non-positive samples are
    counted in a dedicated zero bucket so latency-0 edge cases don't blow up
    the log.
    """

    __slots__ = ("name", "resolution", "_log_base", "_buckets", "_zero",
                 "count", "sum", "min", "max")

    def __init__(self, name: str = "", resolution: float = 0.02):
        if not 0 < resolution < 1:
            raise ValueError("resolution must be in (0, 1)")
        self.name = name
        self.resolution = resolution
        self._log_base = math.log1p(resolution)
        self._buckets: Dict[int, int] = {}
        self._zero = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0:
            self._zero += 1
            return
        index = int(math.ceil(math.log(value) / self._log_base))
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of empty histogram")
        return self.sum / self.count

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile, exact to within one bucket width."""
        if self.count == 0:
            raise ValueError("percentile of empty histogram")
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile {pct} out of range")
        rank = max(1, int(-(-pct * self.count // 100)))
        if pct == 100.0 or rank >= self.count:
            return self.max
        seen = self._zero
        if rank <= seen:
            return max(0.0, self.min)
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                # Bucket upper edge, clamped to the exact observed extremes.
                value = math.exp(index * self._log_base)
                return min(max(value, self.min), self.max)
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s samples into this histogram (in place).

        Requires matching ``resolution`` so bucket indices line up; used by
        :meth:`repro.obs.spans.SpanTracker.breakdown` to roll per-cgroup ×
        per-device stage histograms up to machine-wide ones.
        """
        if other.resolution != self.resolution:
            raise ValueError(
                f"cannot merge histograms with resolutions "
                f"{self.resolution} and {other.resolution}"
            )
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self._zero += other._zero
        for index, bucket_count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + bucket_count
        return self

    def to_dict(self) -> Dict[str, object]:
        """Canonical-JSON-able snapshot of the full histogram state.

        Bucket indices become string keys (JSON object keys are strings);
        infinities — the empty histogram's min/max sentinels — are shipped
        as ``None`` because canonical JSON forbids non-finite floats.
        :meth:`from_dict` round-trips exactly, which is what lets per-host
        latency histograms travel through ``result.json`` and be merged
        fleet-wide (:mod:`repro.fleet.rollup`).
        """
        return {
            "resolution": self.resolution,
            "count": self.count,
            "sum": self.sum,
            "min": None if math.isinf(self.min) else self.min,
            "max": None if math.isinf(self.max) else self.max,
            "zero": self._zero,
            "buckets": {
                str(index): count for index, count in sorted(self._buckets.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object], name: str = "") -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output."""
        hist = cls(name, resolution=float(data["resolution"]))  # type: ignore[arg-type]
        hist.count = int(data["count"])  # type: ignore[arg-type]
        hist.sum = float(data["sum"])  # type: ignore[arg-type]
        minimum = data.get("min")
        maximum = data.get("max")
        hist.min = math.inf if minimum is None else float(minimum)  # type: ignore[arg-type]
        hist.max = -math.inf if maximum is None else float(maximum)  # type: ignore[arg-type]
        hist._zero = int(data.get("zero", 0))  # type: ignore[arg-type]
        buckets = data.get("buckets", {})
        if not isinstance(buckets, dict):
            raise ValueError("histogram 'buckets' must be a mapping")
        hist._buckets = {int(index): int(count) for index, count in buckets.items()}
        return hist

    def summary(self) -> Dict[str, float]:
        """The io.stat-friendly flat view: count/mean/p50/p95/p99/max."""
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


class MetricRegistry:
    """Named metric store, one per subsystem or experiment."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, resolution: float = 0.02) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, resolution)
        return metric

    def as_dict(self) -> Dict[str, object]:
        """Flatten everything into a JSON-serialisable snapshot."""
        out: Dict[str, object] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            out[name] = histogram.summary()
        return out
