"""The cgroup2 ``io.stat`` surface, aggregated hierarchically, per device.

Kernel semantics reproduced here:

* ``io.stat`` reports **one line per block device** per cgroup
  (``8:16 rbytes=... wbytes=...``); counters are kept per device id;
* every cgroup reports cumulative ``rbytes``/``wbytes``/``rios``/``wios``/
  ``dbytes``/``dios`` for itself **plus all descendants** (cgroup2 stats are
  recursive);
* removing a cgroup folds its counters into the parent — per device, so
  history is never lost nor smeared across devices (the kernel's
  ``cgroup_rstat`` flush-on-release behaviour);
* each device's controller annotates its own line — IOCost adds
  ``cost.vrate``, ``cost.usage``, ``cost.wait``, ``cost.indebt``,
  ``cost.indelay`` (see :meth:`repro.core.controller.IOCost.cost_stat`) on
  the devices it manages, and only on those.

Usage::

    iostat = IOStat(tree, controller=testbed.controller)
    snap = iostat.snapshot()                  # machine-wide aggregates
    snap["workload.slice"]["rbytes"]          # includes all children

    iostat = IOStat(tree, controllers=bed.devices.controllers_by_devno())
    per_dev = iostat.device_snapshot()        # path -> devno -> counters
    print(iostat.render("workload.slice"))    # kernel io.stat text
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.cgroup import Cgroup, CgroupTree, IOStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.controllers.base import IOController

#: The flat per-cgroup counters that aggregate up the hierarchy.
#: ``errors``/``requeues`` are the fault-path counters (docs/FAULTS.md).
FLAT_KEYS = (
    "rbytes", "wbytes", "rios", "wios", "dbytes", "dios", "wait_usec",
    "errors", "requeues",
)

#: Keys printed as integers in :meth:`IOStat.render` (cgroup2 parity).
_INT_KEYS = frozenset(FLAT_KEYS)


def _flat(stats: IOStats) -> Dict[str, float]:
    return {
        "rbytes": stats.rbytes,
        "wbytes": stats.wbytes,
        "rios": stats.rios,
        "wios": stats.wios,
        "dbytes": stats.dbytes,
        "dios": stats.dios,
        # The seconds->usec conversion lives on IOStats.wait_usec alone.
        "wait_usec": stats.wait_usec,
        "errors": stats.errors,
        "requeues": stats.requeues,
    }


def _zero() -> Dict[str, float]:
    return {key: 0 for key in FLAT_KEYS}


def _add(into: Dict[str, float], other: Dict[str, float]) -> None:
    for key in FLAT_KEYS:
        into[key] += other[key]


def _devno_sort_key(devno: str) -> Tuple[int, int]:
    major, _, minor = devno.partition(":")
    try:
        return (int(major), int(minor))
    except ValueError:  # non-numeric id: sort after real devices
        return (1 << 30, 0)


class IOStat:
    """Per-cgroup, per-device io.stat collector over one :class:`CgroupTree`.

    Registers a removal hook on the tree so counters of deleted cgroups
    keep contributing to their ancestors, matching kernel semantics.

    ``controllers`` maps device ids (``maj:min``) to the
    :class:`~repro.controllers.base.IOController` managing that device, so
    per-device entries carry that controller's keys.  ``controller`` is the
    single-device shorthand: its keys annotate the machine-wide aggregate
    entries (and, when the controller is attached to a layer, its device's
    per-device entries too).
    """

    def __init__(
        self,
        tree: CgroupTree,
        controller: Optional["IOController"] = None,
        controllers: Optional[Dict[str, "IOController"]] = None,
    ):
        self.tree = tree
        self.controller = controller
        self.controllers: Dict[str, "IOController"] = dict(controllers or {})
        if controller is not None and not self.controllers:
            layer = getattr(controller, "layer", None)
            dev = getattr(layer, "dev", None)
            if dev is not None:
                self.controllers[dev] = controller
        #: Counters inherited from removed children, keyed by the surviving
        #: parent path, then by device id.
        self._dead: Dict[str, Dict[str, Dict[str, float]]] = {}
        tree.add_remove_hook(self._on_remove)

    # -- removal folding -----------------------------------------------------

    def _on_remove(self, cgroup: Cgroup) -> None:
        if cgroup.parent is None:  # the root cannot be removed
            raise ValueError("removal hook fired for the root cgroup")
        folded: Dict[str, Dict[str, float]] = {
            dev: _flat(stats) for dev, stats in cgroup.stats.devices()
        }
        # The removed group may itself hold stats inherited from its own
        # removed children; carry those along too, device by device.
        own_dead = self._dead.pop(cgroup.path, None)
        if own_dead is not None:
            for dev, counters in own_dead.items():
                acc = folded.get(dev)
                if acc is None:
                    folded[dev] = dict(counters)
                else:
                    _add(acc, counters)
        if not folded:
            return
        parent_acc = self._dead.setdefault(cgroup.parent.path, {})
        for dev, counters in folded.items():
            acc = parent_acc.get(dev)
            if acc is None:
                parent_acc[dev] = counters
            else:
                _add(acc, counters)

    # -- per-device snapshots --------------------------------------------------

    def device_snapshot(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Recursive per-device io.stat for every live cgroup.

        ``result[path][devno]`` holds the hierarchically-summed flat
        counters for that device, plus the managing controller's keys
        (``cost.*`` on iocost-managed devices, ``throttled`` on all managed
        devices).
        """
        result: Dict[str, Dict[str, Dict[str, float]]] = {}

        def visit(cgroup: Cgroup) -> Dict[str, Dict[str, float]]:
            agg: Dict[str, Dict[str, float]] = {
                dev: _flat(stats) for dev, stats in cgroup.stats.devices()
            }
            for dev, counters in self._dead.get(cgroup.path, {}).items():
                acc = agg.get(dev)
                if acc is None:
                    agg[dev] = dict(counters)
                else:
                    _add(acc, counters)
            for child in cgroup.children.values():
                for dev, counters in visit(child).items():
                    acc = agg.get(dev)
                    if acc is None:
                        agg[dev] = dict(counters)
                    else:
                        _add(acc, counters)
            entry = {dev: dict(counters) for dev, counters in agg.items()}
            for dev, controller in self.controllers.items():
                entry.setdefault(dev, _zero()).update(controller.cost_stat(cgroup))
            result[cgroup.path] = entry
            return agg

        visit(self.tree.root)
        return result

    # -- aggregate snapshots ---------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Machine-wide recursive io.stat for every live cgroup, keyed by path.

        Each entry holds the hierarchically-summed flat counters over **all
        devices** plus, when a single ``controller`` was configured, its
        ``cost.*`` keys for that cgroup — the surface single-device setups
        have always consumed.
        """
        result: Dict[str, Dict[str, float]] = {}

        def visit(cgroup: Cgroup) -> Dict[str, float]:
            agg = _zero()
            for _, stats in cgroup.stats.devices():
                _add(agg, _flat(stats))
            for counters in self._dead.get(cgroup.path, {}).values():
                _add(agg, counters)
            for child in cgroup.children.values():
                _add(agg, visit(child))
            entry = dict(agg)
            if self.controller is not None:
                entry.update(self.controller.cost_stat(cgroup))
            result[cgroup.path] = entry
            return agg

        visit(self.tree.root)
        return result

    def of(self, path: str) -> Dict[str, float]:
        """One cgroup's recursive (all-device) io.stat entry."""
        return self.snapshot()[path]

    def device_of(self, path: str) -> Dict[str, Dict[str, float]]:
        """One cgroup's recursive per-device io.stat entries."""
        return self.device_snapshot()[path]

    # -- kernel-format rendering -----------------------------------------------

    def render(self, path: str) -> str:
        """One cgroup's ``io.stat`` file contents, cgroup2-faithful.

        One line per device in ``maj:min`` order, the six cgroup2 counters
        first (integers, kernel order), then ``wait_usec`` and the device
        controller's keys::

            8:0 rbytes=4096 wbytes=0 rios=1 wios=0 dbytes=0 dios=0 ...
            8:16 rbytes=0 wbytes=65536 ... cost.vrate=1.00 cost.usage=...
        """
        entry = self.device_snapshot()[path]
        lines = []
        for dev in sorted(entry, key=_devno_sort_key):
            parts = [dev]
            counters = entry[dev]
            for key in FLAT_KEYS:
                parts.append(f"{key}={int(round(counters.get(key, 0)))}")
            for key in sorted(k for k in counters if k not in _INT_KEYS):
                value = counters[key]
                if isinstance(value, bool):
                    rendered = str(int(value))
                elif isinstance(value, int):
                    rendered = str(value)
                else:
                    rendered = f"{value:.2f}"
                parts.append(f"{key}={rendered}")
            lines.append(" ".join(parts))
        return "\n".join(lines)
