"""The cgroup2 ``io.stat`` surface, aggregated hierarchically.

Kernel semantics reproduced here:

* every cgroup reports cumulative ``rbytes``/``wbytes``/``rios``/``wios``/
  ``dbytes``/``dios`` for itself **plus all descendants** (cgroup2 stats are
  recursive);
* removing a cgroup folds its counters into the parent — history is never
  lost (the kernel's ``cgroup_rstat`` flush-on-release behaviour);
* controllers annotate the same surface with their own keys — IOCost adds
  ``cost.vrate``, ``cost.usage``, ``cost.wait``, ``cost.indebt``,
  ``cost.indelay`` (see :meth:`repro.core.controller.IOCost.cost_stat`).

Usage::

    iostat = IOStat(tree, controller=testbed.controller)
    snap = iostat.snapshot()
    snap["workload.slice"]["rbytes"]          # includes all children
    snap["workload.slice/app"]["cost.usage"]  # iocost lifetime usage
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.cgroup import Cgroup, CgroupTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.controllers.base import IOController

#: The flat per-cgroup counters that aggregate up the hierarchy.
FLAT_KEYS = ("rbytes", "wbytes", "rios", "wios", "dbytes", "dios", "wait_usec")


def _flat(cgroup: Cgroup) -> Dict[str, float]:
    stats = cgroup.stats
    return {
        "rbytes": stats.rbytes,
        "wbytes": stats.wbytes,
        "rios": stats.rios,
        "wios": stats.wios,
        "dbytes": stats.dbytes,
        "dios": stats.dios,
        "wait_usec": stats.wait_total * 1e6,
    }


def _add(into: Dict[str, float], other: Dict[str, float]) -> None:
    for key in FLAT_KEYS:
        into[key] += other[key]


class IOStat:
    """Per-cgroup io.stat collector over one :class:`CgroupTree`.

    Registers a removal hook on the tree so counters of deleted cgroups
    keep contributing to their ancestors, matching kernel semantics.
    """

    def __init__(self, tree: CgroupTree, controller: Optional["IOController"] = None):
        self.tree = tree
        self.controller = controller
        #: Counters inherited from removed children, keyed by the surviving
        #: parent path.
        self._dead: Dict[str, Dict[str, float]] = {}
        tree.add_remove_hook(self._on_remove)

    # -- removal folding -----------------------------------------------------

    def _on_remove(self, cgroup: Cgroup) -> None:
        assert cgroup.parent is not None  # the root cannot be removed
        folded = _flat(cgroup)
        # The removed group may itself hold stats inherited from its own
        # removed children; carry those along too.
        own_dead = self._dead.pop(cgroup.path, None)
        if own_dead is not None:
            _add(folded, own_dead)
        parent_acc = self._dead.get(cgroup.parent.path)
        if parent_acc is None:
            self._dead[cgroup.parent.path] = folded
        else:
            _add(parent_acc, folded)

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Recursive io.stat for every live cgroup, keyed by path.

        Each entry holds the hierarchically-summed flat counters plus any
        controller-specific ``cost.*`` keys for that cgroup.
        """
        result: Dict[str, Dict[str, float]] = {}

        def visit(cgroup: Cgroup) -> Dict[str, float]:
            agg = _flat(cgroup)
            dead = self._dead.get(cgroup.path)
            if dead is not None:
                _add(agg, dead)
            for child in cgroup.children.values():
                _add(agg, visit(child))
            entry = dict(agg)
            if self.controller is not None:
                entry.update(self.controller.cost_stat(cgroup))
            result[cgroup.path] = entry
            return agg

        visit(self.tree.root)
        return result

    def of(self, path: str) -> Dict[str, float]:
        """One cgroup's recursive io.stat entry."""
        return self.snapshot()[path]
