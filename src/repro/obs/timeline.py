"""Chrome trace-event export: spans -> a timeline Perfetto can open.

The kernel workflow for "why was this IO slow" is blktrace piped into a
visualiser; the simulator's equivalent is :class:`repro.obs.spans.Span`
objects exported as Chrome trace-event JSON (the ``chrome://tracing`` /
`Perfetto <https://ui.perfetto.dev>`_ interchange format):

* one *process* per cgroup (``pid`` assigned in sorted-path order, process
  name = cgroup path);
* one *thread row* per device within each cgroup (thread name = device id);
* each span's stages become back-to-back ``"X"`` (complete) slices —
  ``queue_wait``, ``throttle_wait:<ctl>``, ``service`` — with the bio's
  identity in ``args``, so selecting a slice shows op/nbytes/reason;
* span annotations (``debt_pay``, ``donation_recalc``) become ``"i"``
  (instant) events on the same row.

Timestamps and durations are already integer simulated microseconds — the
unit the trace-event format specifies for ``ts``/``dur`` — so the export
is lossless with respect to the span decomposition.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, TextIO, Tuple

from repro.obs.spans import Span


def to_chrome_trace(spans: Iterable[Span]) -> Dict[str, Any]:
    """Build the trace-event JSON object for ``spans``.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` ready for
    ``json.dump``; load the file in Perfetto or ``chrome://tracing``.
    """
    span_list = list(spans)

    # Stable track layout: pid per cgroup, tid per device (within a cgroup).
    cgroups = sorted({span.cgroup for span in span_list})
    pid_of = {cgroup: index + 1 for index, cgroup in enumerate(cgroups)}
    devices = sorted({span.dev for span in span_list})
    tid_of = {dev: index + 1 for index, dev in enumerate(devices)}

    events: List[Dict[str, Any]] = []
    for cgroup in cgroups:
        events.append(
            {
                "ph": "M",
                "pid": pid_of[cgroup],
                "name": "process_name",
                "args": {"name": cgroup},
            }
        )
    for dev in devices:
        label = f"dev {dev}" if dev else "dev"
        for cgroup in cgroups:
            events.append(
                {
                    "ph": "M",
                    "pid": pid_of[cgroup],
                    "tid": tid_of[dev],
                    "name": "thread_name",
                    "args": {"name": label},
                }
            )

    for span in span_list:
        pid = pid_of[span.cgroup]
        tid = tid_of[span.dev]
        cursor_usec = span.submit_usec
        for stage_name, duration_usec in span.stages:
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": cursor_usec,
                    "dur": duration_usec,
                    "name": stage_name,
                    "cat": "bio",
                    "args": {
                        "bio": span.bio_id,
                        "op": span.op,
                        "nbytes": span.nbytes,
                        "end_to_end_usec": span.end_to_end_usec,
                    },
                }
            )
            cursor_usec += duration_usec
        for annotation in span.annotations:
            events.append(
                {
                    "ph": "i",
                    "pid": pid,
                    "tid": tid,
                    "ts": annotation.time_usec,
                    "name": annotation.event,
                    "cat": "ctl",
                    "s": "t",  # thread-scoped instant
                    "args": {"detail": annotation.detail, "bio": span.bio_id},
                }
            )

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[Span], stream: TextIO) -> int:
    """Write the trace-event JSON to ``stream``; returns the event count."""
    trace = to_chrome_trace(spans)
    json.dump(trace, stream, separators=(",", ":"))
    stream.write("\n")
    return len(trace["traceEvents"])


def validate_chrome_trace(trace: Dict[str, Any]) -> Tuple[int, int]:
    """Structural check of a trace object (used by tests and blkprof).

    Verifies the containers and per-event required keys the viewers rely
    on; returns ``(slice_count, instant_count)``.  Raises ``ValueError``
    on any malformed event.
    """
    if "traceEvents" not in trace:
        raise ValueError("trace object missing 'traceEvents'")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    slices = instants = 0
    for event in events:
        phase = event.get("ph")
        if phase not in ("X", "M", "i"):
            raise ValueError(f"unsupported phase {phase!r}")
        if "pid" not in event or "name" not in event:
            raise ValueError(f"event missing pid/name: {event!r}")
        if phase == "X":
            if "ts" not in event or "dur" not in event:
                raise ValueError(f"slice missing ts/dur: {event!r}")
            if event["dur"] < 0:
                raise ValueError(f"negative duration: {event!r}")
            slices += 1
        elif phase == "i":
            if "ts" not in event:
                raise ValueError(f"instant missing ts: {event!r}")
            instants += 1
    return slices, instants
