"""Page cache with dirty-page writeback (the Figure 2 "dirty page
writebacks" path).

Buffered writes don't reach the device synchronously: they dirty pages in
the page cache, and a background flusher writes them back later, charged to
the *dirtying* cgroup (cgroup writeback).  Two control points matter for
IO isolation:

* **background writeback** starts when a cgroup's dirty bytes exceed its
  background threshold — asynchronous, the writer keeps running;
* **dirty throttling** (``balance_dirty_pages``): a writer that pushes its
  dirty total past its hard limit is blocked until writeback drains below
  it — which makes buffered writers ultimately paced by how fast the IO
  controller lets *their* writeback proceed.  Under a proportional
  controller this is precisely how a low-weight bulk writer gets contained
  without touching its syscalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

import numpy as np

from repro.block.bio import Bio, BioFlags, IOOp
from repro.block.layer import BlockLayer
from repro.cgroup import Cgroup
from repro.sim import Simulator

#: Writeback IO is issued in clusters of this many bytes.
WRITEBACK_CLUSTER = 256 * 1024


@dataclass
class DirtyState:
    """Per-cgroup dirty accounting."""

    dirty: int = 0
    written_back_total: int = 0
    throttled_time: float = 0.0


class PageCache:
    """Dirty-page tracking plus a per-cgroup background flusher."""

    def __init__(
        self,
        sim: Simulator,
        layer: BlockLayer,
        background_bytes: int = 16 * 1024 * 1024,
        limit_bytes: int = 64 * 1024 * 1024,
        seed: int = 0,
    ):
        if background_bytes <= 0 or limit_bytes <= background_bytes:
            raise ValueError("need 0 < background_bytes < limit_bytes")
        self.sim = sim
        self.layer = layer
        self.background_bytes = background_bytes
        self.limit_bytes = limit_bytes
        self._states: Dict[str, DirtyState] = {}
        self._cgroups: Dict[str, Cgroup] = {}
        self._flusher_running: Dict[str, bool] = {}
        self._rng = np.random.default_rng(seed)
        self._next_sector: Dict[str, int] = {}

    def state_of(self, cgroup: Cgroup) -> DirtyState:
        state = self._states.get(cgroup.path)
        if state is None:
            state = DirtyState()
            self._states[cgroup.path] = state
            self._cgroups[cgroup.path] = cgroup
            self._next_sector[cgroup.path] = int(self._rng.integers(0, 1 << 24)) * 8
        return state

    @property
    def dirty_total(self) -> int:
        return sum(state.dirty for state in self._states.values())

    # -- write path --------------------------------------------------------

    def buffered_write(self, cgroup: Cgroup, nbytes: int) -> Generator:
        """Dirty ``nbytes``; blocks only when over the hard dirty limit."""
        if nbytes <= 0:
            raise ValueError("write bytes must be positive")
        state = self.state_of(cgroup)
        state.dirty += nbytes
        if state.dirty > self.background_bytes:
            self._kick_flusher(cgroup)
        # balance_dirty_pages: block the writer while over the hard limit.
        start = self.sim.now
        while state.dirty > self.limit_bytes:
            self._kick_flusher(cgroup)
            yield 0.001  # re-check as writeback drains
        state.throttled_time += self.sim.now - start

    def sync(self, cgroup: Cgroup) -> Generator:
        """Write back everything the cgroup has dirtied (fsync of data)."""
        state = self.state_of(cgroup)
        while state.dirty > 0:
            yield from self._writeback_batch(cgroup, state)

    # -- flusher -----------------------------------------------------------

    def _kick_flusher(self, cgroup: Cgroup) -> None:
        if self._flusher_running.get(cgroup.path):
            return
        self._flusher_running[cgroup.path] = True
        self.sim.process(self._flusher(cgroup), name=f"flusher-{cgroup.path}")

    #: Writeback keeps this many clusters in flight (flusher concurrency).
    WRITEBACK_DEPTH = 4

    def _flusher(self, cgroup: Cgroup) -> Generator:
        state = self.state_of(cgroup)
        try:
            # Flush until comfortably below the background threshold.
            while state.dirty > self.background_bytes // 2:
                yield from self._writeback_batch(cgroup, state)
        finally:
            self._flusher_running[cgroup.path] = False

    def _writeback_batch(self, cgroup: Cgroup, state: DirtyState) -> Generator:
        """Submit up to WRITEBACK_DEPTH clusters concurrently, wait for all."""
        signals = []
        batched = 0
        while state.dirty - batched > 0 and len(signals) < self.WRITEBACK_DEPTH:
            chunk = min(state.dirty - batched, WRITEBACK_CLUSTER)
            sector = self._next_sector[cgroup.path]
            bio = Bio(IOOp.WRITE, chunk, sector, cgroup)
            self._next_sector[cgroup.path] = bio.end_sector
            signals.append((self.layer.submit(bio), chunk))
            batched += chunk
        for signal, chunk in signals:
            if not signal.fired:
                yield signal
            state.dirty -= chunk
            state.written_back_total += chunk
