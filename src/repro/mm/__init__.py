"""Memory-management substrate.

Reproduces the slice of Linux MM that IO control interacts with (paper
§3.5, Figures 14/15/17): per-cgroup anonymous memory, global reclaim that
swaps out the owner's pages on someone else's allocation (the
priority-inversion source), page faults that swap back in, the OOM killer,
and the return-to-userspace debt throttle hook.
"""

from repro.mm.memory import MemoryManager, MemState, OOMKill
from repro.mm.pagecache import DirtyState, PageCache

__all__ = ["DirtyState", "MemState", "MemoryManager", "OOMKill", "PageCache"]
