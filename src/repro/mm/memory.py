"""Per-cgroup memory accounting, reclaim, swap, and OOM.

The model is byte-granular with page-cluster IO:

* Each cgroup owns ``resident`` and ``swapped`` anonymous bytes.
* :meth:`MemoryManager.alloc` charges new resident memory.  When the
  machine is full, the *allocating* process synchronously drives reclaim:
  victim pages (largest-resident cgroup first) are written to swap as
  SWAP-flagged bios charged to their **owner** — the §3.5 scenario.  The
  allocator waits for those writes, so how the IO controller treats them
  decides who pays:

  - ``SwapChargeMode.DEBT`` (production): writes dispatch immediately; the
    owner repays from future budget, and its allocation loop is slowed at
    the return-to-userspace boundary.
  - ``ROOT``: writes dispatch immediately and nobody pays — a leaker
    thrashes freely.
  - ``ORIGIN_THROTTLE``: writes queue behind the owner's exhausted budget —
    the innocent allocator blocks on them: the priority inversion.

* :meth:`MemoryManager.touch` models working-set access: a fraction of
  touched bytes proportional to the cgroup's swapped share faults, issuing
  SWAP reads charged to the *faulting* group, and swapping the bytes back
  in (possibly reclaiming someone else in turn).

* When swap fills and reclaim still cannot make room, the OOM killer
  removes the largest memory consumer (Figure 14's "eventually killed by
  the OOM killer").

All mutating entry points are generators to be driven inside simulation
processes (``yield from mm.alloc(...)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from typing import Callable, Dict, Generator, List, Optional

from repro.block.bio import Bio, BioFlags, IOOp
from repro.block.layer import BlockLayer
from repro.cgroup import Cgroup
from repro.obs.trace import TRACE
from repro.sim import Simulator

PAGE = 4096
#: Swap-out IO is clustered (the kernel's swap allocator writes clusters).
SWAP_OUT_CLUSTER = 64 * 1024
#: Swap-in faults read ahead a small cluster around the faulting page.
SWAP_IN_CLUSTER = 8 * PAGE


@dataclass
class MemState:
    """One cgroup's anonymous memory."""

    resident: int = 0
    swapped: int = 0
    #: Cumulative counters for analysis.
    swapped_out_total: int = 0
    faulted_in_total: int = 0
    #: Bumped every time this cgroup is OOM-killed; in-flight allocations
    #: notice and abort (the process would be dead).
    kill_epoch: int = 0

    @property
    def total(self) -> int:
        return self.resident + self.swapped

    @property
    def swapped_fraction(self) -> float:
        if self.total == 0:
            return 0.0
        return self.swapped / self.total


@dataclass(frozen=True)
class OOMKill:
    """Record of one OOM kill."""

    time: float
    cgroup_path: str
    freed_bytes: int


class MemoryPressureError(RuntimeError):
    """Raised when an allocation cannot be satisfied even after OOM kills."""


class MemoryManager:
    """Machine-level memory with reclaim and swap via the block layer."""

    def __init__(
        self,
        sim: Simulator,
        layer: BlockLayer,
        total_bytes: int,
        swap_bytes: int,
        protected: Optional[Dict[str, int]] = None,
        limits: Optional[Dict[str, int]] = None,
        kswapd: bool = True,
        seed: int = 0,
        swap_layer: Optional[BlockLayer] = None,
    ) -> None:
        self.sim = sim
        self.layer = layer
        #: Where swap IO goes.  Defaults to the data device, but real fleets
        #: often place swap on a different device than the workload's data
        #: (the swap-vs-data interference the paper controls for) — pass the
        #: swap device's layer to model that.  Debt/attribution decisions
        #: follow the *swap* device's controller, since that is the
        #: controller the swap bios flow through.
        self.swap_layer = swap_layer if swap_layer is not None else layer
        self.total_bytes = total_bytes
        self.swap_bytes = swap_bytes
        #: memory.low-style protection: reclaim skips a cgroup while its
        #: resident memory is at or below its protected bytes.
        self.protected = dict(protected or {})
        #: memory.max-style hard limits: a cgroup allocating past its limit
        #: reclaims its *own* pages first (cgroup-local reclaim) — which is
        #: exactly the reclaim-IO interference §5 says memory control alone
        #: cannot fix.
        self.limits = dict(limits or {})
        self._states: Dict[str, MemState] = {}
        self._cgroups: Dict[str, Cgroup] = {}
        self.oom_kills: List[OOMKill] = []
        self.oom_callbacks: Dict[str, Callable[[], None]] = {}
        self._swap_sector = 1 << 34  # swap partition "location"
        self._rng = np.random.default_rng(seed)
        # Background reclaim (kswapd): wakes below the low watermark and
        # evicts asynchronously until the high watermark, so allocators
        # rarely block on direct reclaim — and the swap storm runs at
        # device speed rather than one allocator's synchronous pace.
        self.kswapd_enabled = kswapd
        self.low_watermark = int(total_bytes * 0.04)
        self.high_watermark = int(total_bytes * 0.08)
        self._kswapd_running = False
        self.kswapd_reclaimed_total = 0
        self._tp_reclaim = TRACE.points["reclaim_scan"]
        self._tp_swap_out = TRACE.points["swap_out"]

    # -- accounting -----------------------------------------------------------

    def state_of(self, cgroup: Cgroup) -> MemState:
        state = self._states.get(cgroup.path)
        if state is None:
            state = MemState()
            self._states[cgroup.path] = state
            self._cgroups[cgroup.path] = cgroup
        return state

    @property
    def resident_total(self) -> int:
        return sum(state.resident for state in self._states.values())

    @property
    def swapped_total(self) -> int:
        return sum(state.swapped for state in self._states.values())

    @property
    def free_bytes(self) -> int:
        return self.total_bytes - self.resident_total

    def on_oom(self, cgroup: Cgroup, callback: Callable[[], None]) -> None:
        """Register a callback fired if ``cgroup`` is OOM-killed."""
        self.oom_callbacks[cgroup.path] = callback

    # -- debt hook ---------------------------------------------------------------

    def _userspace_delay(self, cgroup: Cgroup) -> float:
        """§3.5 return-to-userspace throttle, if the controller provides it.

        Swap debt accrues on the swap device's controller, so that is the
        one asked for the delay.
        """
        hook = getattr(self.swap_layer.controller, "userspace_delay", None)
        if hook is None:
            return 0.0
        return hook(cgroup)

    # -- public operations (generators) -------------------------------------------

    def alloc(self, cgroup: Cgroup, nbytes: int) -> Generator:
        """Charge ``nbytes`` of new anonymous memory to ``cgroup``.

        Drives synchronous reclaim when the machine is full; applies the
        debt throttle before "returning to userspace".
        """
        if nbytes < 0:
            raise ValueError("cannot allocate negative bytes")
        state = self.state_of(cgroup)
        # Charge incrementally, like faulting pages in one by one: an
        # allocation larger than free memory reclaims as it grows (and can
        # end up reclaiming the allocator's own older pages).
        epoch = state.kill_epoch
        limit = self.limits.get(cgroup.path)
        remaining = nbytes
        while remaining > 0:
            chunk = min(remaining, 4 * SWAP_OUT_CLUSTER)
            # memory.max: local reclaim of the cgroup's own pages first.
            if limit is not None and state.resident + chunk > limit:
                overshoot = state.resident + chunk - limit
                yield from self._swap_out(cgroup, overshoot)
                if state.kill_epoch != epoch:
                    return
            yield from self._make_room(chunk, requester=cgroup)
            if state.kill_epoch != epoch:
                return  # OOM-killed mid-allocation: the process is gone
            state.resident += chunk
            remaining -= chunk
            # The §3.5 debt check runs at *every* return to userspace, i.e.
            # once per faulted-in chunk, so an indebted allocator is paced
            # continuously rather than once per large malloc.
            delay = self._userspace_delay(cgroup)
            if delay > 0:
                yield delay

    def touch(self, cgroup: Cgroup, nbytes: int) -> Generator:
        """Access ``nbytes`` of the cgroup's memory, faulting swapped pages.

        The faulted fraction equals the cgroup's swapped share — a uniform
        random-access approximation of LRU behaviour.
        """
        state = self.state_of(cgroup)
        fault_bytes = int(nbytes * state.swapped_fraction)
        fault_bytes = min(fault_bytes, state.swapped)
        if fault_bytes > 0:
            yield from self._swap_in(cgroup, fault_bytes)
        delay = self._userspace_delay(cgroup)
        if delay > 0:
            yield delay

    def free(self, cgroup: Cgroup, nbytes: Optional[int] = None) -> None:
        """Release memory (resident first, then swapped); None frees all."""
        state = self.state_of(cgroup)
        if nbytes is None:
            nbytes = state.total
        take_resident = min(nbytes, state.resident)
        state.resident -= take_resident
        state.swapped -= min(nbytes - take_resident, state.swapped)

    # -- reclaim ------------------------------------------------------------------

    def _victim(self, requester: Optional[Cgroup]) -> Optional[str]:
        """Pick a reclaim victim, weighted by reclaimable bytes.

        Approximates a global LRU: a randomly-chosen cold page belongs to a
        cgroup with probability proportional to its (unprotected) resident
        size, so every large consumer keeps losing pages while pressure
        lasts — the churn that makes thrashing continuous.
        """
        paths = []
        weights = []
        for path, state in self._states.items():
            floor = self.protected.get(path, 0)
            reclaimable = state.resident - floor
            if reclaimable > 0:
                paths.append(path)
                weights.append(reclaimable)
        if not paths:
            return None
        total = float(sum(weights))
        draw = self._rng.random() * total
        acc = 0.0
        for path, weight in zip(paths, weights):
            acc += weight
            if draw <= acc:
                return path
        return paths[-1]

    def _maybe_wake_kswapd(self) -> None:
        if (
            self.kswapd_enabled
            and not self._kswapd_running
            and self.free_bytes < self.low_watermark
        ):
            self._kswapd_running = True
            self.sim.process(self._kswapd_loop(), name="kswapd")

    def _kswapd_loop(self) -> Generator:
        try:
            while self.free_bytes < self.high_watermark:
                need = self.high_watermark - self.free_bytes
                if self.swapped_total + need > self.swap_bytes:
                    return  # swap full; direct reclaim will OOM
                victim_path = self._victim(requester=None)
                if victim_path is None:
                    return
                victim_state = self._states[victim_path]
                floor = self.protected.get(victim_path, 0)
                # kswapd batches reclaim aggressively: a whole watermark gap
                # worth of clusters goes out concurrently per pass.
                chunk = min(need, victim_state.resident - floor, 64 * SWAP_OUT_CLUSTER)
                if chunk <= 0:
                    return
                if self._tp_reclaim.enabled:
                    self._tp_reclaim.emit(
                        self.sim.now,
                        requester="kswapd",
                        victim=victim_path,
                        nbytes=chunk,
                        free_bytes=self.free_bytes,
                    )
                yield from self._swap_out(self._cgroups[victim_path], chunk)
                self.kswapd_reclaimed_total += chunk
        finally:
            self._kswapd_running = False

    def _make_room(self, nbytes: int, requester: Cgroup) -> Generator:
        self._maybe_wake_kswapd()
        attempts = 0
        while self.free_bytes < nbytes:
            need = nbytes - self.free_bytes
            if self.swapped_total + need > self.swap_bytes:
                self._oom_kill()
                attempts += 1
                if attempts > len(self._states) + 1:
                    raise MemoryPressureError("OOM killer cannot make room")
                continue
            victim_path = self._victim(requester)
            if victim_path is None:
                self._oom_kill()
                attempts += 1
                if attempts > len(self._states) + 1:
                    raise MemoryPressureError("no reclaimable memory")
                continue
            victim_state = self._states[victim_path]
            victim_cg = self._cgroups[victim_path]
            floor = self.protected.get(victim_path, 0)
            chunk = min(need, victim_state.resident - floor, 4 * SWAP_OUT_CLUSTER)
            if self._tp_reclaim.enabled:
                self._tp_reclaim.emit(
                    self.sim.now,
                    requester=requester.path,
                    victim=victim_path,
                    nbytes=chunk,
                    free_bytes=self.free_bytes,
                )
            yield from self._swap_out(victim_cg, chunk)

    def _swap_attribution(self, owner: Cgroup) -> Cgroup:
        """Which cgroup swap-out writes are charged to.

        Memory-management-aware controllers (Table 1: iolatency, iocost)
        attribute reclaim writeback to the page *owner*; the others see it
        in the reclaim context — the root cgroup (kswapd) — which is
        precisely their isolation failure.
        """
        features = getattr(self.swap_layer.controller, "features", None)
        if features is not None and features.memory_management_aware == "yes":
            return owner
        root = owner
        while root.parent is not None:
            root = root.parent
        return root

    def _swap_out(self, owner: Cgroup, nbytes: int) -> Generator:
        """Write ``nbytes`` of the owner's pages to swap."""
        state = self.state_of(owner)
        nbytes = min(nbytes, state.resident)
        if nbytes <= 0:
            return
        charge_to = self._swap_attribution(owner)
        if self._tp_swap_out.enabled:
            self._tp_swap_out.emit(
                self.sim.now,
                dev=self.swap_layer.dev,
                owner=owner.path,
                charged_to=charge_to.path,
                nbytes=nbytes,
            )
        remaining = nbytes
        signals = []
        while remaining > 0:
            chunk = min(remaining, SWAP_OUT_CLUSTER)
            bio = Bio(IOOp.WRITE, chunk, self._swap_sector, charge_to, flags=BioFlags.SWAP)
            self._swap_sector += chunk // 512
            signals.append(self.swap_layer.submit(bio))
            remaining -= chunk
        # The reclaiming process waits for all swap-out writes (§3.5's
        # synchronous dependency).
        for signal in signals:
            if not signal.fired:
                yield signal
        state.resident -= nbytes
        state.swapped += nbytes
        state.swapped_out_total += nbytes

    def _swap_in(self, cgroup: Cgroup, nbytes: int) -> Generator:
        """Fault ``nbytes`` back in; reads charged to the faulting group."""
        state = self.state_of(cgroup)
        # Faulted pages need resident room first.
        yield from self._make_room(nbytes, requester=cgroup)
        remaining = nbytes
        signals = []
        while remaining > 0:
            chunk = min(remaining, SWAP_IN_CLUSTER)
            bio = Bio(IOOp.READ, chunk, self._swap_sector, cgroup, flags=BioFlags.SWAP)
            signals.append(self.swap_layer.submit(bio))
            remaining -= chunk
        for signal in signals:
            if not signal.fired:
                yield signal
        moved = min(nbytes, state.swapped)
        state.swapped -= moved
        state.resident += moved
        state.faulted_in_total += nbytes

    # -- OOM ---------------------------------------------------------------------

    def _oom_kill(self) -> None:
        """Kill the largest memory consumer and free everything it owns."""
        victim_path = None
        victim_size = 0
        for path, state in self._states.items():
            if state.total > victim_size:
                victim_path, victim_size = path, state.total
        if victim_path is None or victim_size == 0:
            raise MemoryPressureError("OOM with no memory consumers")
        state = self._states[victim_path]
        freed = state.total
        state.resident = 0
        state.swapped = 0
        state.kill_epoch += 1
        self.oom_kills.append(OOMKill(self.sim.now, victim_path, freed))
        callback = self.oom_callbacks.get(victim_path)
        if callback is not None:
            callback()
