"""A shared filesystem journal with batched commits.

Models the jbd2-style machinery that makes journaling a priority-inversion
hazard (paper §3.5):

* every cgroup's metadata updates append *records* to the single running
  transaction batch;
* the batch commits when ``fsync`` forces it or the commit interval
  expires;
* a commit writes **all** pending records — each as a JOURNAL-flagged
  sequential write bio charged to the cgroup that logged it — and an
  ``fsync`` caller blocks until the whole commit is durable.

So cgroup B's fsync waits on cgroup A's journal writes.  If the IO
controller throttles A's writes in place (the origin-throttle ablation),
B is blocked by A's debt — the inversion.  Under the production debt
protocol, journal writes are issued immediately and A repays later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.block.bio import Bio, BioFlags, IOOp
from repro.block.layer import BlockLayer
from repro.cgroup import Cgroup
from repro.sim import Signal, Simulator


class JournalError(RuntimeError):
    """Raised on journal protocol violations (internal invariant breaks)."""


@dataclass
class JournalStats:
    commits: int = 0
    records_written: int = 0
    bytes_written: int = 0
    forced_commits: int = 0  # commits triggered by fsync rather than timer


class Journal:
    """One device's shared metadata journal."""

    def __init__(
        self,
        sim: Simulator,
        layer: BlockLayer,
        commit_interval: float = 0.1,
        record_size: int = 4096,
        journal_sector: int = 1 << 30,
    ):
        if commit_interval <= 0:
            raise ValueError("commit_interval must be positive")
        self.sim = sim
        self.layer = layer
        self.commit_interval = commit_interval
        self.record_size = record_size
        self.stats = JournalStats()
        # The running transaction: (owner cgroup, bytes) records.
        self._pending: List[Tuple[Cgroup, int]] = []
        # Fired when the *current* batch becomes durable.
        self._commit_done: Optional[Signal] = None
        self._commit_in_progress = False
        self._head_sector = journal_sector
        self._timer = sim.schedule(commit_interval, self._periodic_commit)

    def close(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- public API -----------------------------------------------------------

    def log(self, cgroup: Cgroup, nbytes: int) -> None:
        """Append a metadata record to the running transaction."""
        if nbytes <= 0:
            raise ValueError("record bytes must be positive")
        self._pending.append((cgroup, nbytes))

    def fsync(self, cgroup: Cgroup) -> Generator:
        """Commit until the caller's records are durable.

        Joins any in-flight commit first; if the caller still has records
        in the (next) running transaction afterwards, forces a commit of
        that batch too.  Either way the caller waits for *every* record in
        its batch — including other cgroups' — which is exactly the §3.5
        journaling entanglement.
        """
        if self._commit_in_progress:
            signal = self._commit_done
            if signal is None:
                raise JournalError("commit in progress without a done signal")
            if not signal.fired:
                yield signal
        if any(owner is cgroup for owner, _ in self._pending):
            self.stats.forced_commits += 1
            yield from self._commit()

    @property
    def pending_records(self) -> int:
        return len(self._pending)

    # -- commit machinery --------------------------------------------------------

    def _periodic_commit(self) -> None:
        self._timer = self.sim.schedule(self.commit_interval, self._periodic_commit)
        if self._pending and not self._commit_in_progress:
            self.sim.process(self._commit(), name="journal-commit")

    def _commit(self) -> Generator:
        self._commit_in_progress = True
        self._commit_done = self.sim.signal()
        batch, self._pending = self._pending, []
        signals = []
        for owner, nbytes in batch:
            # Round up to whole journal records.
            size = max(self.record_size, nbytes)
            bio = Bio(
                IOOp.WRITE, size, self._head_sector, owner, flags=BioFlags.JOURNAL
            )
            self._head_sector += bio.end_sector - bio.sector
            signals.append(self.layer.submit(bio))
            self.stats.records_written += 1
            self.stats.bytes_written += size
        for signal in signals:
            if not signal.fired:
                yield signal
        self.stats.commits += 1
        self._commit_in_progress = False
        self._commit_done.fire()
