"""Filesystem substrate: the shared journal (paper §3.5).

Journaling is the second priority-inversion source the paper names:
transactions from many cgroups share commit batches, so one cgroup's
``fsync`` can only complete once *other* cgroups' journal records are on
disk.  :class:`~repro.fs.journal.Journal` reproduces that coupling; the
JOURNAL-flagged bios it emits follow the same debt protocol as swap-out.
"""

from repro.fs.journal import Journal, JournalStats

__all__ = ["Journal", "JournalStats"]
