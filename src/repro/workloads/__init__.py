"""Workload generators for the paper's experiments."""

from repro.workloads.base import SectorPicker, Workload
from repro.workloads.synthetic import (
    ClosedLoopWorkload,
    LatencyGovernedWorkload,
    PacedWorkload,
    ThinkTimeWorkload,
)
from repro.workloads.profiles import MixedWorkload, WORKLOAD_PROFILES, WorkloadProfile
from repro.workloads.rcbench import ResourceControlBench, WebServer
from repro.workloads.memleak import MemoryLeaker, StressWorkload
from repro.workloads.pid import LoadRamp, PIDController
from repro.workloads.zookeeper import Machine, ZooKeeperEnsemble
from repro.workloads.fleet import (
    CONTAINER_CLEANUP,
    PACKAGE_FETCH,
    FleetMigration,
    SystemTask,
    WeeklyReport,
    measure_task_durations,
    run_task_once,
)

__all__ = [
    "CONTAINER_CLEANUP",
    "ClosedLoopWorkload",
    "FleetMigration",
    "LatencyGovernedWorkload",
    "LoadRamp",
    "Machine",
    "MemoryLeaker",
    "MixedWorkload",
    "PACKAGE_FETCH",
    "PIDController",
    "PacedWorkload",
    "ResourceControlBench",
    "SectorPicker",
    "StressWorkload",
    "SystemTask",
    "ThinkTimeWorkload",
    "WORKLOAD_PROFILES",
    "WebServer",
    "WeeklyReport",
    "Workload",
    "WorkloadProfile",
    "ZooKeeperEnsemble",
    "measure_task_durations",
    "run_task_once",
]
