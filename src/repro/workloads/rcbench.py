"""ResourceControlBench analogue (paper §3.4).

"A highly configurable synthetic workload imitating the behavior of
latency-sensitive services at Meta": a request-serving loop with

* a resident anonymous working set, touched per request — so latency is
  paging-sensitive (faults swap back in through the block layer);
* optional direct block reads per request (storage-backed services);
* a CPU service time — so throughput caps at ``peak_rps`` even with
  perfect IO;
* a bounded worker pool — queueing delay appears under overload.

The same class powers the Figure 14/17 "web server" ( :class:`WebServer`
presets) and the Figure 15 load-ramp experiment via the ``load`` property.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.analysis.stats import RateMeter, TimeSeries
from repro.block.bio import Bio, IOOp
from repro.mm.memory import MemoryManager
from repro.workloads.base import SectorPicker, Workload

MB = 1024 * 1024


class ResourceControlBench(Workload):
    """Latency-sensitive request server with a paging-sensitive footprint."""

    def __init__(
        self,
        sim,
        layer,
        mm: MemoryManager,
        cgroup,
        peak_rps: float = 500.0,
        load: float = 0.5,
        workers: int = 8,
        working_set: int = 256 * MB,
        touch_per_request: int = 512 * 1024,
        io_reads_per_request: int = 1,
        io_read_size: int = 16 * 1024,
        cpu_time: float = 1e-3,
        queue_timeout: Optional[float] = None,
        stop_at: Optional[float] = None,
        seed: int = 0,
    ):
        super().__init__(sim, layer, cgroup, seed)
        self.mm = mm
        self.peak_rps = peak_rps
        self._load = load
        self.workers = workers
        self.working_set = working_set
        self.touch_per_request = touch_per_request
        self.io_reads_per_request = io_reads_per_request
        self.io_read_size = io_read_size
        self.cpu_time = cpu_time
        #: Requests still queued after this long are shed (load shedding of
        #: a latency-sensitive service); ``None`` queues indefinitely.
        self.queue_timeout = queue_timeout
        self.stop_at = stop_at
        self.picker = SectorPicker(self.rng, sequential=False)

        self._queue: Deque[float] = deque()  # request arrival timestamps
        self._busy_workers = 0
        self.requests_shed = 0
        self.requests_done = 0
        self.request_latencies = []
        self.rps_meter = RateMeter(window=1.0)
        self.rps_series = TimeSeries("rps")
        self.load_series = TimeSeries("load")
        self._sample_every = 0.5

    # -- load control (used by the Figure 15 PID ramp) ----------------------

    @property
    def load(self) -> float:
        return self._load

    @load.setter
    def load(self, value: float) -> None:
        self._load = max(0.0, min(1.0, value))

    @property
    def target_rps(self) -> float:
        return self.peak_rps * self._load

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        super().start()
        # Populate the working set, then begin serving.
        self.sim.process(self._warmup(), name=f"rcbench-warmup-{self.cgroup.path}")
        return self

    def _warmup(self):
        yield from self.mm.alloc(self.cgroup, self.working_set)
        self._schedule_arrival()
        self.sim.schedule(self._sample_every, self._sample)

    def _schedule_arrival(self):
        if not self.running or (self.stop_at is not None and self.sim.now >= self.stop_at):
            return
        rate = self.target_rps
        if rate <= 0:
            self.sim.schedule(0.1, self._schedule_arrival)
            return
        interval = float(self.rng.exponential(1.0 / rate))
        self.sim.schedule(interval, self._arrive)

    def _arrive(self):
        if not self.running:
            return
        self._queue.append(self.sim.now)
        self._maybe_serve()
        self._schedule_arrival()

    def _maybe_serve(self):
        while self._queue and self._busy_workers < self.workers:
            arrival = self._queue.popleft()
            if (
                self.queue_timeout is not None
                and self.sim.now - arrival > self.queue_timeout
            ):
                self.requests_shed += 1
                continue
            self._busy_workers += 1
            self.sim.process(self._serve(arrival), name="rcbench-request")

    def _serve(self, arrival: float):
        try:
            # Touch the working set (may fault swapped pages back in).
            if self.touch_per_request > 0:
                yield from self.mm.touch(self.cgroup, self.touch_per_request)
            # Direct storage reads.
            for _ in range(self.io_reads_per_request):
                bio = Bio(
                    IOOp.READ,
                    self.io_read_size,
                    self.picker.next(self.io_read_size),
                    self.cgroup,
                )
                signal = self.layer.submit(bio)
                if not signal.fired:
                    yield signal
                self._record(bio)
            # CPU service time.
            yield self.cpu_time
        finally:
            self._busy_workers -= 1
        latency = self.sim.now - arrival
        self.requests_done += 1
        self.request_latencies.append(latency)
        self.rps_meter.record(self.sim.now)
        self._maybe_serve()

    def _sample(self):
        if not self.running or (self.stop_at is not None and self.sim.now >= self.stop_at):
            return
        self.rps_series.record(self.sim.now, self.rps_meter.rate(self.sim.now))
        self.load_series.record(self.sim.now, self._load)
        self.sim.schedule(self._sample_every, self._sample)

    # -- measurements -----------------------------------------------------------

    def request_percentile(self, pct: float, last: int = 200) -> Optional[float]:
        if not self.request_latencies:
            return None
        window = sorted(self.request_latencies[-last:])
        rank = max(1, int(round(pct / 100 * len(window))))
        return window[rank - 1]

    def mean_rps(self, start: float, end: float) -> float:
        return self.rps_series.mean(start, end)


class WebServer(ResourceControlBench):
    """Figure 14's production web server stand-in: RCBench with web-ish
    defaults (larger worker pool, smaller per-request IO)."""

    def __init__(self, sim, layer, mm, cgroup, **kwargs):
        kwargs.setdefault("peak_rps", 800.0)
        kwargs.setdefault("load", 0.8)
        kwargs.setdefault("workers", 16)
        kwargs.setdefault("working_set", 384 * MB)
        kwargs.setdefault("touch_per_request", 256 * 1024)
        kwargs.setdefault("io_reads_per_request", 1)
        kwargs.setdefault("io_read_size", 8 * 1024)
        kwargs.setdefault("cpu_time", 0.5e-3)
        kwargs.setdefault("queue_timeout", 0.1)
        super().__init__(sim, layer, mm, cgroup, **kwargs)
