"""Workload base classes and helpers."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.analysis.stats import Summary
from repro.block.bio import Bio, IOOp
from repro.block.layer import BlockLayer
from repro.cgroup import Cgroup
from repro.sim import Simulator

PAGE = 4096


class SectorPicker:
    """Generates page-aligned sectors, random or sequential."""

    def __init__(self, rng: np.random.Generator, sequential: bool, span_sectors: int = 1 << 31):
        self.rng = rng
        self.sequential = sequential
        self.span = span_sectors
        self._next = int(rng.integers(0, span_sectors // 2)) // 8 * 8

    def next(self, nbytes: int) -> int:
        if self.sequential:
            sector = self._next
            self._next += (nbytes + 511) // 512
            return sector
        return int(self.rng.integers(1, self.span // 8)) * 8


class Workload:
    """Base class: owns its cgroup, tracks completions and latencies."""

    def __init__(self, sim: Simulator, layer: BlockLayer, cgroup: Cgroup, seed: int = 0):
        self.sim = sim
        self.layer = layer
        self.cgroup = cgroup
        self.rng = np.random.default_rng(seed)
        self.completed = 0
        self.bytes_done = 0
        self.latencies: List[float] = []
        self.running = False

    def start(self) -> "Workload":
        self.running = True
        return self

    def stop(self) -> None:
        self.running = False

    def _record(self, bio: Bio) -> None:
        self.completed += 1
        self.bytes_done += bio.nbytes
        self.latencies.append(bio.latency)

    def iops(self, duration: float) -> float:
        return self.completed / duration

    def latency_summary(self) -> Summary:
        return Summary.of(self.latencies)

    def recent_percentile(self, pct: float, last: int = 200) -> Optional[float]:
        """Percentile over the most recent ``last`` completions."""
        if not self.latencies:
            return None
        window = self.latencies[-last:]
        window = sorted(window)
        rank = max(1, int(round(pct / 100 * len(window))))
        return window[rank - 1]
