"""Workload base classes and helpers."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.analysis.stats import Summary
from repro.block.bio import Bio, IOOp
from repro.block.layer import BlockLayer
from repro.cgroup import Cgroup
from repro.sim import Simulator

PAGE = 4096


class SectorPicker:
    """Generates page-aligned sectors, random or sequential.

    Random sectors may be drawn from the generator in chunks (``chunk`` >
    1): numpy array draws consume the bit stream identically to repeated
    scalar draws, so chunking changes per-call cost, never the sector
    sequence.  Leave ``chunk`` at 1 when the generator is shared with other
    consumers — pre-drawing would reorder the stream interleaving.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        sequential: bool,
        span_sectors: int = 1 << 31,
        chunk: int = 1,
    ):
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.rng = rng
        self.sequential = sequential
        self.span = span_sectors
        self.chunk = chunk
        self._next = int(rng.integers(0, span_sectors // 2)) // 8 * 8
        self._buf: List[int] = []
        self._i = 0

    def next(self, nbytes: int) -> int:
        if self.sequential:
            sector = self._next
            self._next += (nbytes + 511) // 512
            return sector
        if self.chunk == 1:
            return int(self.rng.integers(1, self.span // 8)) * 8
        i = self._i
        if i == len(self._buf):
            self._buf = (self.rng.integers(1, self.span // 8, size=self.chunk) * 8).tolist()
            i = 0
        self._i = i + 1
        return self._buf[i]


class Workload:
    """Base class: owns its cgroup, tracks completions and latencies.

    ``fast_completions`` selects the block layer's callback completion fast
    path (``submit(bio, on_done=...)``, docs/PERF.md) over the Signal
    protocol.  Both paths complete bios at identical simulated times in
    identical order; the flag exists so determinism tests can run the same
    workload both ways and diff the traces.
    """

    def __init__(
        self,
        sim: Simulator,
        layer: BlockLayer,
        cgroup: Cgroup,
        seed: int = 0,
        fast_completions: bool = True,
    ):
        self.sim = sim
        self.layer = layer
        self.cgroup = cgroup
        self.rng = np.random.default_rng(seed)
        self.fast_completions = fast_completions
        self.completed = 0
        self.bytes_done = 0
        self.latencies: List[float] = []
        self.running = False

    def _submit(self, bio: Bio, on_done) -> None:
        """Submit via the configured completion path (see class docstring)."""
        if self.fast_completions:
            self.layer.submit(bio, on_done=on_done)
        else:
            # submit() without on_done always returns the completion Signal.
            self.layer.submit(bio).wait(on_done)

    def start(self) -> "Workload":
        self.running = True
        return self

    def stop(self) -> None:
        self.running = False

    def _record(self, bio: Bio) -> None:
        self.completed += 1
        self.bytes_done += bio.nbytes
        self.latencies.append(bio.latency)

    def iops(self, duration: float) -> float:
        return self.completed / duration

    def latency_summary(self) -> Summary:
        return Summary.of(self.latencies)

    def recent_percentile(self, pct: float, last: int = 200) -> Optional[float]:
        """Percentile over the most recent ``last`` completions."""
        if not self.latencies:
            return None
        window = self.latencies[-last:]
        window = sorted(window)
        rank = max(1, int(round(pct / 100 * len(window))))
        return window[rank - 1]
