"""fio-style synthetic workloads (the generators behind Figures 9-13).

* :class:`ClosedLoopWorkload` — keep N IOs outstanding (saturation).
* :class:`PacedWorkload` — open-loop fixed issue rate.
* :class:`ThinkTimeWorkload` — serial IO with think time between requests
  (the Figure 11 high-priority workload: "a new IO is issued after 100 us
  has passed since the last IO's completion").
* :class:`LatencyGovernedWorkload` — a latency-sensitive service that
  load-sheds: it keeps issuing 4 KiB random reads *so long as* its observed
  p50 latency stays below a target (Figure 10: "simulate online services
  which may load-shed if request latencies climb too high").
"""

from __future__ import annotations

from repro.block.bio import Bio, IOOp
from repro.workloads.base import SectorPicker, Workload


class ClosedLoopWorkload(Workload):
    """Keeps ``depth`` IOs outstanding until ``stop_at`` (or stop())."""

    def __init__(
        self,
        sim,
        layer,
        cgroup,
        op: IOOp = IOOp.READ,
        size: int = 4096,
        depth: int = 16,
        sequential: bool = False,
        stop_at: float = None,
        seed: int = 0,
        fast_completions: bool = True,
    ):
        super().__init__(sim, layer, cgroup, seed, fast_completions)
        self.op = op
        self.size = size
        self.depth = depth
        self.stop_at = stop_at
        # The workload rng feeds only the picker, so chunked pre-draws are
        # safe (and stream-equivalent — see SectorPicker).
        self.picker = SectorPicker(self.rng, sequential, chunk=256)

    def start(self):
        super().start()
        for _ in range(self.depth):
            self._issue()
        return self

    def _issue(self):
        bio = Bio(self.op, self.size, self.picker.next(self.size), self.cgroup)
        self._submit(bio, self._done)

    def _done(self, bio):
        self._record(bio)
        if self.running and (self.stop_at is None or self.sim.now < self.stop_at):
            self._issue()


class PacedWorkload(Workload):
    """Open-loop issuance at a fixed rate (IOs per second)."""

    def __init__(
        self,
        sim,
        layer,
        cgroup,
        rate: float,
        op: IOOp = IOOp.READ,
        size: int = 4096,
        sequential: bool = False,
        stop_at: float = None,
        seed: int = 0,
        fast_completions: bool = True,
    ):
        super().__init__(sim, layer, cgroup, seed, fast_completions)
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.interval = 1.0 / rate
        self.op = op
        self.size = size
        self.stop_at = stop_at
        self.picker = SectorPicker(self.rng, sequential, chunk=256)

    def start(self):
        super().start()
        self.sim.schedule(self.interval, self._tick)
        return self

    def _tick(self):
        if not self.running or (self.stop_at is not None and self.sim.now >= self.stop_at):
            return
        bio = Bio(self.op, self.size, self.picker.next(self.size), self.cgroup)
        self._submit(bio, self._record)
        self.sim.schedule(self.interval, self._tick)


class ThinkTimeWorkload(Workload):
    """Serial requests with fixed think time after each completion."""

    def __init__(
        self,
        sim,
        layer,
        cgroup,
        think_time: float = 100e-6,
        op: IOOp = IOOp.READ,
        size: int = 4096,
        sequential: bool = False,
        stop_at: float = None,
        seed: int = 0,
        fast_completions: bool = True,
    ):
        super().__init__(sim, layer, cgroup, seed, fast_completions)
        self.think_time = think_time
        self.op = op
        self.size = size
        self.stop_at = stop_at
        self.picker = SectorPicker(self.rng, sequential, chunk=256)

    def start(self):
        super().start()
        self._issue()
        return self

    def _issue(self):
        bio = Bio(self.op, self.size, self.picker.next(self.size), self.cgroup)
        self._submit(bio, self._done)

    def _done(self, bio):
        self._record(bio)
        if self.running and (self.stop_at is None or self.sim.now < self.stop_at):
            self.sim.schedule(self.think_time, self._maybe_issue)

    def _maybe_issue(self):
        if self.running and (self.stop_at is None or self.sim.now < self.stop_at):
            self._issue()


class LatencyGovernedWorkload(Workload):
    """Load-shedding latency-sensitive reader (Figure 10's workloads).

    Maintains a closed loop whose concurrency adapts: while the recent p50
    completion latency is under ``latency_target`` the workload grows its
    outstanding depth (additively); when p50 exceeds the target it backs
    off (multiplicatively).  The result issues as much IO as it can without
    its own latency crossing the target — exactly the behaviour that lets a
    latency-unfair controller starve it (the BFQ/IOLatency 10:1 outcome).
    """

    ADJUST_EVERY = 64  # completions between depth adjustments

    def __init__(
        self,
        sim,
        layer,
        cgroup,
        latency_target: float = 200e-6,
        max_depth: int = 64,
        op: IOOp = IOOp.READ,
        size: int = 4096,
        stop_at: float = None,
        seed: int = 0,
        fast_completions: bool = True,
    ):
        super().__init__(sim, layer, cgroup, seed, fast_completions)
        self.latency_target = latency_target
        self.max_depth = max_depth
        self.op = op
        self.size = size
        self.stop_at = stop_at
        self.picker = SectorPicker(self.rng, sequential=False, chunk=256)
        self.depth = 4
        self._outstanding = 0
        self._since_adjust = 0

    def start(self):
        super().start()
        self._top_up()
        return self

    def _top_up(self):
        while self._outstanding < self.depth:
            if self.stop_at is not None and self.sim.now >= self.stop_at:
                return
            self._outstanding += 1
            bio = Bio(self.op, self.size, self.picker.next(self.size), self.cgroup)
            self._submit(bio, self._done)

    def _done(self, bio):
        self._outstanding -= 1
        self._record(bio)
        self._since_adjust += 1
        if self._since_adjust >= self.ADJUST_EVERY:
            self._since_adjust = 0
            self._adjust()
        if self.running and (self.stop_at is None or self.sim.now < self.stop_at):
            self._top_up()

    def _adjust(self):
        p50 = self.recent_percentile(50, last=self.ADJUST_EVERY)
        if p50 is None:
            return
        if p50 > self.latency_target:
            self.depth = max(1, self.depth // 2)
        elif self.depth < self.max_depth:
            self.depth += 1
