"""Memory-antagonist workloads: the leaker and the stressor.

* :class:`MemoryLeaker` — allocates memory at a fixed rate forever (the
  misbehaving system service of Figures 14/17/18); eventually OOM-killed.
* :class:`StressWorkload` — the ``stress`` tool of Figure 15: holds a fixed
  working set and touches it continuously, faulting pages back in whenever
  reclaim pushes them out.
"""

from __future__ import annotations

from typing import Optional

from repro.mm.memory import MemoryManager
from repro.workloads.base import Workload

MB = 1024 * 1024


class MemoryLeaker(Workload):
    """Allocates ``rate_bps`` forever until OOM-killed."""

    def __init__(
        self,
        sim,
        layer,
        mm: MemoryManager,
        cgroup,
        rate_bps: float = 200 * MB,
        chunk: int = 4 * MB,
        stop_at: Optional[float] = None,
        seed: int = 0,
    ):
        super().__init__(sim, layer, cgroup, seed)
        self.mm = mm
        self.rate_bps = rate_bps
        self.chunk = chunk
        self.stop_at = stop_at
        self.killed = False
        self.allocated = 0

    def start(self):
        super().start()
        self.mm.on_oom(self.cgroup, self._oom_killed)
        self.sim.process(self._leak_loop(), name=f"memleak-{self.cgroup.path}")
        return self

    def _oom_killed(self):
        self.killed = True
        self.running = False

    def _leak_loop(self):
        pace = self.chunk / self.rate_bps
        while self.running and (self.stop_at is None or self.sim.now < self.stop_at):
            yield from self.mm.alloc(self.cgroup, self.chunk)
            if not self.running:  # OOM fired during the allocation
                break
            self.allocated += self.chunk
            yield pace


class StressWorkload(Workload):
    """Holds ``working_set`` bytes and touches them continuously."""

    def __init__(
        self,
        sim,
        layer,
        mm: MemoryManager,
        cgroup,
        working_set: int = 512 * MB,
        touch_chunk: int = 8 * MB,
        touch_interval: float = 0.01,
        stop_at: Optional[float] = None,
        seed: int = 0,
    ):
        super().__init__(sim, layer, cgroup, seed)
        self.mm = mm
        self.working_set = working_set
        self.touch_chunk = touch_chunk
        self.touch_interval = touch_interval
        self.stop_at = stop_at
        self.touches = 0

    def start(self):
        super().start()
        self.sim.process(self._stress_loop(), name=f"stress-{self.cgroup.path}")
        return self

    def _stress_loop(self):
        yield from self.mm.alloc(self.cgroup, self.working_set)
        while self.running and (self.stop_at is None or self.sim.now < self.stop_at):
            yield from self.mm.touch(self.cgroup, self.touch_chunk)
            self.touches += 1
            yield self.touch_interval
