"""Stacked ZooKeeper-like ensembles (paper §4.6, Figure 16).

A strongly-consistent coordination service: every write is replicated to an
ensemble of participants spread across machines and commits when a quorum
has journaled it; a snapshot of the in-memory database is written after
every ``snapshot_every`` transactions, producing momentary write spikes
"even under nominal loads".  Reads are served by a single participant with
a small storage access (the page-cache-miss/metadata share of read
handling — the part exposed to IO contention).

The experiment stacks twelve ensembles of five participants over five
machines (no two participants of one ensemble co-hosted), eleven
well-behaved (100 KB payloads) and one noisy neighbour (300 KB), and counts
violations of a one-second P99 SLO for the well-behaved ensembles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.stats import percentile
from repro.block.bio import Bio, IOOp
from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree, make_meta_hierarchy
from repro.controllers.base import IOController
from repro.sim import Simulator


class Machine:
    """One host: a device, a controller instance, and a cgroup hierarchy."""

    def __init__(
        self,
        sim: Simulator,
        spec: DeviceSpec,
        controller_factory: Callable[[], IOController],
        name: str,
        seed: int = 0,
    ):
        self.sim = sim
        self.name = name
        self.device = Device(sim, spec, np.random.default_rng(seed))
        self.controller = controller_factory()
        self.layer = BlockLayer(sim, self.device, self.controller)
        self.cgroups = make_meta_hierarchy()


@dataclass
class OpRecord:
    time: float
    latency: float
    is_write: bool


class ZooKeeperEnsemble:
    """One replicated ensemble spread over ``machines``."""

    def __init__(
        self,
        sim: Simulator,
        machines: List[Machine],
        name: str,
        read_rps: float,
        write_rps: float,
        payload: int,
        snapshot_every: int = 5000,
        snapshot_bytes: int = 64 * 1024 * 1024,
        snapshot_chunk: int = 1 << 20,
        quorum: Optional[int] = None,
        weight: int = 100,
        stop_at: Optional[float] = None,
        seed: int = 0,
    ):
        self.sim = sim
        self.machines = machines
        self.name = name
        self.read_rps = read_rps
        self.write_rps = write_rps
        self.payload = payload
        self.snapshot_every = snapshot_every
        self.snapshot_bytes = snapshot_bytes
        self.snapshot_chunk = snapshot_chunk
        self.quorum = quorum or (len(machines) // 2 + 1)
        self.stop_at = stop_at
        self.rng = np.random.default_rng(seed)
        self.ops: List[OpRecord] = []
        self.txn_count = 0
        self.snapshots_taken = 0
        self.running = False
        # One cgroup per participant, under the workload slice of its host.
        self.cgroups = [
            machine.cgroups.get_or_create(f"workload.slice/{name}", weight=weight)
            for machine in machines
        ]
        self._journal_sectors = [int(self.rng.integers(0, 1 << 24)) * 8 for _ in machines]

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ZooKeeperEnsemble":
        self.running = True
        if self.read_rps > 0:
            self.sim.schedule(float(self.rng.exponential(1 / self.read_rps)), self._read_arrival)
        if self.write_rps > 0:
            self.sim.schedule(float(self.rng.exponential(1 / self.write_rps)), self._write_arrival)
        return self

    def stop(self) -> None:
        self.running = False

    def _live(self) -> bool:
        return self.running and (self.stop_at is None or self.sim.now < self.stop_at)

    # -- reads -----------------------------------------------------------------

    def _read_arrival(self):
        if not self._live():
            return
        index = int(self.rng.integers(0, len(self.machines)))
        machine, cgroup = self.machines[index], self.cgroups[index]
        start = self.sim.now
        sector = int(self.rng.integers(1, 1 << 26)) * 8
        bio = Bio(IOOp.READ, 4096, sector, cgroup)
        machine.layer.submit(bio).wait(
            lambda _b: self.ops.append(OpRecord(self.sim.now, self.sim.now - start, False))
        )
        self.sim.schedule(float(self.rng.exponential(1 / self.read_rps)), self._read_arrival)

    # -- writes -----------------------------------------------------------------

    def _write_arrival(self):
        if not self._live():
            return
        self._commit(self.sim.now)
        self.txn_count += 1
        if self.txn_count % self.snapshot_every == 0:
            self._snapshot()
        self.sim.schedule(float(self.rng.exponential(1 / self.write_rps)), self._write_arrival)

    def _commit(self, start: float):
        """Replicate to all participants; commit at quorum acks."""
        acks = {"count": 0, "done": False}

        def acked(_bio):
            acks["count"] += 1
            if not acks["done"] and acks["count"] >= self.quorum:
                acks["done"] = True
                self.ops.append(OpRecord(self.sim.now, self.sim.now - start, True))

        for index, machine in enumerate(self.machines):
            sector = self._journal_sectors[index]
            self._journal_sectors[index] += (self.payload + 511) // 512
            bio = Bio(IOOp.WRITE, self.payload, sector, self.cgroups[index])
            machine.layer.submit(bio).wait(acked)

    def _snapshot(self):
        """All participants dump the in-memory DB: a sequential write burst."""
        self.snapshots_taken += 1
        chunk = self.snapshot_chunk
        for index, machine in enumerate(self.machines):
            sector = int(self.rng.integers(1 << 26, 1 << 27)) * 8
            remaining = self.snapshot_bytes
            while remaining > 0:
                size = min(chunk, remaining)
                bio = Bio(IOOp.WRITE, size, sector, self.cgroups[index])
                sector += size // 512
                remaining -= size
                machine.layer.submit(bio)

    # -- SLO analysis ------------------------------------------------------------

    def p99_series(self, window: float = 10.0, step: float = 1.0) -> List[Tuple[float, float]]:
        """(time, p99-over-trailing-window) samples from the op log."""
        if not self.ops:
            return []
        samples = []
        end = max(record.time for record in self.ops)
        times = np.array([record.time for record in self.ops])
        lats = [record.latency for record in self.ops]
        t = step  # trailing window is simply truncated early in the run
        while t <= end + step:
            lo = np.searchsorted(times, t - window)
            hi = np.searchsorted(times, t)
            if hi > lo:
                samples.append((t, percentile(lats[lo:hi], 99)))
            t += step
        return samples

    def slo_violations(
        self, slo: float = 1.0, window: float = 10.0, step: float = 1.0
    ) -> List[Tuple[float, float, float]]:
        """Contiguous P99-above-SLO intervals: (start, duration, peak_p99)."""
        violations = []
        current_start = None
        peak = 0.0
        for time, p99 in self.p99_series(window, step):
            if p99 > slo:
                if current_start is None:
                    current_start = time
                    peak = p99
                else:
                    peak = max(peak, p99)
            elif current_start is not None:
                violations.append((current_start, time - current_start, peak))
                current_start = None
        if current_start is not None:
            violations.append((current_start, step, peak))
        return violations
