"""Workload-heterogeneity profiles (Figure 4).

The paper characterises production services by their P50 per-second read
vs write bytes and random vs sequential bytes.  Only qualitative anchors
are published ("Web A and Web B ... moderate amount of reads and writes
mixed about equally in terms of random and sequential", "Cache A and B ...
high amounts of sequential IOs", "non-storage services ... relatively
little explicit IO"); these profiles encode that shape with representative
magnitudes.

:class:`MixedWorkload` replays a profile against a device, splitting each
second's bytes across the four (direction × pattern) streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.block.bio import Bio, IOOp
from repro.workloads.base import SectorPicker, Workload

MB = 1e6


@dataclass(frozen=True)
class WorkloadProfile:
    """P50 per-second IO demand of one service class."""

    name: str
    read_bps: float
    write_bps: float
    #: Fraction of bytes that are random (vs sequential).
    random_fraction: float
    io_size: int = 64 * 1024

    @property
    def rand_bps(self) -> float:
        return (self.read_bps + self.write_bps) * self.random_fraction

    @property
    def seq_bps(self) -> float:
        return (self.read_bps + self.write_bps) * (1 - self.random_fraction)


#: Figure 4's service classes.
WORKLOAD_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        WorkloadProfile("web_a", read_bps=18 * MB, write_bps=14 * MB, random_fraction=0.5),
        WorkloadProfile("web_b", read_bps=12 * MB, write_bps=10 * MB, random_fraction=0.48),
        WorkloadProfile("serverless", read_bps=30 * MB, write_bps=22 * MB, random_fraction=0.6),
        WorkloadProfile("cache_a", read_bps=95 * MB, write_bps=70 * MB, random_fraction=0.12),
        WorkloadProfile("cache_b", read_bps=70 * MB, write_bps=90 * MB, random_fraction=0.08),
        WorkloadProfile("nonstorage_a", read_bps=0.8 * MB, write_bps=1.2 * MB, random_fraction=0.7),
        WorkloadProfile("nonstorage_b", read_bps=0.5 * MB, write_bps=0.6 * MB, random_fraction=0.65),
    )
}


class MixedWorkload(Workload):
    """Replays a :class:`WorkloadProfile` as four paced byte streams."""

    def __init__(self, sim, layer, cgroup, profile: WorkloadProfile,
                 stop_at: float = None, seed: int = 0):
        super().__init__(sim, layer, cgroup, seed)
        self.profile = profile
        self.stop_at = stop_at
        self._streams = []
        for op, direction_bps in ((IOOp.READ, profile.read_bps), (IOOp.WRITE, profile.write_bps)):
            for sequential, frac in ((False, profile.random_fraction),
                                     (True, 1 - profile.random_fraction)):
                bps = direction_bps * frac
                if bps <= 0:
                    continue
                self._streams.append(
                    _ByteStream(self, op, sequential, bps, profile.io_size)
                )
        # Observed byte tallies per (is_write, sequential).
        self.bytes_by_class: Dict[tuple, int] = {}

    def start(self):
        super().start()
        for stream in self._streams:
            stream.start()
        return self

    def _account(self, bio: Bio, sequential: bool) -> None:
        self._record(bio)
        key = (bio.is_write, sequential)
        self.bytes_by_class[key] = self.bytes_by_class.get(key, 0) + bio.nbytes


class _ByteStream:
    """One direction × pattern stream of a mixed workload."""

    def __init__(self, owner: MixedWorkload, op: IOOp, sequential: bool,
                 bps: float, io_size: int):
        self.owner = owner
        self.op = op
        self.sequential = sequential
        self.interval = io_size / bps
        self.io_size = io_size
        self.picker = SectorPicker(owner.rng, sequential)

    def start(self):
        self.owner.sim.schedule(self.interval, self._tick)

    def _tick(self):
        owner = self.owner
        if not owner.running or (owner.stop_at is not None and owner.sim.now >= owner.stop_at):
            return
        bio = Bio(self.op, self.io_size, self.picker.next(self.io_size), owner.cgroup)
        owner.layer.submit(bio).wait(
            lambda b, seq=self.sequential: owner._account(b, seq)
        )
        owner.sim.schedule(self.interval, self._tick)
