"""PID load-ramp driver (Figure 15).

The paper: "We configure a PID controller to slowly add load to
ResourceControlBench from 40% of its peak compute load to 80% while keeping
p95 latency under 75 ms.  We measure the time it takes ... to scale from
40% to 80%."

:class:`PIDController` is a plain textbook PID; :class:`LoadRamp` wires it
to an :class:`~repro.workloads.rcbench.ResourceControlBench` instance's
``load`` knob with the p95 request latency as the process variable.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.stats import TimeSeries
from repro.workloads.rcbench import ResourceControlBench


class PIDController:
    """Discrete PID on an error signal."""

    def __init__(
        self,
        kp: float,
        ki: float = 0.0,
        kd: float = 0.0,
        output_min: float = float("-inf"),
        output_max: float = float("inf"),
    ):
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.output_min = output_min
        self.output_max = output_max
        self._integral = 0.0
        self._last_error: Optional[float] = None

    def update(self, error: float, dt: float) -> float:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self._integral += error * dt
        derivative = 0.0
        if self._last_error is not None:
            derivative = (error - self._last_error) / dt
        self._last_error = error
        output = self.kp * error + self.ki * self._integral + self.kd * derivative
        # Clamp with integral anti-windup.
        if output > self.output_max:
            self._integral -= error * dt
            return self.output_max
        if output < self.output_min:
            self._integral -= error * dt
            return self.output_min
        return output


class LoadRamp:
    """Ramp an RCBench instance 40%→80% load under a p95 latency ceiling."""

    def __init__(
        self,
        sim,
        bench: ResourceControlBench,
        start_load: float = 0.4,
        end_load: float = 0.8,
        latency_target: float = 75e-3,
        interval: float = 0.5,
        kp: float = 0.35,
        ki: float = 0.05,
    ):
        self.sim = sim
        self.bench = bench
        self.start_load = start_load
        self.end_load = end_load
        self.latency_target = latency_target
        self.interval = interval
        # Control output is the *load delta* per interval, bounded so the
        # ramp is "slow" in both directions.
        self.pid = PIDController(kp=kp, ki=ki, output_min=-0.1, output_max=0.05)
        self.completed_at: Optional[float] = None
        self.load_series = TimeSeries("ramp_load")
        bench.load = start_load

    def start(self) -> "LoadRamp":
        self.sim.schedule(self.interval, self._tick)
        return self

    @property
    def ramp_time(self) -> Optional[float]:
        """Seconds from ramp start to first reaching the end load."""
        return self.completed_at

    def _tick(self):
        bench = self.bench
        p95 = bench.request_percentile(95, last=100)
        if p95 is None:
            p95 = 0.0
        # Positive error (latency headroom) raises load; violation cuts it.
        error = (self.latency_target - p95) / self.latency_target
        delta = self.pid.update(error, self.interval)
        bench.load = min(self.end_load, max(self.start_load * 0.5, bench.load + delta))
        self.load_series.record(self.sim.now, bench.load)
        if bench.load >= self.end_load and self.completed_at is None:
            self.completed_at = self.sim.now
            return  # ramp finished; stop driving
        self.sim.schedule(self.interval, self._tick)
