"""Fleet-migration model for package fetching and container cleanup
(paper §4.8, Figures 18/19).

The paper reports region-wide failure-rate telemetry as hundreds of
thousands of machines migrate from IOLatency to IOCost over two months.  We
reproduce the *generating process*:

1. **Per-machine task durations are simulated, not assumed.**
   :func:`measure_task_durations` runs a machine-scale simulation — a heavy
   main workload in ``workload.slice`` contending with a system task
   (package fetch: a sequential package write plus metadata reads in
   ``system.slice``; container cleanup: random metadata IO in
   ``hostcritical.slice``) — once per sampled workload intensity, and
   records how long the task took under a given controller.

2. **Region Monte Carlo.** :class:`FleetMigration` holds a region of
   machines, each attempting tasks every simulated week; a machine uses the
   empirical duration distribution of whichever controller it currently
   runs.  Weekly failure counts (duration > deadline) fall as the migration
   fraction ramps — the Figures 18/19 series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.block.bio import Bio, IOOp
from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import make_meta_hierarchy
from repro.controllers.base import IOController
from repro.sim import Simulator
from repro.workloads.synthetic import ClosedLoopWorkload

MB = 1024 * 1024


@dataclass(frozen=True)
class SystemTask:
    """A host-management task that must finish within a deadline."""

    name: str
    cgroup_path: str
    seq_write_bytes: int
    small_ios: int
    small_io_size: int
    small_io_op: IOOp
    deadline: float


#: Figure 18: fetch a package (sequential payload write + metadata reads)
#: from the system slice; failure breaks container updates.
PACKAGE_FETCH = SystemTask(
    name="package_fetch",
    cgroup_path="system.slice",
    seq_write_bytes=24 * MB,
    small_ios=400,
    small_io_size=4096,
    small_io_op=IOOp.READ,
    deadline=20.0,
)

#: Figure 19: clean up an old container's btrfs subvolume (metadata IO)
#: from the host-critical slice; > 5 s counts as a stall/failure.
CONTAINER_CLEANUP = SystemTask(
    name="container_cleanup",
    cgroup_path="hostcritical.slice",
    seq_write_bytes=0,
    small_ios=1500,
    small_io_size=4096,
    small_io_op=IOOp.WRITE,
    deadline=5.0,
)


def run_task_once(
    spec: DeviceSpec,
    controller_factory: Callable[[], IOController],
    task: SystemTask,
    workload_depth: int,
    seed: int,
    settle: float = 0.5,
) -> float:
    """Run one machine simulation; return the task's duration in seconds.

    The main workload saturates the device with mixed reads/writes at
    ``workload_depth`` outstanding IOs while the task runs in its slice.
    """
    sim = Simulator()
    device = Device(sim, spec, np.random.default_rng(seed))
    controller = controller_factory()
    layer = BlockLayer(sim, device, controller)
    cgroups = make_meta_hierarchy()
    busy = cgroups.get_or_create("workload.slice/main", weight=100)
    task_group = cgroups.lookup(task.cgroup_path)

    ClosedLoopWorkload(
        sim, layer, busy, op=IOOp.READ, depth=workload_depth, seed=seed + 1
    ).start()
    ClosedLoopWorkload(
        sim, layer, busy, op=IOOp.WRITE, depth=max(2, workload_depth // 2),
        seed=seed + 2,
    ).start()
    sim.run(until=settle)

    rng = np.random.default_rng(seed + 3)
    done = {"at": None}

    def task_process():
        # Sequential payload write, 1 MiB at a time.
        sector = int(rng.integers(1 << 22, 1 << 23)) * 8
        remaining = task.seq_write_bytes
        while remaining > 0:
            size = min(1 * MB, remaining)
            bio = Bio(IOOp.WRITE, size, sector, task_group)
            sector += size // 512
            remaining -= size
            signal = layer.submit(bio)
            if not signal.fired:
                yield signal
        # Metadata IOs, moderately concurrent (batches of 8).
        batch = 8
        issued = 0
        while issued < task.small_ios:
            signals = []
            for _ in range(min(batch, task.small_ios - issued)):
                sector = int(rng.integers(1, 1 << 26)) * 8
                bio = Bio(task.small_io_op, task.small_io_size, sector, task_group)
                signals.append(layer.submit(bio))
                issued += 1
            for signal in signals:
                if not signal.fired:
                    yield signal
        done["at"] = sim.now

    start = sim.now
    sim.process(task_process(), name=task.name)
    # Generous wall guard: run until the task completes.
    while done["at"] is None:
        if not sim.step():
            raise RuntimeError("simulation drained before task completion")
        if sim.now - start > 10 * task.deadline:
            # Hopeless starvation: already far past failure; report the
            # elapsed duration rather than simulating the stall to its end.
            controller.detach()
            return sim.now - start
    controller.detach()
    return done["at"] - start


def measure_task_durations(
    spec: DeviceSpec,
    controller_factory: Callable[[], IOController],
    task: SystemTask,
    samples: int = 12,
    seed: int = 0,
) -> List[float]:
    """Empirical duration distribution across workload intensities."""
    rng = np.random.default_rng(seed)
    durations = []
    for index in range(samples):
        depth = int(rng.integers(8, 64))
        durations.append(
            run_task_once(spec, controller_factory, task, depth, seed=seed + index * 101)
        )
    return durations


@dataclass
class WeeklyReport:
    week: int
    migrated_fraction: float
    attempts: int
    failures: int

    @property
    def failure_rate(self) -> float:
        return self.failures / self.attempts if self.attempts else 0.0


class FleetMigration:
    """Region Monte Carlo over a staged IOLatency→IOCost migration."""

    def __init__(
        self,
        old_durations: Sequence[float],
        new_durations: Sequence[float],
        deadline: float,
        machines: int = 2000,
        tasks_per_machine_week: int = 20,
        seed: int = 0,
    ):
        if not old_durations or not new_durations:
            raise ValueError("need non-empty duration distributions")
        self.old = np.asarray(old_durations)
        self.new = np.asarray(new_durations)
        self.deadline = deadline
        self.machines = machines
        self.tasks_per_machine_week = tasks_per_machine_week
        self.rng = np.random.default_rng(seed)

    def run(self, migration_schedule: Sequence[float]) -> List[WeeklyReport]:
        """``migration_schedule[w]`` = fraction of machines on IOCost in week w."""
        reports = []
        for week, fraction in enumerate(migration_schedule):
            migrated = int(self.machines * min(1.0, max(0.0, fraction)))
            failures = 0
            attempts = self.machines * self.tasks_per_machine_week
            # Vectorised sampling: durations for old- and new-stack machines.
            old_n = (self.machines - migrated) * self.tasks_per_machine_week
            new_n = migrated * self.tasks_per_machine_week
            if old_n:
                draws = self.rng.choice(self.old, size=old_n)
                # Per-attempt jitter models machine-to-machine variance.
                draws = draws * self.rng.lognormal(0.0, 0.35, size=old_n)
                failures += int(np.count_nonzero(draws > self.deadline))
            if new_n:
                draws = self.rng.choice(self.new, size=new_n)
                draws = draws * self.rng.lognormal(0.0, 0.35, size=new_n)
                failures += int(np.count_nonzero(draws > self.deadline))
            reports.append(WeeklyReport(week, fraction, attempts, failures))
        return reports
