"""Fleet-migration model for package fetching and container cleanup
(paper §4.8, Figures 18/19).

The paper reports region-wide failure-rate telemetry as hundreds of
thousands of machines migrate from IOLatency to IOCost over two months.  We
reproduce the *generating process*:

1. **Per-machine task durations are simulated, not assumed.**
   :func:`measure_task_durations` runs a machine-scale simulation — a heavy
   main workload in ``workload.slice`` contending with a system task
   (package fetch: a sequential package write plus metadata reads in
   ``system.slice``; container cleanup: random metadata IO in
   ``hostcritical.slice``) — once per sampled workload intensity, and
   records how long the task took under a given controller.

2. **Region Monte Carlo.** :class:`FleetMigration` holds a region of
   machines, each attempting tasks every simulated week; a machine uses the
   empirical duration distribution of whichever controller it currently
   runs.  Weekly failure counts (duration > deadline) fall as the migration
   fraction ramps — the Figures 18/19 series.

This module is the Monte Carlo *backend*; the cluster-scale frontend —
host placement, the staged migration policy, fleet rollups — lives in
:mod:`repro.fleet`, whose scheduler calls down into these functions.

Every random draw here comes from a **label-keyed stream** rooted at the
caller's seed (:func:`rng_for`, the :meth:`repro.testbed.Testbed.rng_for`
pattern): each (week, cohort) of the Monte Carlo and each component of the
per-machine simulation owns its own ``SeedSequence`` substream, so changing
the machine count, the migration schedule, or the sample count never
perturbs draws that other consumers have already taken.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Union

import numpy as np

from repro.block.bio import Bio, IOOp
from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import make_meta_hierarchy
from repro.controllers.base import IOController
from repro.sanitize import SANITIZE
from repro.sim import Simulator
from repro.workloads.synthetic import ClosedLoopWorkload

MB = 1024 * 1024

#: Machine-to-machine variance applied to every Monte Carlo attempt.
JITTER_SIGMA = 0.35


def stream_seed(label: str, entropy: int) -> np.random.SeedSequence:
    """Seed material for one named substream of ``entropy``.

    Keyed by a hash of ``label`` — not by spawn order — so a stream's draws
    are identical no matter which other streams exist (the
    :meth:`repro.testbed.Testbed.rng_for` determinism contract).
    """
    key = int.from_bytes(hashlib.sha256(label.encode()).digest()[:8], "big")
    seq = np.random.SeedSequence(entropy=entropy, spawn_key=(key,))
    if SANITIZE.enabled:
        SANITIZE.check_stream(label, seq)
    return seq


def rng_for(label: str, entropy: int) -> np.random.Generator:
    """A dedicated generator for one named substream of ``entropy``."""
    return np.random.default_rng(stream_seed(label, entropy))


@dataclass(frozen=True)
class SystemTask:
    """A host-management task that must finish within a deadline."""

    name: str
    cgroup_path: str
    seq_write_bytes: int
    small_ios: int
    small_io_size: int
    small_io_op: IOOp
    deadline: float


#: Figure 18: fetch a package (sequential payload write + metadata reads)
#: from the system slice; failure breaks container updates.
PACKAGE_FETCH = SystemTask(
    name="package_fetch",
    cgroup_path="system.slice",
    seq_write_bytes=24 * MB,
    small_ios=400,
    small_io_size=4096,
    small_io_op=IOOp.READ,
    deadline=20.0,
)

#: Figure 19: clean up an old container's btrfs subvolume (metadata IO)
#: from the host-critical slice; > 5 s counts as a stall/failure.
CONTAINER_CLEANUP = SystemTask(
    name="container_cleanup",
    cgroup_path="hostcritical.slice",
    seq_write_bytes=0,
    small_ios=1500,
    small_io_size=4096,
    small_io_op=IOOp.WRITE,
    deadline=5.0,
)

#: The named system tasks the fleet layer's specs can reference.
TASKS: Dict[str, SystemTask] = {
    PACKAGE_FETCH.name: PACKAGE_FETCH,
    CONTAINER_CLEANUP.name: CONTAINER_CLEANUP,
}

#: Metadata IOs kept in flight at once by the system task.
META_BATCH = 8


def run_task_once(
    spec: DeviceSpec,
    controller_factory: Callable[[], IOController],
    task: SystemTask,
    workload_depth: int,
    seed: int,
    settle: float = 0.5,
) -> float:
    """Run one machine simulation; return the task's duration in seconds.

    The main workload saturates the device with mixed reads/writes at
    ``workload_depth`` outstanding IOs while the task runs in its slice.
    Completions ride the block layer's callback fast path (``on_done=``,
    docs/PERF.md) — no Signal allocation per bio.
    """
    sim = Simulator()
    device = Device(sim, spec, rng_for("fleet:device", seed))
    controller = controller_factory()
    layer = BlockLayer(sim, device, controller)
    cgroups = make_meta_hierarchy()
    busy = cgroups.get_or_create("workload.slice/main", weight=100)
    task_group = cgroups.lookup(task.cgroup_path)

    ClosedLoopWorkload(
        sim, layer, busy, op=IOOp.READ, depth=workload_depth,
        seed=stream_seed("fleet:main:read", seed),
    ).start()
    ClosedLoopWorkload(
        sim, layer, busy, op=IOOp.WRITE, depth=max(2, workload_depth // 2),
        seed=stream_seed("fleet:main:write", seed),
    ).start()
    sim.run(until=settle)

    rng = rng_for("fleet:task", seed)
    done = {"at": None}
    seq = {
        "sector": int(rng.integers(1 << 22, 1 << 23)) * 8,
        "remaining": task.seq_write_bytes,
    }
    meta = {"issued": 0, "inflight": 0}

    def issue_seq() -> None:
        # Sequential payload write, 1 MiB at a time, one chunk in flight.
        if seq["remaining"] <= 0:
            issue_meta_batch()
            return
        size = min(1 * MB, seq["remaining"])
        bio = Bio(IOOp.WRITE, size, seq["sector"], task_group)
        seq["sector"] += size // 512
        seq["remaining"] -= size
        layer.submit(bio, on_done=seq_done)

    def seq_done(bio: Bio) -> None:
        issue_seq()

    def issue_meta_batch() -> None:
        # Metadata IOs, moderately concurrent (batches of META_BATCH).
        if meta["issued"] >= task.small_ios:
            done["at"] = sim.now
            return
        batch = min(META_BATCH, task.small_ios - meta["issued"])
        meta["inflight"] = batch
        for _ in range(batch):
            sector = int(rng.integers(1, 1 << 26)) * 8
            bio = Bio(task.small_io_op, task.small_io_size, sector, task_group)
            meta["issued"] += 1
            layer.submit(bio, on_done=meta_done)

    def meta_done(bio: Bio) -> None:
        meta["inflight"] -= 1
        if meta["inflight"] == 0:
            issue_meta_batch()

    start = sim.now
    issue_seq()
    # Generous wall guard: run until the task completes.
    while done["at"] is None:
        if not sim.step():
            raise RuntimeError("simulation drained before task completion")
        if sim.now - start > 10 * task.deadline:
            # Hopeless starvation: already far past failure; report the
            # elapsed duration rather than simulating the stall to its end.
            controller.detach()
            return sim.now - start
    controller.detach()
    return done["at"] - start


def measure_task_durations(
    spec: DeviceSpec,
    controller_factory: Callable[[], IOController],
    task: SystemTask,
    samples: int = 12,
    seed: int = 0,
) -> List[float]:
    """Empirical duration distribution across workload intensities.

    Each sample owns two labeled substreams — one for its workload depth,
    one seeding its machine simulation — so raising ``samples`` extends the
    distribution without re-rolling the samples already taken.
    """
    durations = []
    for index in range(samples):
        depth = int(rng_for(f"fleet:depth:{index}", seed).integers(8, 64))
        run_seed = int(rng_for(f"fleet:sample:{index}", seed).integers(1 << 62))
        durations.append(
            run_task_once(spec, controller_factory, task, depth, seed=run_seed)
        )
    return durations


@dataclass
class WeeklyReport:
    week: int
    migrated_fraction: float
    attempts: int
    failures: int

    @property
    def failure_rate(self) -> float:
        return self.failures / self.attempts if self.attempts else 0.0


class FleetMigration:
    """Region Monte Carlo over a staged IOLatency→IOCost migration.

    Every (week, cohort) samples from its **own** labeled substream
    (:meth:`sample_failures`), so changing ``machines`` or the migration
    schedule re-rolls exactly the cohorts it resizes — every other week's
    draws are untouched.  (The pre-PR-10 implementation consumed one shared
    generator sequentially, so any such change perturbed all later weeks.)
    """

    def __init__(
        self,
        old_durations: Sequence[float],
        new_durations: Sequence[float],
        deadline: float,
        machines: int = 2000,
        tasks_per_machine_week: int = 20,
        seed: int = 0,
    ):
        if not old_durations or not new_durations:
            raise ValueError("need non-empty duration distributions")
        self.old = np.asarray(old_durations)
        self.new = np.asarray(new_durations)
        self.deadline = deadline
        self.machines = machines
        self.tasks_per_machine_week = tasks_per_machine_week
        self.seed = seed

    def sample_failures(
        self,
        label: str,
        durations: Union[Sequence[float], np.ndarray],
        attempts: int,
    ) -> int:
        """Failure count for one cohort, drawn from the cohort's own stream.

        ``label`` names the cohort (``"week:3:old"``, or the fleet layer's
        ``"week:3:group:web:new"``); per-attempt lognormal jitter models
        machine-to-machine variance.
        """
        if attempts <= 0:
            return 0
        rng = rng_for(f"fleet:mc:{label}", self.seed)
        draws = rng.choice(np.asarray(durations), size=attempts)
        draws = draws * rng.lognormal(0.0, JITTER_SIGMA, size=attempts)
        return int(np.count_nonzero(draws > self.deadline))

    def run(self, migration_schedule: Sequence[float]) -> List[WeeklyReport]:
        """``migration_schedule[w]`` = fraction of machines on IOCost in week w."""
        reports = []
        for week, fraction in enumerate(migration_schedule):
            migrated = int(self.machines * min(1.0, max(0.0, fraction)))
            attempts = self.machines * self.tasks_per_machine_week
            failures = self.sample_failures(
                f"week:{week}:old",
                self.old,
                (self.machines - migrated) * self.tasks_per_machine_week,
            )
            failures += self.sample_failures(
                f"week:{week}:new",
                self.new,
                migrated * self.tasks_per_machine_week,
            )
            reports.append(WeeklyReport(week, fraction, attempts, failures))
        return reports
