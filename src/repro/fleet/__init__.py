"""Cluster-scale simulation: specs, scheduler, sharded execution, rollups.

The fleet layer turns the one-machine simulator into the paper's §4.8
setting — hundreds of hosts behind a placement/migration scheduler, run
through the :mod:`repro.exp` fork pool with content-addressed caching,
and rolled up into fleet-wide percentile dashboards.  See docs/FLEET.md.

Import surface (kept light — worker processes import submodules lazily):

* :mod:`repro.fleet.spec` — declarative cluster specs (TOML/JSON);
* :mod:`repro.fleet.scheduler` — bin-packing placement, consolidation /
  balancing, the staged IOLatency→IOCost rollout;
* :mod:`repro.fleet.experiments` — the per-host / per-sample experiment
  kinds and the nestable ``"fleet"`` kind;
* :mod:`repro.fleet.runner` — sharded execution + Figures 18/19 driver;
* :mod:`repro.fleet.rollup` — p99-of-p99 vs pooled-percentile rollups;
* :mod:`repro.fleet.cli` — ``python -m repro.fleet`` (run/status/rollup/
  migrate).
"""

from repro.fleet.spec import (
    FleetSpec,
    FleetSpecError,
    HostGroup,
    MigrationPlan,
    WorkloadTemplate,
    load_fleet_spec,
)

__all__ = [
    "FleetSpec",
    "FleetSpecError",
    "HostGroup",
    "MigrationPlan",
    "WorkloadTemplate",
    "load_fleet_spec",
]
