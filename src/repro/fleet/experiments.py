"""Experiment kinds for the fleet layer.

Three kinds, all plain ``fn(params, seed) -> result`` functions (the
:mod:`repro.exp` contract) so the fork pool can run them by dotted path
(``"repro.fleet.experiments.run_fleet_host"``) without pre-registration:

* ``run_fleet_host`` — **one host simulation**: the scheduler's per-host
  placement (cgroups + workload instances) run on that host's device and
  controller, reporting per-cgroup throughput/latency percentiles, the
  recursive ``io.stat`` snapshot, per-cgroup device-latency histograms
  (shipped via :meth:`repro.obs.metrics.Histogram.to_dict` so the fleet
  rollup can :meth:`~repro.obs.metrics.Histogram.merge` them), and the
  controller's mean vrate.
* ``run_fleet_task_durations`` — **one Figures 18/19 sample**: a machine
  simulation measuring how long a system task takes under a given
  controller (the :func:`repro.workloads.fleet.run_task_once` backend),
  sharded one sample per run so the pool parallelises and caches the
  expensive cells individually.
* ``run_fleet`` (registered as kind ``"fleet"``) — a whole fleet inline:
  schedule, simulate every host in-process, roll up.  This is the nestable
  form — a ``repro.exp`` sweep can grid over fleet seeds/policies — and it
  reuses the sharded path's per-host seed derivation, so its per-host
  results are identical to a pooled run of the same spec.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.controllers.base import IOController
from repro.controllers.iolatency import IOLatencyController
from repro.core.qos import QoSParams
from repro.exp.experiments import (
    ExperimentError,
    attach_workload,
    experiment,
)
from repro.exp.grid import expand
from repro.faults import plan_from_config
from repro.fleet.scheduler import FleetScheduler, group_capacities
from repro.fleet.spec import FleetSpec, device_spec_for, task_from_config
from repro.obs.metrics import Histogram
from repro.obs.trace import TRACE
from repro.testbed import Testbed, make_controller
from repro.workloads.fleet import rng_for, run_task_once

#: Bucket resolution of the per-cgroup latency histograms.  Fixed so every
#: host's histograms are mergeable fleet-wide (Histogram.merge requires it).
HIST_RESOLUTION = 0.02


def _qos(table: Optional[Mapping[str, Any]]) -> Optional[QoSParams]:
    if table is None:
        return None
    known = {f.name for f in dataclasses.fields(QoSParams)}
    unknown = set(table) - known
    if unknown:
        raise ExperimentError(f"unknown qos fields: {sorted(unknown)}")
    return QoSParams(**table)


def _idle_result(host: Mapping[str, Any], duration: float) -> Dict[str, Any]:
    return {
        "host": str(host.get("id", "")),
        "group": str(host.get("group", "")),
        "controller": str(host.get("controller", "iocost")),
        "duration": duration,
        "cgroups": {},
        "iostat": {},
        "latency_hist": {},
        "vrate_mean": None,
        "events_processed": 0,
    }


def run_fleet_host(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Simulate one fleet host: its placements on its device + controller.

    ``params["host"]`` (or ``params`` itself) is the host config the fleet
    runner generates::

        id, group              provenance (also salt the per-host seed)
        device, device_scale   catalogue name or inline DeviceSpec table
        controller             Table 1 name
        qos                    QoSParams fields (optional)
        faults                 repro.faults fault tables (optional)
        cgroups                {path: weight} from the placements
        workloads              [{cgroup, type, ...}] workload tables
        duration, percentiles  measurement window / reported percentiles
    """
    host = params.get("host", params)
    if not isinstance(host, Mapping):
        raise ExperimentError("fleet host params must be a mapping")
    duration = float(host.get("duration", 0.25))
    cgroup_table = host.get("cgroups") or {}
    workload_table = host.get("workloads") or []
    if not cgroup_table or not workload_table:
        # An idle host: nothing placed here.  Cheap and explicit.
        return _idle_result(host, duration)

    device = device_spec_for(host["device"], host.get("device_scale"))
    kwargs: Dict[str, Any] = {}
    qos = _qos(host.get("qos"))
    if qos is not None:
        kwargs["qos"] = qos
    fault_tables = host.get("faults")
    if fault_tables:
        kwargs["faults"] = plan_from_config(list(fault_tables))

    bed = Testbed(
        device=device,
        controller=str(host.get("controller", "iocost")),
        seed=seed,
        **kwargs,
    )
    groups = {
        path: bed.add_cgroup(path, weight=int(weight))
        for path, weight in cgroup_table.items()
    }
    for entry in workload_table:
        attach_workload(bed, groups, dict(entry), duration)

    hists = {
        path: Histogram(path, resolution=HIST_RESOLUTION) for path in groups
    }

    def on_complete(event: Any) -> None:
        fields = event.fields
        if fields["op"] != "read":
            return
        hist = hists.get(fields["cgroup"])
        if hist is not None:
            hist.record(float(fields["device_latency"]))

    subscription = TRACE.subscribe(on_complete, events=("bio_complete",))
    try:
        bed.run(duration)
    finally:
        subscription.close()
        bed.detach()

    percentiles = [float(p) for p in host.get("percentiles", [50, 95, 99])]
    cgroup_results: Dict[str, Any] = {}
    for path, group in groups.items():
        latencies: Dict[str, Optional[float]] = {}
        for pct in percentiles:
            value = bed.latency_percentile(group, pct)
            latencies[f"read_p{pct:g}"] = None if value is None else float(value)
        cgroup_results[path] = {"iops": float(bed.iops(group)), **latencies}

    from repro.obs.iostat import IOStat

    iostat = IOStat(bed.cgroups, controller=bed.controller).snapshot()

    vrate_mean: Optional[float] = None
    vrate_ctl = getattr(bed.controller, "vrate_ctl", None)
    if vrate_ctl is not None:
        values = vrate_ctl.vrate_series.slice(0.0, bed.sim.now)
        if values:
            vrate_mean = float(sum(values) / len(values))

    return {
        "host": str(host.get("id", "")),
        "group": str(host.get("group", "")),
        "controller": str(host.get("controller", "iocost")),
        "duration": duration,
        "cgroups": cgroup_results,
        "iostat": {
            path: {key: float(value) for key, value in entry.items()}
            for path, entry in iostat.items()
        },
        "latency_hist": {path: hist.to_dict() for path, hist in hists.items()},
        "vrate_mean": vrate_mean,
        "events_processed": int(bed.sim.events_processed),
    }


def _task_controller_factory(
    cell: Mapping[str, Any], device: Any
) -> Callable[[], IOController]:
    """Controller factory for a Figures 18/19 duration cell.

    Defaults mirror the paper's production tunings: IOCost with a relaxed
    5 ms p90 read target; IOLatency protecting the main workload at 0.5 ms
    with the system slices unprotected (which is exactly what starves
    them).
    """
    name = str(cell.get("controller", "iocost"))
    if name == "iolatency":
        targets = {
            str(path): float(target)
            for path, target in (
                cell.get("iolatency") or {"workload.slice/main": 0.5e-3}
            ).items()
        }
        return lambda: IOLatencyController(targets)
    qos = _qos(cell.get("qos"))
    if name == "iocost" and qos is None:
        qos = QoSParams(read_lat_target=5e-3, read_pct=90, period=0.05)
    return lambda: make_controller(name, device, qos=qos)


def run_fleet_task_durations(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Measure one system-task duration sample (Figures 18/19 backend).

    One cell = one (host group, controller, sample index) machine
    simulation, so the pool shards and caches the expensive simulations
    individually.  Streams are labeled per sample exactly like
    :func:`repro.workloads.fleet.measure_task_durations`.
    """
    cell = params.get("cell", params)
    if not isinstance(cell, Mapping):
        raise ExperimentError("fleet duration params must be a mapping")
    device = device_spec_for(cell["device"], cell.get("device_scale"))
    task = task_from_config(cell.get("task", "container_cleanup"))
    sample = int(cell.get("sample", 0))
    depth = int(rng_for(f"fleet:depth:{sample}", seed).integers(8, 64))
    run_seed = int(rng_for(f"fleet:sample:{sample}", seed).integers(1 << 62))
    duration_sec = run_task_once(
        device,
        _task_controller_factory(cell, device),
        task,
        workload_depth=depth,
        seed=run_seed,
        settle=float(cell.get("settle", 0.5)),
    )
    return {
        "group": str(cell.get("group", "")),
        "controller": str(cell.get("controller", "iocost")),
        "sample": sample,
        "task": task.name,
        "deadline": float(task.deadline),
        "workload_depth": depth,
        "duration_sec": float(duration_sec),
    }


@experiment("fleet")
def run_fleet(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """A whole fleet as one experiment cell: schedule, simulate, roll up.

    ``params["fleet"]`` is a fleet spec document
    (:meth:`repro.fleet.spec.FleetSpec.from_dict` shape); ``params["seed"]``
    (default: the cell seed) overrides the document seed so sweeps can grid
    over fleet seeds.  Hosts run serially in-process — use
    :func:`repro.fleet.runner.run_fleet_sweep` for the pooled form; both
    derive per-host seeds identically, so per-host results match
    byte-for-byte.
    """
    document = params.get("fleet")
    if not isinstance(document, Mapping):
        raise ExperimentError("fleet params need a 'fleet' spec document")
    document = dict(document)
    document["seed"] = int(params.get("seed", document.get("seed", seed)))
    spec = FleetSpec.from_dict(document)

    from repro.fleet.rollup import fleet_rollup
    from repro.fleet.runner import fleet_sweep_spec

    scheduler = FleetScheduler(spec, group_capacities(spec))
    scheduler.place()
    results: Dict[str, Dict[str, Any]] = {}
    for run in expand(fleet_sweep_spec(spec, scheduler)):
        result = run_fleet_host(run.params, run.derived_seed)
        results[result["host"]] = result
    plan = scheduler.plan()
    return {
        "fleet": spec.name,
        "fleet_hash": spec.fleet_hash,
        "hosts": len(plan["hosts"]),
        "plan": plan,
        "rollup": fleet_rollup(plan, results, spec.percentiles),
    }


__all__ = [
    "HIST_RESOLUTION",
    "run_fleet",
    "run_fleet_host",
    "run_fleet_task_durations",
]
