"""Module entry point: ``python -m repro.fleet``."""

from repro.fleet.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
