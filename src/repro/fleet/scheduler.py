"""The cluster scheduler: bin-packing placement, rebalancing, migration.

Places each workload instance of a :class:`~repro.fleet.spec.FleetSpec`
onto a host, packing against **profiled device capacity** (IOPS from
:func:`repro.core.profiler.profile_device`, or the spec's rated peak —
:func:`group_capacities`).  Three placement policies:

* ``first_fit``  — lowest-numbered host with room (classic bin-packing);
* ``best_fit``   — the fitting host left with the least headroom
  (tightest pack, frees whole hosts for consolidation);
* ``spread``     — a label-keyed random choice among fitting hosts
  (load-spreading à la rendezvous hashing).

Plus two Serifos-style rebalancing passes (:meth:`FleetScheduler.consolidate`
drains low-utilisation hosts onto busier ones; :meth:`FleetScheduler.balance`
narrows the utilisation spread), and the paper's §4.8 staged
IOLatency→IOCost rollout as a policy: :meth:`FleetScheduler.migration_order`
assigns every host a label-keyed random rank, and
:meth:`FleetScheduler.staged_controllers` migrates the first ``fraction``
of that order each week.

Determinism contract: hosts are created in sorted-group order (the spec
sorts its host table), every tie-break is by host ordinal, and every
random decision draws from a stream keyed by a *label* (placement unit or
host id) — never by iteration order.  Placements are therefore invariant
under host-table dict ordering, and a host's migration rank never changes
when other hosts are added or removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.profiler import profile_device
from repro.fleet.spec import FleetSpec, WorkloadTemplate, device_spec_for
from repro.workloads.fleet import rng_for


class SchedulerError(RuntimeError):
    """Raised for unplaceable specs or malformed scheduler state."""


#: Relative slack on capacity comparisons (floats from profiling).
_EPS = 1e-9


def group_capacities(
    spec: FleetSpec,
    read_duration: float = 0.05,
    write_duration: float = 0.1,
) -> Dict[str, float]:
    """Per-host IOPS capacity of every host group, by the spec's model.

    ``profiled`` runs :func:`repro.core.profiler.profile_device` on the
    group's device (once per group — hosts in a group are identical) and
    uses its random-read IOPS; ``rated`` trusts the catalogue spec's
    analytic peak.  An explicit ``capacity_iops`` on the group wins either
    way.  The profiling seed is drawn from a label-keyed stream, so a
    group's capacity never depends on which other groups exist.
    """
    capacities: Dict[str, float] = {}
    for group in spec.hosts:
        if group.capacity_iops is not None:
            capacities[group.name] = float(group.capacity_iops)
            continue
        device = device_spec_for(group.device, group.device_scale)
        if spec.capacity == "rated":
            capacities[group.name] = float(device.peak_rand_read_iops)
            continue
        profile_seed = int(
            rng_for(f"fleet:profile:{group.name}", spec.seed).integers(1 << 32)
        )
        profile = profile_device(
            device,
            seed=profile_seed,
            read_duration=read_duration,
            write_duration=write_duration,
        )
        capacities[group.name] = float(profile.rrandiops)
    return capacities


@dataclass
class Placement:
    """One workload instance pinned to a host."""

    workload: str
    instance: int
    cgroup: str
    weight: int
    demand_iops: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "instance": self.instance,
            "cgroup": self.cgroup,
            "weight": self.weight,
            "demand_iops": self.demand_iops,
        }


@dataclass
class Host:
    """One schedulable host: capacity, current placements, provenance."""

    id: str
    group: str
    order: int
    capacity_iops: float
    placements: List[Placement] = field(default_factory=list)
    oversubscribed: bool = False

    @property
    def load_iops(self) -> float:
        return sum(p.demand_iops for p in self.placements)

    @property
    def utilization(self) -> float:
        return self.load_iops / self.capacity_iops if self.capacity_iops else 0.0

    def fits(self, demand_iops: float) -> bool:
        return (
            self.load_iops + demand_iops
            <= self.capacity_iops * (1.0 + _EPS)
        )


@dataclass(frozen=True)
class Migration:
    """One workload move recorded by a rebalancing pass."""

    workload: str
    instance: int
    from_host: str
    to_host: str
    reason: str  # "consolidate" | "balance"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "instance": self.instance,
            "from": self.from_host,
            "to": self.to_host,
            "reason": self.reason,
        }


class FleetScheduler:
    """Places and migrates a :class:`FleetSpec`'s workloads across hosts."""

    def __init__(self, spec: FleetSpec, capacities: Dict[str, float]):
        self.spec = spec
        self.seed = spec.seed
        missing = [g.name for g in spec.hosts if g.name not in capacities]
        if missing:
            raise SchedulerError(f"no capacity for host group(s) {missing}")
        self.hosts: List[Host] = []
        order = 0
        for group in spec.hosts:  # already sorted by group name
            for index in range(group.count):
                self.hosts.append(
                    Host(
                        id=f"{group.name}/{index}",
                        group=group.name,
                        order=order,
                        capacity_iops=float(capacities[group.name]),
                    )
                )
                order += 1
        self._by_id = {host.id: host for host in self.hosts}
        self.migrations: List[Migration] = []
        self._placed = False

    def host(self, host_id: str) -> Host:
        try:
            return self._by_id[host_id]
        except KeyError:
            raise SchedulerError(f"no such host {host_id!r}") from None

    # -- placement -----------------------------------------------------------

    def place(self) -> List[Host]:
        """Place every workload instance; idempotent per scheduler."""
        if self._placed:
            return self.hosts
        for template in self.spec.workloads:
            for instance in range(template.count):
                self._place_unit(template, instance)
        self._placed = True
        return self.hosts

    def _place_unit(self, template: WorkloadTemplate, instance: int) -> None:
        demand = template.demand()
        cgroup = (
            template.cgroup
            if template.count == 1
            else f"{template.cgroup}-{instance}"
        )
        fitting = [host for host in self.hosts if host.fits(demand)]
        if not fitting:
            # Oversubscribe the least-utilised host rather than failing the
            # whole spec — the rollup flags these hosts.
            host = min(self.hosts, key=lambda h: (h.utilization, h.order))
            host.oversubscribed = True
        elif self.spec.policy == "first_fit":
            host = fitting[0]  # hosts stay in ordinal order
        elif self.spec.policy == "best_fit":
            host = min(
                fitting,
                key=lambda h: (h.capacity_iops - h.load_iops - demand, h.order),
            )
        else:  # spread
            rng = rng_for(f"fleet:place:{template.name}:{instance}", self.seed)
            host = fitting[int(rng.integers(len(fitting)))]
        host.placements.append(
            Placement(template.name, instance, cgroup, template.weight, demand)
        )

    # -- Serifos-style rebalancing -------------------------------------------

    def consolidate(self, low_util: float = 0.4, target_util: float = 0.9) -> List[Migration]:
        """Drain hosts below ``low_util`` onto busier hosts (bin-pack down).

        A donor host is emptied only if **every** placement finds a busier
        receiver that stays at or under ``target_util``; partial drains are
        rolled back, since a half-empty host frees nothing.  Returns (and
        records) the committed migrations.
        """
        moves: List[Migration] = []
        donors = sorted(
            (h for h in self.hosts if h.placements and h.utilization < low_util),
            key=lambda h: (h.utilization, h.order),
        )
        for donor in donors:
            staged: List[Migration] = []
            placed: List[Placement] = []
            for placement in list(donor.placements):
                receiver = self._receiver_for(donor, placement, target_util)
                if receiver is None:
                    break
                donor.placements.remove(placement)
                receiver.placements.append(placement)
                placed.append(placement)
                staged.append(
                    Migration(
                        placement.workload, placement.instance,
                        donor.id, receiver.id, "consolidate",
                    )
                )
            if donor.placements:  # partial drain: roll back
                for migration, placement in zip(staged, placed):
                    self.host(migration.to_host).placements.remove(placement)
                    donor.placements.append(placement)
            else:
                moves.extend(staged)
        self.migrations.extend(moves)
        return moves

    def _receiver_for(
        self, donor: Host, placement: Placement, target_util: float
    ) -> Optional[Host]:
        candidates = [
            h
            for h in self.hosts
            if h is not donor
            and h.utilization > donor.utilization
            and h.capacity_iops > 0
            and (h.load_iops + placement.demand_iops) / h.capacity_iops
            <= target_util * (1.0 + _EPS)
        ]
        if not candidates:
            return None
        # Busiest-first: pack the fullest receiver tighter.
        return max(candidates, key=lambda h: (h.utilization, -h.order))

    def balance(
        self, tolerance: float = 0.1, max_moves: Optional[int] = None
    ) -> List[Migration]:
        """Narrow the utilisation spread by moving work busiest → idlest.

        Greedy: repeatedly move the smallest placement off the busiest host
        onto the idlest host, while the move strictly helps and the spread
        exceeds ``tolerance``.  Returns (and records) the migrations.
        """
        if max_moves is None:
            max_moves = 4 * len(self.hosts)
        moves: List[Migration] = []
        for _ in range(max_moves):
            loaded = [h for h in self.hosts if h.placements]
            if not loaded:
                break
            busiest = max(loaded, key=lambda h: (h.utilization, -h.order))
            idlest = min(self.hosts, key=lambda h: (h.utilization, h.order))
            if busiest is idlest:
                break
            if busiest.utilization - idlest.utilization <= tolerance:
                break
            candidate = None
            for placement in sorted(
                busiest.placements,
                key=lambda p: (p.demand_iops, p.workload, p.instance),
            ):
                if idlest.capacity_iops <= 0:
                    break
                new_idle = (
                    idlest.load_iops + placement.demand_iops
                ) / idlest.capacity_iops
                if new_idle < busiest.utilization:
                    candidate = placement
                    break
            if candidate is None:
                break
            busiest.placements.remove(candidate)
            idlest.placements.append(candidate)
            moves.append(
                Migration(
                    candidate.workload, candidate.instance,
                    busiest.id, idlest.id, "balance",
                )
            )
        self.migrations.extend(moves)
        return moves

    # -- staged controller migration (paper §4.8) ----------------------------

    def migration_order(self) -> List[str]:
        """Host ids in rollout order: label-keyed random rank, tie by id.

        Each host's rank comes from its **own** stream
        (``fleet:migrate:<host id>``), so adding or removing hosts never
        reorders the survivors relative to each other.
        """
        ranks = {
            host.id: float(rng_for(f"fleet:migrate:{host.id}", self.seed).random())
            for host in self.hosts
        }
        return [
            host.id
            for host in sorted(self.hosts, key=lambda h: (ranks[h.id], h.id))
        ]

    def staged_controllers(
        self, fraction: float, from_controller: str, to_controller: str
    ) -> Dict[str, str]:
        """Per-host controller assignment at one rollout ``fraction``."""
        order = self.migration_order()
        migrated = int(min(1.0, max(0.0, fraction)) * len(order) + 0.5)
        assignment = {host_id: from_controller for host_id in order}
        for host_id in order[:migrated]:
            assignment[host_id] = to_controller
        return assignment

    # -- the placement plan (JSON-able) --------------------------------------

    def plan(self) -> Dict[str, Any]:
        """The whole placement as canonical-JSON-able data.

        This is what determinism tests compare: same spec → same plan,
        regardless of host-table ordering or worker counts.
        """
        return {
            "fleet": self.spec.name,
            "fleet_hash": self.spec.fleet_hash,
            "policy": self.spec.policy,
            "capacity": self.spec.capacity,
            "hosts": {
                host.id: {
                    "group": host.group,
                    "capacity_iops": host.capacity_iops,
                    "load_iops": host.load_iops,
                    "utilization": host.utilization,
                    "oversubscribed": host.oversubscribed,
                    "workloads": [p.to_dict() for p in host.placements],
                }
                for host in self.hosts
            },
            "migrations": [m.to_dict() for m in self.migrations],
        }


__all__ = [
    "FleetScheduler",
    "Host",
    "Migration",
    "Placement",
    "SchedulerError",
    "group_capacities",
]
