"""Declarative cluster specs: host groups, workload templates, migration.

A :class:`FleetSpec` is to a *cluster* what
:class:`repro.exp.spec.ExperimentSpec` is to a sweep: a TOML/JSON document
describing host groups (count, catalogue device, controller, optional
fault plans), the container-workload templates to place on them, the
scheduler policy, and — optionally — a staged controller migration
(the paper's §4.8 IOLatency→IOCost rollout).  The document form::

    name = "smoke-fleet"
    seed = 0
    policy = "first_fit"        # first_fit | best_fit | spread
    capacity = "profiled"       # profiled (core/profiler) | rated (spec peaks)
    duration = 0.2              # per-host measurement window, seconds

    [hosts.web]                 # one host group
    count = 6
    device = "ssd_new"          # catalogue name (repro.block.device_models)
    device_scale = 0.05
    controller = "iocost"

    [[workloads]]               # one workload template
    name = "frontend"
    count = 8
    cgroup = "workload.slice/fe"
    weight = 200
    type = "paced"
    rate = 2000                 # demand_iops defaults to rate for paced

    [migration]                 # optional staged migration (Figures 18/19)
    schedule = [0.0, 0.25, 0.5, 1.0]
    task = "container_cleanup"  # or an inline task table

Like experiment specs, fleet specs are content-addressed: ``fleet_hash``
digests the canonical document (name excluded), and each *host*'s resolved
parameters are hashed independently by the runner, which is what makes
unchanged hosts free on re-sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.block.bio import IOOp
from repro.block.device import DeviceSpec
from repro.block.device_models import get_device_spec
from repro.exp.spec import SpecError, canonical_json, content_hash, load_document
from repro.workloads.fleet import TASKS, SystemTask


class FleetSpecError(SpecError):
    """Raised for malformed fleet specs."""


#: Placement policies the scheduler implements (see repro.fleet.scheduler).
PLACEMENT_POLICIES = ("first_fit", "best_fit", "spread")

#: Capacity models: profile the device (core/profiler) or trust its spec.
CAPACITY_MODES = ("profiled", "rated")

#: Workload types the per-host experiment kind accepts (repro.exp testbed).
WORKLOAD_TYPES = ("saturate", "paced", "think_time", "latency_governed")


def _require(data: Mapping[str, Any], key: str, where: str) -> Any:
    if key not in data:
        raise FleetSpecError(f"{where} needs a {key!r}")
    return data[key]


def _check_known(data: Mapping[str, Any], known: Tuple[str, ...], where: str) -> None:
    unknown = set(data) - set(known)
    if unknown:
        raise FleetSpecError(f"unknown {where} keys: {sorted(unknown)}")


def device_spec_for(
    device: Union[str, Mapping[str, Any]],
    scale: Optional[float] = None,
) -> DeviceSpec:
    """Resolve a spec's ``device`` — catalogue name or inline table."""
    if isinstance(device, str):
        spec = get_device_spec(device)
    elif isinstance(device, Mapping):
        table = dict(device)
        table.setdefault("name", "inline")
        try:
            spec = DeviceSpec(**table)
        except TypeError as exc:
            raise FleetSpecError(f"bad inline device table: {exc}") from None
    else:
        raise FleetSpecError(
            f"device must be a catalogue name or a table, got {type(device).__name__}"
        )
    return spec if scale is None else spec.scaled(float(scale))


@dataclass(frozen=True)
class HostGroup:
    """One homogeneous set of hosts (a partition, in cluster-speak).

    ``device`` is a catalogue name (:mod:`repro.block.device_models`) or an
    inline :class:`~repro.block.device.DeviceSpec` field table — the latter
    is how the Figures 18/19 fleet device rides through the scheduler.
    """

    name: str
    count: int
    device: Union[str, Dict[str, Any]]
    device_scale: Optional[float] = None
    controller: str = "iocost"
    qos: Optional[Dict[str, Any]] = None
    faults: Tuple[Dict[str, Any], ...] = ()
    capacity_iops: Optional[float] = None  # explicit override, skips profiling

    def __post_init__(self) -> None:
        if not self.name:
            raise FleetSpecError("host groups need a non-empty name")
        if self.count < 1:
            raise FleetSpecError(f"host group {self.name!r}: count must be >= 1")
        if self.capacity_iops is not None and self.capacity_iops <= 0:
            raise FleetSpecError(
                f"host group {self.name!r}: capacity_iops must be positive"
            )
        try:
            device_spec_for(self.device, self.device_scale)
        except FleetSpecError:
            raise
        except Exception as exc:
            raise FleetSpecError(
                f"host group {self.name!r}: bad device {self.device!r}: {exc}"
            ) from None

    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, Any]) -> "HostGroup":
        _check_known(
            data,
            ("count", "device", "device_scale", "controller", "qos", "faults",
             "capacity_iops"),
            f"host group {name!r}",
        )
        scale = data.get("device_scale")
        capacity = data.get("capacity_iops")
        device = _require(data, "device", f"host group {name!r}")
        return cls(
            name=name,
            count=int(_require(data, "count", f"host group {name!r}")),
            device=device if isinstance(device, str) else dict(device),
            device_scale=None if scale is None else float(scale),
            controller=str(data.get("controller", "iocost")),
            qos=dict(data["qos"]) if data.get("qos") is not None else None,
            faults=tuple(dict(f) for f in data.get("faults", ())),
            capacity_iops=None if capacity is None else float(capacity),
        )

    def to_dict(self) -> Dict[str, Any]:
        device = self.device if isinstance(self.device, str) else dict(self.device)
        out: Dict[str, Any] = {"count": self.count, "device": device}
        if self.device_scale is not None:
            out["device_scale"] = self.device_scale
        out["controller"] = self.controller
        if self.qos is not None:
            out["qos"] = dict(self.qos)
        if self.faults:
            out["faults"] = [dict(f) for f in self.faults]
        if self.capacity_iops is not None:
            out["capacity_iops"] = self.capacity_iops
        return out


@dataclass(frozen=True)
class WorkloadTemplate:
    """One container workload class, instantiated ``count`` times."""

    name: str
    count: int
    cgroup: str
    weight: int = 100
    type: str = "saturate"
    demand_iops: Optional[float] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise FleetSpecError("workload templates need a non-empty name")
        if self.count < 1:
            raise FleetSpecError(f"workload {self.name!r}: count must be >= 1")
        if not self.cgroup:
            raise FleetSpecError(f"workload {self.name!r} needs a cgroup path")
        if self.type not in WORKLOAD_TYPES:
            raise FleetSpecError(
                f"workload {self.name!r}: unknown type {self.type!r} "
                f"(want one of {WORKLOAD_TYPES})"
            )
        if self.demand() <= 0:
            raise FleetSpecError(
                f"workload {self.name!r} needs a positive demand_iops "
                "(defaults to 'rate' for paced workloads)"
            )

    def demand(self) -> float:
        """IOPS demand used for bin-packing (defaults to ``rate`` if paced)."""
        if self.demand_iops is not None:
            return float(self.demand_iops)
        if self.type == "paced":
            return float(self.params.get("rate", 0.0))
        return 0.0

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadTemplate":
        data = dict(data)
        name = str(_require(data, "name", "workload template"))
        demand = data.pop("demand_iops", None)
        return cls(
            name=name,
            count=int(data.pop("count", 1)),
            cgroup=str(_require(data, "cgroup", f"workload {name!r}")),
            weight=int(data.pop("weight", 100)),
            type=str(data.pop("type", "saturate")),
            demand_iops=None if demand is None else float(demand),
            params={
                key: value
                for key, value in data.items()
                if key not in ("name", "cgroup")
            },
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "count": self.count,
            "cgroup": self.cgroup,
            "weight": self.weight,
            "type": self.type,
        }
        if self.demand_iops is not None:
            out["demand_iops"] = self.demand_iops
        out.update(self.params)
        return out


def task_from_config(value: Union[str, Mapping[str, Any]]) -> SystemTask:
    """Resolve a migration task: a catalogue name or an inline table."""
    if isinstance(value, str):
        try:
            return TASKS[value]
        except KeyError:
            raise FleetSpecError(
                f"unknown system task {value!r} (have {sorted(TASKS)})"
            ) from None
    if not isinstance(value, Mapping):
        raise FleetSpecError("migration task must be a name or a table")
    _check_known(
        value,
        ("name", "cgroup", "seq_write_bytes", "small_ios", "small_io_size",
         "op", "deadline"),
        "migration task",
    )
    op_name = str(value.get("op", "write"))
    try:
        op = IOOp(op_name)
    except ValueError:
        raise FleetSpecError(f"migration task op {op_name!r} must be read|write") from None
    return SystemTask(
        name=str(_require(value, "name", "migration task")),
        cgroup_path=str(value.get("cgroup", "system.slice")),
        seq_write_bytes=int(value.get("seq_write_bytes", 0)),
        small_ios=int(value.get("small_ios", 0)),
        small_io_size=int(value.get("small_io_size", 4096)),
        small_io_op=op,
        deadline=float(_require(value, "deadline", "migration task")),
    )


@dataclass(frozen=True)
class MigrationPlan:
    """A staged controller rollout across the fleet (paper §4.8).

    ``schedule[w]`` is the fraction of hosts running ``to_controller`` in
    week ``w``; the scheduler picks *which* hosts from a label-keyed
    migration order.  Task durations under each controller are measured by
    the :mod:`repro.workloads.fleet` backend (``samples`` machine
    simulations per (host group, controller) cell, sharded and cached like
    any other run), then the weekly failure Monte Carlo draws from them.
    """

    schedule: Tuple[float, ...]
    task: Union[str, Dict[str, Any]] = "container_cleanup"
    from_controller: str = "iolatency"
    to_controller: str = "iocost"
    tasks_per_host_week: int = 20
    samples: int = 8
    settle: float = 0.5
    iolatency: Dict[str, float] = field(default_factory=dict)
    qos: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if not self.schedule:
            raise FleetSpecError("migration needs a non-empty schedule")
        for fraction in self.schedule:
            if not 0.0 <= fraction <= 1.0:
                raise FleetSpecError(
                    f"migration fractions must be in [0, 1], got {fraction}"
                )
        if self.samples < 1:
            raise FleetSpecError("migration samples must be >= 1")
        if self.tasks_per_host_week < 1:
            raise FleetSpecError("tasks_per_host_week must be >= 1")
        task_from_config(self.task)  # validate early

    def system_task(self) -> SystemTask:
        return task_from_config(self.task)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MigrationPlan":
        _check_known(
            data,
            ("schedule", "task", "from_controller", "to_controller",
             "tasks_per_host_week", "samples", "settle", "iolatency", "qos"),
            "migration",
        )
        task: Union[str, Dict[str, Any]]
        raw_task = data.get("task", "container_cleanup")
        task = raw_task if isinstance(raw_task, str) else dict(raw_task)
        return cls(
            schedule=tuple(float(f) for f in _require(data, "schedule", "migration")),
            task=task,
            from_controller=str(data.get("from_controller", "iolatency")),
            to_controller=str(data.get("to_controller", "iocost")),
            tasks_per_host_week=int(data.get("tasks_per_host_week", 20)),
            samples=int(data.get("samples", 8)),
            settle=float(data.get("settle", 0.5)),
            iolatency={
                str(path): float(target)
                for path, target in dict(data.get("iolatency", {})).items()
            },
            qos=dict(data["qos"]) if data.get("qos") is not None else None,
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schedule": list(self.schedule),
            "task": self.task if isinstance(self.task, str) else dict(self.task),
            "from_controller": self.from_controller,
            "to_controller": self.to_controller,
            "tasks_per_host_week": self.tasks_per_host_week,
            "samples": self.samples,
            "settle": self.settle,
        }
        if self.iolatency:
            out["iolatency"] = dict(self.iolatency)
        if self.qos is not None:
            out["qos"] = dict(self.qos)
        return out


@dataclass(frozen=True)
class FleetSpec:
    """One declarative cluster: host groups + workloads + policy (+ migration)."""

    name: str
    hosts: Tuple[HostGroup, ...]
    workloads: Tuple[WorkloadTemplate, ...] = ()
    seed: int = 0
    policy: str = "first_fit"
    capacity: str = "profiled"
    duration: float = 0.25
    percentiles: Tuple[float, ...] = (50.0, 95.0, 99.0)
    migration: Optional[MigrationPlan] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise FleetSpecError("fleet spec needs a non-empty name")
        if not self.hosts:
            raise FleetSpecError("fleet spec needs at least one host group")
        if not isinstance(self.seed, int):
            raise FleetSpecError("seed must be an int")
        if self.policy not in PLACEMENT_POLICIES:
            raise FleetSpecError(
                f"unknown policy {self.policy!r} (want one of {PLACEMENT_POLICIES})"
            )
        if self.capacity not in CAPACITY_MODES:
            raise FleetSpecError(
                f"unknown capacity mode {self.capacity!r} "
                f"(want one of {CAPACITY_MODES})"
            )
        if self.duration <= 0:
            raise FleetSpecError("duration must be positive")
        names = [group.name for group in self.hosts]
        if len(set(names)) != len(names):
            raise FleetSpecError(f"duplicate host group names: {names}")
        wl_names = [template.name for template in self.workloads]
        if len(set(wl_names)) != len(wl_names):
            raise FleetSpecError(f"duplicate workload names: {wl_names}")
        # Fail early if any part cannot be content-addressed.
        canonical_json(self.to_dict())

    @property
    def host_count(self) -> int:
        return sum(group.count for group in self.hosts)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetSpec":
        if not isinstance(data, Mapping):
            raise FleetSpecError(
                f"fleet document must be a mapping, got {type(data).__name__}"
            )
        _check_known(
            data,
            ("name", "seed", "policy", "capacity", "duration", "percentiles",
             "hosts", "workloads", "migration"),
            "fleet spec",
        )
        host_table = _require(data, "hosts", "fleet spec")
        if not isinstance(host_table, Mapping) or not host_table:
            raise FleetSpecError("'hosts' must be a non-empty {name: group} table")
        groups = tuple(
            HostGroup.from_dict(str(name), group)
            for name, group in sorted(host_table.items())
        )
        workload_list = data.get("workloads", [])
        if not isinstance(workload_list, (list, tuple)):
            raise FleetSpecError("'workloads' must be a list of templates")
        templates = tuple(WorkloadTemplate.from_dict(entry) for entry in workload_list)
        migration = data.get("migration")
        return cls(
            name=str(_require(data, "name", "fleet spec")),
            hosts=groups,
            workloads=templates,
            seed=int(data.get("seed", 0)),
            policy=str(data.get("policy", "first_fit")),
            capacity=str(data.get("capacity", "profiled")),
            duration=float(data.get("duration", 0.25)),
            percentiles=tuple(float(p) for p in data.get("percentiles", (50, 95, 99))),
            migration=None if migration is None else MigrationPlan.from_dict(migration),
        )

    def to_dict(self) -> Dict[str, Any]:
        """The round-trippable document form."""
        out: Dict[str, Any] = {
            "name": self.name,
            "seed": self.seed,
            "policy": self.policy,
            "capacity": self.capacity,
            "duration": self.duration,
            "percentiles": list(self.percentiles),
            "hosts": {group.name: group.to_dict() for group in self.hosts},
            "workloads": [template.to_dict() for template in self.workloads],
        }
        if self.migration is not None:
            out["migration"] = self.migration.to_dict()
        return out

    @property
    def fleet_hash(self) -> str:
        """Content hash of the whole cluster (name excluded, like sweeps)."""
        doc = self.to_dict()
        del doc["name"]
        return content_hash(doc)

    def group(self, name: str) -> HostGroup:
        for candidate in self.hosts:
            if candidate.name == name:
                return candidate
        raise FleetSpecError(f"no host group {name!r}")


def load_fleet_spec(path: Union[str, Path]) -> FleetSpec:
    """Load a fleet spec from a ``.toml`` or ``.json`` document."""
    return FleetSpec.from_dict(load_document(path))


__all__ = [
    "CAPACITY_MODES",
    "FleetSpec",
    "FleetSpecError",
    "HostGroup",
    "MigrationPlan",
    "PLACEMENT_POLICIES",
    "WORKLOAD_TYPES",
    "WorkloadTemplate",
    "device_spec_for",
    "load_fleet_spec",
    "task_from_config",
]
