"""``python -m repro.fleet`` — run, inspect, and roll up fleet simulations.

Four subcommands over one artifact store (shared with ``repro.exp`` —
fleet host runs are ordinary content-addressed runs):

* ``run SPEC`` — place the fleet, shard host simulations across the
  worker pool, write ``fleet_rollup.json`` + ``fleet_plan.json``, and
  append a schema-versioned entry to the ``BENCH_fleet.json`` trajectory
  (hosts/sec).  ``--min-hit-rate`` turns the cache hit rate into an exit
  code for CI's run-twice check.
* ``status SPEC`` — per-host cache verdicts without executing anything.
* ``rollup SPEC`` — recompute the rollup from cached host results only.
* ``migrate SPEC`` — the Figures 18/19 staged-migration reproduction;
  writes ``fleet_migration.json`` and prints the weekly failure table.

Like ``repro.exp.cli``, this front-end is the only wall-clock consumer in
the package: it injects the real clock into the clock-free runner.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.report import Table
from repro.exp.cache import ResultCache
from repro.exp.cli import wall_clock
from repro.exp.grid import expand
from repro.exp.spec import SpecError, canonical_json
from repro.exp.store import ArtifactStore
from repro.fleet.rollup import fleet_rollup
from repro.fleet.runner import (
    FleetReport,
    FleetRunnerError,
    MigrationReport,
    fleet_sweep_spec,
    run_fleet_sweep,
    run_staged_migration,
)
from repro.fleet.scheduler import FleetScheduler, group_capacities
from repro.fleet.spec import FleetSpec, load_fleet_spec

ROLLUP_FILE = "fleet_rollup.json"
PLAN_FILE = "fleet_plan.json"
MIGRATION_FILE = "fleet_migration.json"
BENCH_FILE = "BENCH_fleet.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.fleet",
        description="Cluster-scale simulation: run, status, rollup, migrate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("spec", help="path to a .toml or .json fleet spec")
        cmd.add_argument(
            "--out", default=".",
            help="artifact store root (host runs land under <out>/runs/)",
        )

    run_cmd = sub.add_parser("run", help="simulate the fleet (cache-aware)")
    common(run_cmd)
    run_cmd.add_argument("--workers", type=int, default=1)
    run_cmd.add_argument(
        "--force", action="store_true", help="re-simulate every host"
    )
    run_cmd.add_argument("--retries", type=int, default=1)
    run_cmd.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="per-host wall-clock limit (expired hosts are killed)",
    )
    run_cmd.add_argument(
        "--policy-pass", action="append", default=[],
        choices=["consolidate", "balance"], dest="policy_passes",
        help="rebalancing pass(es) applied after placement, in order",
    )
    run_cmd.add_argument(
        "--bench-json", default=None,
        help=f"trajectory path to append to (default <out>/{BENCH_FILE})",
    )
    run_cmd.add_argument(
        "--min-hit-rate", type=float, default=None,
        help="exit non-zero unless cache hit rate >= this fraction",
    )
    run_cmd.add_argument("--quiet", action="store_true")

    status_cmd = sub.add_parser("status", help="per-host cache verdicts")
    common(status_cmd)

    rollup_cmd = sub.add_parser(
        "rollup", help="recompute the rollup from cached host results"
    )
    common(rollup_cmd)
    rollup_cmd.add_argument(
        "--output", default=None, help="write here instead of stdout"
    )

    migrate_cmd = sub.add_parser(
        "migrate", help="staged-migration reproduction (Figures 18/19)"
    )
    common(migrate_cmd)
    migrate_cmd.add_argument("--workers", type=int, default=1)
    migrate_cmd.add_argument("--force", action="store_true")
    migrate_cmd.add_argument("--retries", type=int, default=1)
    migrate_cmd.add_argument(
        "--timeout", type=float, default=None, metavar="SEC"
    )
    migrate_cmd.add_argument("--quiet", action="store_true")
    return parser


def _load(path: str) -> FleetSpec:
    try:
        return load_fleet_spec(path)
    except SpecError as exc:
        raise SystemExit(f"repro.fleet: {exc}")


def _write_json(path: Path, payload: Any) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(canonical_json(payload) + "\n")
    tmp.replace(path)
    return path


def append_bench_entry(path: Path, entry: Dict[str, Any]) -> Path:
    """Append one entry to a trajectory file (a JSON list, like
    ``BENCH_engine.json``)."""
    history: List[Any] = []
    if path.is_file():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, list):
                history = loaded
        except json.JSONDecodeError:
            history = []
    history.append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)
    return path


def _print_fleet_report(report: FleetReport) -> None:
    table = Table(
        f"Fleet {report.fleet} [{report.fleet_hash}] — "
        f"{report.hosts_total} hosts, {report.sweep.workers} worker(s)",
        ["host", "status", "source", "wall"],
    )
    for outcome in report.sweep.outcomes:
        host = outcome.run.params["host"]
        table.add_row(
            host["id"],
            outcome.status,
            "cache" if outcome.cached else "executed",
            f"{outcome.wall_sec:.2f}s",
        )
    table.print()
    rate = report.hosts_per_sec
    print(
        f"\n{report.sweep.runs_total} hosts: {report.sweep.cache_hits} cached, "
        f"{report.sweep.executed} executed, {report.sweep.failures} failed; "
        f"elapsed {report.sweep.elapsed_wall_sec:.2f}s"
        + (f", {rate:.1f} hosts/s" if rate is not None else "")
    )


def _print_migration_report(report: MigrationReport) -> None:
    table = Table(
        f"Staged migration {report.from_controller} -> {report.to_controller} "
        f"({report.task}, deadline {report.deadline:g}s)",
        ["week", "scheduled", "hosts migrated", "attempts", "failures", "rate"],
    )
    for week in report.weeks:
        table.add_row(
            week.week,
            f"{week.scheduled_fraction:.0%}",
            week.migrated_hosts,
            week.attempts,
            week.failures,
            f"{week.failure_rate:.2%}",
        )
    table.print()


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load(args.spec)
    store = ArtifactStore(args.out)
    try:
        report = run_fleet_sweep(
            spec,
            store,
            workers=args.workers,
            clock=wall_clock,
            force=args.force,
            retries=args.retries,
            timeout_sec=args.timeout,
            policies=tuple(args.policy_passes),
        )
    except FleetRunnerError as exc:
        raise SystemExit(f"repro.fleet: {exc}")
    rollup_path = _write_json(store.root / ROLLUP_FILE, report.rollup)
    _write_json(store.root / PLAN_FILE, report.plan)
    bench_path = append_bench_entry(
        Path(args.bench_json) if args.bench_json else store.root / BENCH_FILE,
        report.to_bench_dict(),
    )
    if not args.quiet:
        _print_fleet_report(report)
        print(f"rollup: {rollup_path}")
        print(f"trajectory: {bench_path}")
    if report.sweep.failures:
        return 1
    if (
        args.min_hit_rate is not None
        and report.sweep.hit_rate < args.min_hit_rate
    ):
        print(
            f"cache hit rate {report.sweep.hit_rate:.0%} below required "
            f"{args.min_hit_rate:.0%}"
        )
        return 1
    return 0


def _scheduled(spec: FleetSpec) -> FleetScheduler:
    scheduler = FleetScheduler(spec, group_capacities(spec))
    scheduler.place()
    return scheduler


def _cmd_status(args: argparse.Namespace) -> int:
    spec = _load(args.spec)
    store = ArtifactStore(args.out)
    cache = ResultCache(store)
    scheduler = _scheduled(spec)
    table = Table(
        f"Fleet {spec.name} [{spec.fleet_hash}] — cache status",
        ["host", "run", "verdict"],
    )
    hits = 0
    runs = expand(fleet_sweep_spec(spec, scheduler))
    for run in runs:
        decision = cache.lookup(run)
        hits += 1 if decision.hit else 0
        table.add_row(
            run.params["host"]["id"],
            run.run_hash,
            "cached" if decision.hit else f"pending ({decision.reason})",
        )
    table.print()
    print(f"\n{hits}/{len(runs)} hosts cached")
    return 0


def _cmd_rollup(args: argparse.Namespace) -> int:
    spec = _load(args.spec)
    store = ArtifactStore(args.out)
    cache = ResultCache(store)
    scheduler = _scheduled(spec)
    results: Dict[str, Dict[str, Any]] = {}
    for run in expand(fleet_sweep_spec(spec, scheduler)):
        decision = cache.lookup(run)
        if decision.hit and decision.result is not None:
            results[str(run.params["host"]["id"])] = decision.result
    rollup = fleet_rollup(scheduler.plan(), results, spec.percentiles)
    document = canonical_json(rollup)
    if args.output:
        _write_json(Path(args.output), rollup)
    else:
        print(document)
    missing = rollup["hosts"]["missing"]
    if missing:
        print(f"repro.fleet: {len(missing)} host(s) not cached yet")
        return 1
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    spec = _load(args.spec)
    store = ArtifactStore(args.out)
    try:
        report = run_staged_migration(
            spec,
            store,
            workers=args.workers,
            clock=wall_clock,
            force=args.force,
            retries=args.retries,
            timeout_sec=args.timeout,
        )
    except FleetRunnerError as exc:
        raise SystemExit(f"repro.fleet: {exc}")
    path = _write_json(store.root / MIGRATION_FILE, report.to_dict())
    if not args.quiet:
        _print_migration_report(report)
        print(f"\nmigration report: {path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(
        list(argv) if argv is not None else None
    )
    handlers = {
        "run": _cmd_run,
        "status": _cmd_status,
        "rollup": _cmd_rollup,
        "migrate": _cmd_migrate,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # stdout piped into a pager/head that quit
        return 0


__all__ = [
    "BENCH_FILE",
    "MIGRATION_FILE",
    "PLAN_FILE",
    "ROLLUP_FILE",
    "append_bench_entry",
    "build_parser",
    "main",
]


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
