"""Fleet execution: shard host simulations across the repro.exp pool.

The fleet layer does not grow its own executor.  A fleet run is compiled
into an ordinary :class:`repro.exp.spec.ExperimentSpec` — one zip-axis
cell per host, the kind given by dotted path so any worker process can
resolve it — and handed to :func:`repro.exp.runner.run_sweep`.  Everything
the sweep runner guarantees is therefore inherited wholesale:

* **content-addressed caching** — a host cell's hash covers its device,
  controller, placements and seed, so re-running a fleet after editing one
  host group re-simulates only that group's hosts (unchanged hosts are
  cache hits);
* **per-host deterministic seeds** — each host's RNG entropy derives from
  its cell content (:attr:`repro.exp.grid.RunSpec.derived_seed`), never
  from scheduling;
* **worker-count independence** — ``result.json`` bytes, and therefore
  rollup bytes, are identical for 1 worker and 8.

:func:`run_staged_migration` drives the Figures 18/19 reproduction the
same way: the per-(group, controller, sample) task-duration simulations
are sharded through the pool, then the weekly region Monte Carlo draws
from :class:`repro.workloads.fleet.FleetMigration`'s label-keyed streams
using the scheduler's staged rollout assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.exp.runner import Clock, SweepReport, run_sweep
from repro.exp.spec import ExperimentSpec
from repro.exp.store import ArtifactStore
from repro.fleet.rollup import fleet_rollup
from repro.fleet.scheduler import FleetScheduler, group_capacities
from repro.fleet.spec import FleetSpec, MigrationPlan
from repro.workloads.fleet import FleetMigration

#: Dotted-path kinds: resolvable in any worker without pre-registration.
HOST_KIND = "repro.fleet.experiments.run_fleet_host"
TASK_KIND = "repro.fleet.experiments.run_fleet_task_durations"

#: Fleet bench-trajectory schema (``BENCH_fleet.json`` entries).
BENCH_SCHEMA = "repro.fleet.bench/1"

#: Rebalancing passes ``run_fleet_sweep`` knows how to apply, in order.
POLICY_PASSES = ("consolidate", "balance")


class FleetRunnerError(RuntimeError):
    """Raised for unrunnable fleet configurations."""


def host_params(spec: FleetSpec, scheduler: FleetScheduler) -> List[Dict[str, Any]]:
    """One self-contained param dict per host, in host-ordinal order.

    Each dict fully determines its host's simulation — the content hash
    and derived seed digest it — and carries the host id, so two
    otherwise-identical hosts still get distinct seeds (per-host variance,
    as in a real fleet).
    """
    groups = {group.name: group for group in spec.hosts}
    params: List[Dict[str, Any]] = []
    for host in scheduler.hosts:
        group = groups[host.group]
        entry: Dict[str, Any] = {
            "id": host.id,
            "group": host.group,
            "device": group.device,
            "controller": group.controller,
            "duration": spec.duration,
            "percentiles": list(spec.percentiles),
            "cgroups": {p.cgroup: p.weight for p in host.placements},
            "workloads": [
                {
                    "cgroup": p.cgroup,
                    "type": _template(spec, p.workload).type,
                    **_template(spec, p.workload).params,
                }
                for p in host.placements
            ],
        }
        if group.device_scale is not None:
            entry["device_scale"] = group.device_scale
        if group.qos is not None:
            entry["qos"] = dict(group.qos)
        if group.faults:
            entry["faults"] = [dict(f) for f in group.faults]
        params.append(entry)
    return params


def _template(spec: FleetSpec, name: str) -> Any:
    for template in spec.workloads:
        if template.name == name:
            return template
    raise FleetRunnerError(f"placement references unknown workload {name!r}")


def fleet_sweep_spec(
    spec: FleetSpec,
    scheduler: FleetScheduler,
    controllers: Optional[Dict[str, str]] = None,
) -> ExperimentSpec:
    """Compile a placed fleet into a one-cell-per-host experiment sweep.

    ``controllers`` optionally overrides the per-host controller — this is
    how the staged-migration policy runs a mixed fleet (some hosts on the
    old stack, some on the new) through the same pipeline.
    """
    hosts = host_params(spec, scheduler)
    if controllers is not None:
        for entry in hosts:
            override = controllers.get(entry["id"])
            if override is not None:
                entry["controller"] = override
    return ExperimentSpec(
        name=f"{spec.name}:hosts",
        kind=HOST_KIND,
        base={},
        zip_axes={"host": tuple(hosts)},
        seed=spec.seed,
    )


@dataclass
class FleetReport:
    """One fleet run: the placement plan, the sweep, and the rollup."""

    fleet: str
    fleet_hash: str
    plan: Dict[str, Any]
    sweep: SweepReport
    rollup: Dict[str, Any]
    results: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def hosts_total(self) -> int:
        return len(self.plan.get("hosts", {}))

    @property
    def hosts_per_sec(self) -> Optional[float]:
        """Executed host simulations per wall second (cache hits excluded)."""
        if self.sweep.elapsed_wall_sec <= 0 or self.sweep.executed == 0:
            return None
        return self.sweep.executed / self.sweep.elapsed_wall_sec

    def to_bench_dict(self) -> Dict[str, Any]:
        """One ``BENCH_fleet.json`` trajectory entry (schema-versioned)."""
        return {
            "schema": BENCH_SCHEMA,
            "fleet": self.fleet,
            "fleet_hash": self.fleet_hash,
            "version": self.sweep.version,
            "workers": self.sweep.workers,
            "hosts": self.hosts_total,
            "executed": self.sweep.executed,
            "cache_hits": self.sweep.cache_hits,
            "cache_hit_rate": self.sweep.hit_rate,
            "failures": self.sweep.failures,
            "elapsed_wall_sec": self.sweep.elapsed_wall_sec,
            "hosts_per_sec": self.hosts_per_sec,
        }


def run_fleet_sweep(
    spec: FleetSpec,
    store: Union[ArtifactStore, str, Path],
    workers: int = 1,
    clock: Optional[Clock] = None,
    force: bool = False,
    retries: int = 1,
    timeout_sec: Optional[float] = None,
    policies: Tuple[str, ...] = (),
) -> FleetReport:
    """Place the fleet, shard host simulations over the pool, roll up.

    ``policies`` optionally applies rebalancing passes between placement
    and execution, in order — any of :data:`POLICY_PASSES`.
    """
    unknown = [p for p in policies if p not in POLICY_PASSES]
    if unknown:
        raise FleetRunnerError(
            f"unknown rebalancing pass(es) {unknown} (want {POLICY_PASSES})"
        )
    scheduler = FleetScheduler(spec, group_capacities(spec))
    scheduler.place()
    for policy in policies:
        if policy == "consolidate":
            scheduler.consolidate()
        else:
            scheduler.balance()
    sweep = run_sweep(
        fleet_sweep_spec(spec, scheduler),
        store,
        workers=workers,
        clock=clock,
        force=force,
        retries=retries,
        timeout_sec=timeout_sec,
    )
    results = {
        str(outcome.run.params["host"]["id"]): outcome.result
        for outcome in sweep.outcomes
        if outcome.ok and outcome.result is not None
    }
    plan = scheduler.plan()
    return FleetReport(
        fleet=spec.name,
        fleet_hash=spec.fleet_hash,
        plan=plan,
        sweep=sweep,
        rollup=fleet_rollup(plan, results, spec.percentiles),
        results=results,
    )


# -- the staged migration policy (Figures 18/19) ------------------------------


@dataclass
class MigrationWeek:
    """One week of the staged rollout: who migrated, what failed."""

    week: int
    scheduled_fraction: float
    migrated_hosts: int
    attempts: int
    failures: int

    @property
    def failure_rate(self) -> float:
        return self.failures / self.attempts if self.attempts else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "week": self.week,
            "scheduled_fraction": self.scheduled_fraction,
            "migrated_hosts": self.migrated_hosts,
            "attempts": self.attempts,
            "failures": self.failures,
            "failure_rate": self.failure_rate,
        }


@dataclass
class MigrationReport:
    """The Figures 18/19 reproduction: durations + weekly failure curve."""

    fleet: str
    task: str
    deadline: float
    from_controller: str
    to_controller: str
    durations: Dict[str, List[float]]
    weeks: List[MigrationWeek]
    sweep: SweepReport

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.fleet.migration/1",
            "fleet": self.fleet,
            "task": self.task,
            "deadline": self.deadline,
            "from_controller": self.from_controller,
            "to_controller": self.to_controller,
            "durations": {key: list(values) for key, values in self.durations.items()},
            "weeks": [week.to_dict() for week in self.weeks],
        }


def duration_cells(spec: FleetSpec, plan: MigrationPlan) -> List[Dict[str, Any]]:
    """One sweep cell per (host group, controller, sample index)."""
    cells: List[Dict[str, Any]] = []
    for group in spec.hosts:
        for controller in (plan.from_controller, plan.to_controller):
            for sample in range(plan.samples):
                cell: Dict[str, Any] = {
                    "id": f"{group.name}:{controller}:{sample}",
                    "group": group.name,
                    "device": group.device,
                    "controller": controller,
                    "task": (
                        plan.task
                        if isinstance(plan.task, str)
                        else dict(plan.task)
                    ),
                    "sample": sample,
                    "settle": plan.settle,
                }
                if group.device_scale is not None:
                    cell["device_scale"] = group.device_scale
                if plan.iolatency and controller == "iolatency":
                    cell["iolatency"] = dict(plan.iolatency)
                if plan.qos is not None and controller == "iocost":
                    cell["qos"] = dict(plan.qos)
                cells.append(cell)
    return cells


def run_staged_migration(
    spec: FleetSpec,
    store: Union[ArtifactStore, str, Path],
    workers: int = 1,
    clock: Optional[Clock] = None,
    force: bool = False,
    retries: int = 1,
    timeout_sec: Optional[float] = None,
) -> MigrationReport:
    """Reproduce Figures 18/19 through the scheduler's rollout policy.

    Per-(group, controller) task-duration distributions are measured by
    sharded, cached machine simulations; the scheduler's label-keyed
    migration order decides **which** hosts are on the new stack each
    week; the weekly failure Monte Carlo draws every (week, group, cohort)
    from its own labeled substream.
    """
    plan = spec.migration
    if plan is None:
        raise FleetRunnerError(
            f"fleet spec {spec.name!r} has no [migration] section"
        )
    task = plan.system_task()
    sweep_spec = ExperimentSpec(
        name=f"{spec.name}:durations",
        kind=TASK_KIND,
        base={},
        zip_axes={"cell": tuple(duration_cells(spec, plan))},
        seed=spec.seed,
    )
    sweep = run_sweep(
        sweep_spec,
        store,
        workers=workers,
        clock=clock,
        force=force,
        retries=retries,
        timeout_sec=timeout_sec,
    )
    durations: Dict[str, List[float]] = {}
    for outcome in sweep.outcomes:
        if not outcome.ok or outcome.result is None:
            cell = outcome.run.params["cell"]
            raise FleetRunnerError(
                f"duration cell {cell['id']!r} failed: {outcome.error}"
            )
        result = outcome.result
        key = f"{result['group']}:{result['controller']}"
        durations.setdefault(key, []).append(float(result["duration_sec"]))

    scheduler = FleetScheduler(spec, group_capacities(spec))
    backends = {
        group.name: FleetMigration(
            durations[f"{group.name}:{plan.from_controller}"],
            durations[f"{group.name}:{plan.to_controller}"],
            deadline=task.deadline,
            machines=group.count,
            tasks_per_machine_week=plan.tasks_per_host_week,
            seed=spec.seed,
        )
        for group in spec.hosts
    }
    group_of = {host.id: host.group for host in scheduler.hosts}
    weeks: List[MigrationWeek] = []
    for week, fraction in enumerate(plan.schedule):
        assignment = scheduler.staged_controllers(
            fraction, plan.from_controller, plan.to_controller
        )
        migrated_hosts = sum(
            1 for ctl in assignment.values() if ctl == plan.to_controller
        )
        attempts = 0
        failures = 0
        for group in spec.hosts:
            members = [
                host_id
                for host_id, g in group_of.items()
                if g == group.name
            ]
            on_new = sum(
                1
                for host_id in members
                if assignment[host_id] == plan.to_controller
            )
            on_old = len(members) - on_new
            per_week = plan.tasks_per_host_week
            backend = backends[group.name]
            failures += backend.sample_failures(
                f"week:{week}:group:{group.name}:old",
                backend.old,
                on_old * per_week,
            )
            failures += backend.sample_failures(
                f"week:{week}:group:{group.name}:new",
                backend.new,
                on_new * per_week,
            )
            attempts += len(members) * per_week
        weeks.append(
            MigrationWeek(
                week=week,
                scheduled_fraction=float(fraction),
                migrated_hosts=migrated_hosts,
                attempts=attempts,
                failures=failures,
            )
        )
    return MigrationReport(
        fleet=spec.name,
        task=task.name,
        deadline=float(task.deadline),
        from_controller=plan.from_controller,
        to_controller=plan.to_controller,
        durations=durations,
        weeks=weeks,
        sweep=sweep,
    )


__all__ = [
    "BENCH_SCHEMA",
    "FleetReport",
    "FleetRunnerError",
    "HOST_KIND",
    "MigrationReport",
    "MigrationWeek",
    "POLICY_PASSES",
    "TASK_KIND",
    "duration_cells",
    "fleet_sweep_spec",
    "host_params",
    "run_fleet_sweep",
    "run_staged_migration",
]
