"""Fleet rollups: merge per-host results into cluster dashboards.

The paper's fleet telemetry is aggregated two ways, and the distinction
matters enough that both are reported:

* **percentile-of-percentiles** — the p99 *of the per-host p99s* ("how bad
  is a bad host"), the shape fleet dashboards usually draw because hosts
  report pre-aggregated windows;
* **pooled percentiles** — merge every host's latency *histogram*
  (:meth:`repro.obs.metrics.Histogram.merge` — associative, so host order
  and sharding are irrelevant) and read the percentile of the pooled
  distribution ("how bad is a bad IO").  Pooled p99 ≤ p99-of-p99 whenever
  slow hosts are a minority; the gap between the two is itself a useful
  skew signal.

Rollups are keyed by **workload template** (the scheduler's placement
plan maps each host cgroup back to its template), with machine-slice
``io.stat`` totals and controller vrate stats alongside.  Everything is
canonical-JSON-able and built from sorted host order, so a rollup is
byte-stable across worker counts — the determinism tests compare rollup
bytes, not just per-host results.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.metrics import Histogram, exact_percentile

#: Rollup document schema (bump on shape changes).
ROLLUP_SCHEMA = "repro.fleet.rollup/1"


def merge_histograms(
    payloads: Sequence[Mapping[str, Any]], name: str = ""
) -> Optional[Histogram]:
    """Merge serialized histograms (``Histogram.to_dict`` payloads)."""
    merged: Optional[Histogram] = None
    for payload in payloads:
        hist = Histogram.from_dict(dict(payload), name=name)
        if merged is None:
            merged = hist
        else:
            merged.merge(hist)
    return merged


def _percentile_keys(pct: float) -> str:
    return f"p{pct:g}"


def fleet_rollup(
    plan: Mapping[str, Any],
    results: Mapping[str, Mapping[str, Any]],
    percentiles: Sequence[float] = (50.0, 95.0, 99.0),
) -> Dict[str, Any]:
    """Roll per-host results up into the fleet dashboard document.

    ``plan`` is :meth:`repro.fleet.scheduler.FleetScheduler.plan`;
    ``results`` maps host id → :func:`repro.fleet.experiments.run_fleet_host`
    output (missing hosts — failed or not yet run — are simply absent from
    the aggregates and listed under ``hosts.missing``).
    """
    plan_hosts: Mapping[str, Any] = plan.get("hosts", {})
    host_ids = sorted(plan_hosts)
    reporting = [host_id for host_id in host_ids if host_id in results]
    missing = [host_id for host_id in host_ids if host_id not in results]

    # -- per-workload-template aggregation ----------------------------------
    #: template -> {"iops": [...], "hist_payloads": [...], pct -> [values]}
    by_template: Dict[str, Dict[str, Any]] = {}
    for host_id in reporting:
        result = results[host_id]
        cgroup_results = result.get("cgroups", {})
        hist_payloads = result.get("latency_hist", {})
        for placement in plan_hosts[host_id].get("workloads", []):
            template = str(placement["workload"])
            path = str(placement["cgroup"])
            cell = cgroup_results.get(path)
            if cell is None:
                continue
            agg = by_template.setdefault(
                template,
                {"hosts": 0, "iops": [], "hists": [], "per_pct": {}},
            )
            agg["hosts"] += 1
            agg["iops"].append(float(cell.get("iops", 0.0)))
            payload = hist_payloads.get(path)
            if payload is not None:
                agg["hists"].append(payload)
            for pct in percentiles:
                value = cell.get(f"read_p{pct:g}")
                if value is not None:
                    agg["per_pct"].setdefault(pct, []).append(float(value))

    workloads: Dict[str, Any] = {}
    for template in sorted(by_template):
        agg = by_template[template]
        merged = merge_histograms(agg["hists"], name=template)
        latency: Dict[str, Any] = {}
        for pct in percentiles:
            key = _percentile_keys(pct)
            values: List[float] = agg["per_pct"].get(pct, [])
            latency[key] = {
                # p99 of the per-host p99s: the dashboard aggregate.
                "of_host_percentiles": (
                    float(exact_percentile(values, pct)) if values else None
                ),
                "host_max": max(values) if values else None,
                # The pooled distribution's percentile, from merged
                # histograms: exact up to one bucket width.
                "pooled": (
                    float(merged.percentile(pct))
                    if merged is not None and merged.count
                    else None
                ),
            }
        workloads[template] = {
            "placements_reporting": agg["hosts"],
            "iops_total": float(sum(agg["iops"])),
            "samples": int(merged.count) if merged is not None else 0,
            "read_latency": latency,
        }

    # -- machine-slice io.stat totals ---------------------------------------
    iostat_totals: Dict[str, Dict[str, float]] = {}
    for host_id in reporting:
        for path, entry in results[host_id].get("iostat", {}).items():
            acc = iostat_totals.setdefault(path, {})
            for key, value in entry.items():
                if key.startswith("cost."):
                    continue  # gauges: meaningless to sum across hosts
                acc[key] = acc.get(key, 0.0) + float(value)

    # -- controller vrate stats ---------------------------------------------
    vrates = [
        float(results[host_id]["vrate_mean"])
        for host_id in reporting
        if results[host_id].get("vrate_mean") is not None
    ]
    vrate: Optional[Dict[str, float]] = None
    if vrates:
        vrate = {
            "hosts": float(len(vrates)),
            "mean": float(sum(vrates) / len(vrates)),
            "min": float(min(vrates)),
            "max": float(max(vrates)),
        }

    oversubscribed = sorted(
        host_id
        for host_id in host_ids
        if plan_hosts[host_id].get("oversubscribed")
    )
    return {
        "schema": ROLLUP_SCHEMA,
        "fleet": plan.get("fleet", ""),
        "fleet_hash": plan.get("fleet_hash", ""),
        "policy": plan.get("policy", ""),
        "hosts": {
            "total": len(host_ids),
            "reporting": len(reporting),
            "missing": missing,
            "oversubscribed": oversubscribed,
        },
        "workloads": workloads,
        "iostat": iostat_totals,
        "vrate": vrate,
    }


__all__ = ["ROLLUP_SCHEMA", "fleet_rollup", "merge_histograms"]
