"""Deterministic discrete-event simulation engine.

The engine is a classic event-heap simulator.  Time is a float in seconds.
Three primitives cover everything the reproduction needs:

* :meth:`Simulator.schedule` — run a callback after a delay (returns an
  :class:`Event` handle that can be cancelled, used for timers such as the
  IOCost planning period).
* :class:`Signal` — a one-shot waitable event used for IO completions and
  request/response rendezvous.
* :class:`Process` — a cooperative task written as a generator.  A process
  may ``yield`` a number (sleep that many seconds), a :class:`Signal` (wait
  until it fires), or another :class:`Process` (wait for it to finish).

Determinism: ties in the event heap are broken by insertion order, so two
runs with the same seeds produce identical traces.

Hot-path layout (docs/PERF.md): heap entries are ``(time, seq, event)``
tuples, not bare :class:`Event` objects, so every heap sift compares in C
without ever calling back into Python — the ``seq`` tiebreaker is unique,
so comparison never reaches the (non-comparable) event in slot 2.
Cancellation stays on the :class:`Event` handle; a cancelled entry is left
in the heap and discarded when popped.  :meth:`Simulator.run` inlines the
pop/dispatch loop with the profiler guard hoisted out of it, and
:meth:`Simulator.schedule_bulk` amortises batched timer creation into a
single heap restore.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.obs.prof import PROF
from repro.sanitize import SANITIZE


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (e.g. bad yield values)."""


class CancelledError(SimulationError):
    """Raised inside a process that is interrupted via :meth:`Process.cancel`."""


class Event:
    """Handle for a scheduled callback.

    Returned by :meth:`Simulator.schedule`; supports cancellation, which is
    how periodic timers and latency-governed workloads stand down.  The
    handle is *not* the heap entry (see the module docstring): it only
    carries what dispatch and cancellation need.
    """

    __slots__ = ("time", "callback", "args", "cancelled")

    def __init__(self, time: float, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True


class Signal:
    """A one-shot waitable event carrying an optional value.

    Processes wait on a signal by yielding it; plain callbacks can subscribe
    with :meth:`wait`.  Firing an already-fired signal is an error; waiting
    on a fired signal resumes the waiter immediately.
    """

    __slots__ = ("sim", "fired", "value", "_waiters")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.fired = False
        self.value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        """Fire the signal, resuming all waiters in subscription order."""
        if self.fired:
            raise SimulationError("signal fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)

    def wait(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` when the signal fires (now if already fired)."""
        if self.fired:
            callback(self.value)
        else:
            self._waiters.append(callback)


class Process:
    """A generator-based cooperative task.

    The wrapped generator drives the process; see the module docstring for
    the yield protocol.  The process itself is waitable (another process may
    yield it), and exposes :attr:`done`, :attr:`result`, and :meth:`cancel`.
    """

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = False
        self.result: Any = None
        self.completion = Signal(sim)
        self._pending_event: Optional[Event] = None
        self._cancelled = False

    def cancel(self) -> None:
        """Interrupt the process by raising :class:`CancelledError` inside it."""
        if self.done or self._cancelled:
            return
        self._cancelled = True
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        self.sim.schedule(0.0, self._throw_cancel)

    def _throw_cancel(self) -> None:
        if self.done:
            return
        try:
            self.gen.throw(CancelledError("process cancelled"))
        except (StopIteration, CancelledError):
            self._finish(None)
        else:
            # The generator swallowed the cancellation; let it keep running
            # from whatever it yields next.
            raise SimulationError(f"process {self.name!r} ignored cancellation")

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        self.completion.fire(result)

    def _step(self, send_value: Any = None) -> None:
        if self.done:
            # A stale wake-up (e.g. a signal firing after the process was
            # cancelled) must not resurrect a finished process.
            return
        self._pending_event = None
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(f"process {self.name!r} yielded negative delay")
            self._pending_event = self.sim.schedule(float(yielded), self._step, None)
        elif isinstance(yielded, Signal):
            yielded.wait(self._step)
        elif isinstance(yielded, Process):
            yielded.completion.wait(self._step)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )


#: Type of a heap entry: ``(time, seq, event)``.
HeapEntry = Tuple[float, int, Event]


class Simulator:
    """Event-heap simulator with a float clock in seconds."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[HeapEntry] = []
        self._seq = 0
        #: Callbacks dispatched so far — the denominator for per-event
        #: overhead accounting (repro.obs.overhead).
        self.events_processed = 0
        # Cached self-profiler (same zero-cost guard pattern as tracepoints).
        self._prof = PROF
        # Cached sanitizer (repro.sanitize): run() falls back to the
        # step()-based loop while enabled, same as the profiler.
        self._san = SANITIZE

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds; returns a handle."""
        # ``not (delay >= 0)`` also catches NaN, which compares False both
        # ways and would otherwise slip past a ``delay < 0`` check and
        # corrupt the heap invariant.
        if not delay >= 0.0 or delay == math.inf:
            raise SimulationError(f"cannot schedule with delay {delay!r}")
        event = Event(self.now + delay, callback, args)
        if self._prof.enabled:
            self._prof.heap_pushes += 1
        self._seq += 1
        heapq.heappush(self._heap, (event.time, self._seq, event))
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Run ``callback(*args)`` at absolute simulated ``time``."""
        return self.schedule(time - self.now, callback, *args)

    def schedule_bulk(
        self, entries: Iterable[Tuple[float, Callable[..., Any], tuple]]
    ) -> List[Event]:
        """Schedule many ``(delay, callback, args)`` timers in one heap restore.

        Semantically identical to calling :meth:`schedule` per entry (same
        tie-break order: entries receive consecutive sequence numbers in
        iteration order); the heap invariant is restored once at the end
        with ``heapify`` — O(heap + batch) instead of O(batch · log heap) —
        so batched completions or timer fan-outs cost one heap operation
        per batch.
        """
        # simlint: dual-of=Simulator.schedule
        heap = self._heap
        now = self.now
        events: List[Event] = []
        seq = self._seq
        prof = self._prof
        # The restore runs in a finally: a bad delay mid-batch must not
        # leave earlier entries appended un-heapified (and their sequence
        # numbers unclaimed), or the next sift could compare two entries
        # down to the non-comparable Event in slot 2.
        try:
            for delay, callback, args in entries:
                if not delay >= 0.0 or delay == math.inf:
                    raise SimulationError(f"cannot schedule with delay {delay!r}")
                event = Event(now + delay, callback, args)
                seq += 1
                heap.append((event.time, seq, event))
                events.append(event)
        finally:
            self._seq = seq
            if events:
                heapq.heapify(heap)
                if prof.enabled:
                    prof.heap_pushes += len(events)
                if self._san.enabled:
                    self._san.check_heap(heap, now)
        return events

    def signal(self) -> Signal:
        """Create a fresh one-shot :class:`Signal` bound to this simulator."""
        return Signal(self)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a :class:`Process` (first step runs at ``now``)."""
        proc = Process(self, gen, name)
        self.schedule(0.0, proc._step, None)
        return proc

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Run the next pending event.  Returns False if the heap is empty."""
        prof = self._prof
        san = self._san
        heap = self._heap
        while heap:
            time, _seq, event = heapq.heappop(heap)
            if prof.enabled:
                prof.heap_pops += 1
            if event.cancelled:
                continue
            if san.enabled:
                san.check_monotonic(self.now, time)
            self.now = time
            self.events_processed += 1
            if prof.enabled:
                prof.events_dispatched += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the heap drains or the clock passes ``until``.

        With ``until`` set, the clock is advanced to exactly ``until`` at the
        end even if no event lands there, so back-to-back ``run`` calls tile
        the timeline.

        The dispatch loop is inlined (no per-event :meth:`step` call) with
        the profiler guard hoisted: when the profiler is disabled — the
        common case — each event costs one heap pop, one cancelled check,
        and the callback itself.  The profiled variant falls back to
        :meth:`step` so counter semantics stay in one place.
        """
        if until is not None and until < self.now:
            raise SimulationError("cannot run backwards")
        if self._prof.enabled or self._san.enabled:
            self._run_profiled(until)
            return
        heap = self._heap
        pop = heapq.heappop
        dispatched = 0
        # ``events_processed`` is batched back in a finally so a raising
        # callback cannot lose the events dispatched before it.
        try:
            if until is None:
                while heap:
                    time, _seq, event = pop(heap)
                    if event.cancelled:
                        continue
                    self.now = time
                    dispatched += 1
                    event.callback(*event.args)
                return
            while heap:
                entry = heap[0]
                if entry[0] > until:
                    if entry[2].cancelled:
                        pop(heap)
                        continue
                    break
                time, _seq, event = pop(heap)
                if event.cancelled:
                    continue
                self.now = time
                dispatched += 1
                event.callback(*event.args)
            self.now = until
        finally:
            self.events_processed += dispatched

    def _run_profiled(self, until: Optional[float]) -> None:
        """The observable-work variant of :meth:`run` (profiler or
        sanitizer enabled; per-event checks live in :meth:`step`)."""
        # simlint: dual-of=Simulator.run
        if until is None:
            while self.step():
                pass
            return
        while self._heap:
            time, _seq, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if time > until:
                break
            self.step()
        self.now = until

    def peek(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if idle."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None
