"""Discrete-event simulation engine.

This subpackage provides the time substrate for the whole reproduction: a
deterministic event-heap simulator (:class:`~repro.sim.engine.Simulator`),
generator-based cooperative processes (:class:`~repro.sim.engine.Process`),
waitable one-shot signals (:class:`~repro.sim.engine.Signal`), and seeded
random-variate helpers (:mod:`repro.sim.distributions`).

The engine plays the role that real wall-clock time plays in the paper's
testbed.  Every latency the paper measures on hardware is, here, the
difference of two simulated timestamps.
"""

from repro.sim.engine import (
    CancelledError,
    Event,
    Process,
    Signal,
    SimulationError,
    Simulator,
)
from repro.sim.distributions import LatencyDistribution, RandomStreams

__all__ = [
    "CancelledError",
    "Event",
    "LatencyDistribution",
    "Process",
    "RandomStreams",
    "Signal",
    "SimulationError",
    "Simulator",
]
