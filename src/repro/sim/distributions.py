"""Seeded random variates for device and workload models.

Two pieces live here:

* :class:`RandomStreams` — a root seed fanned out into independent named
  substreams, so adding a new random consumer never perturbs existing ones
  (the property that keeps regression baselines stable).
* :class:`LatencyDistribution` — the service-time shape used by the device
  models: a lognormal body around a median with a controllable tail, which
  matches the "mostly tight, occasionally long" behaviour of real SSDs that
  the paper's QoS machinery reacts to.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RandomStreams:
    """Fan a root seed out into independent, reproducible named streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]


class LatencyDistribution:
    """Lognormal service-time distribution parameterised by its median.

    Parameters
    ----------
    median:
        Median service time in seconds.
    sigma:
        Lognormal shape parameter; 0 degenerates to a constant.
    tail_prob, tail_scale:
        With probability ``tail_prob`` a sample is multiplied by
        ``tail_scale`` — the occasional garbage-collection-style stall that
        simple linear cost models cannot capture (paper §3.3).
    """

    __slots__ = ("median", "sigma", "tail_prob", "tail_scale")

    def __init__(
        self,
        median: float,
        sigma: float = 0.25,
        tail_prob: float = 0.0,
        tail_scale: float = 1.0,
    ) -> None:
        if median <= 0:
            raise ValueError("median must be positive")
        self.median = median
        self.sigma = sigma
        self.tail_prob = tail_prob
        self.tail_scale = tail_scale

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one service time."""
        if self.sigma > 0:
            value = self.median * float(np.exp(rng.normal(0.0, self.sigma)))
        else:
            value = self.median
        if self.tail_prob > 0 and rng.random() < self.tail_prob:
            value *= self.tail_scale
        return value

    def scaled(self, factor: float) -> "LatencyDistribution":
        """A copy with the median scaled by ``factor`` (same shape)."""
        return LatencyDistribution(
            self.median * factor, self.sigma, self.tail_prob, self.tail_scale
        )
