"""ASCII rendering of time series — terminal "figures" for the examples.

The benchmark harness prints tables; the examples additionally render the
paper's line plots (vrate traces, RPS curves) as compact ASCII charts so a
terminal user can see the dynamics without a plotting stack.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.stats import TimeSeries

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line block-character sparkline, resampled to ``width`` points."""
    data = list(values)
    if not data:
        return ""
    if len(data) > width:
        # Average-pool into `width` buckets.
        bucket = len(data) / width
        data = [
            sum(data[int(i * bucket): max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, len(data[int(i * bucket): max(int(i * bucket) + 1, int((i + 1) * bucket))]))
            for i in range(width)
        ]
    low, high = min(data), max(data)
    span = high - low
    if span <= 0:
        return _BLOCKS[4] * len(data)
    chars = []
    for value in data:
        index = int((value - low) / span * (len(_BLOCKS) - 1))
        chars.append(_BLOCKS[index])
    return "".join(chars)


def render_series(
    series: TimeSeries,
    title: str = "",
    width: int = 64,
    height: int = 10,
    markers: Optional[Sequence[Tuple[float, str]]] = None,
) -> str:
    """Multi-line ASCII chart of a time series.

    ``markers`` are (time, label) pairs rendered as vertical annotations
    under the x-axis (e.g. the Figure 13 model-update instants).
    """
    if len(series) == 0:
        return f"{title} (no data)"
    times, values = list(series.times), list(series.values)
    t_low, t_high = times[0], times[-1]
    v_low, v_high = min(values), max(values)
    if v_high - v_low <= 0:
        v_high = v_low + 1.0
    t_span = max(t_high - t_low, 1e-12)

    # Resample onto the grid: last value per column.
    columns: List[Optional[float]] = [None] * width
    for t, v in zip(times, values):
        col = min(width - 1, int((t - t_low) / t_span * width))
        columns[col] = v
    # Forward-fill gaps.
    last = values[0]
    for index in range(width):
        if columns[index] is None:
            columns[index] = last
        else:
            last = columns[index]

    grid = [[" "] * width for _ in range(height)]
    for col, value in enumerate(columns):
        row = int((value - v_low) / (v_high - v_low) * (height - 1))
        grid[height - 1 - row][col] = "•"

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        label = ""
        if row_index == 0:
            label = f"{v_high:8.3g} "
        elif row_index == height - 1:
            label = f"{v_low:8.3g} "
        else:
            label = " " * 9
        lines.append(label + "|" + "".join(row))
    axis = " " * 9 + "+" + "-" * width
    lines.append(axis)
    lines.append(" " * 10 + f"{t_low:<10.3g}{' ' * max(0, width - 20)}{t_high:>10.3g}")

    if markers:
        marker_line = [" "] * (width + 10)
        for time, label in markers:
            col = 10 + min(width - 1, int((time - t_low) / t_span * width))
            marker_line[col] = "^"
            lines.append("".join(marker_line))
            lines.append(" " * max(0, col - len(label) // 2) + label)
            marker_line = [" "] * (width + 10)
    return "\n".join(lines)
