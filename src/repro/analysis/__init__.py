"""Statistics and reporting helpers shared by the library and benchmarks."""

from repro.analysis.stats import (
    LatencyWindow,
    RateMeter,
    Summary,
    TimeSeries,
    percentile,
)
from repro.analysis.report import Table, format_ratio, format_si
from repro.analysis.figures import render_series, sparkline

__all__ = [
    "LatencyWindow",
    "RateMeter",
    "Summary",
    "Table",
    "TimeSeries",
    "format_ratio",
    "format_si",
    "percentile",
    "render_series",
    "sparkline",
]
