"""Streaming statistics primitives.

The kernel implementation of IOCost maintains per-device completion-latency
percentiles over a sliding window to drive its QoS decisions; benchmarks in
the paper additionally report means, percentiles, and rates.  This module
provides the equivalents used throughout the reproduction:

* :class:`LatencyWindow` — sliding-window sample store with percentile query.
* :class:`TimeSeries` — append-only (time, value) recorder with window
  reductions, used for vrate traces, RPS curves, etc.
* :class:`RateMeter` — events/bytes per second over a sliding window.
* :class:`Summary` — one-shot aggregate over a closed sample set.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import exact_percentile


def percentile(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of ``samples`` (``pct`` in [0, 100]).

    Compatibility shim: the implementation lives in
    :func:`repro.obs.metrics.exact_percentile` (alongside the streaming
    histogram it serves as ground truth for).  Behaviour is unchanged —
    ``ValueError`` on an empty sample set or out-of-range ``pct``.
    """
    return exact_percentile(samples, pct)


class LatencyWindow:
    """Sliding-window latency samples with percentile queries.

    Samples are (timestamp, latency) pairs; queries prune samples older than
    ``window`` seconds before answering.  This is the signal source for
    IOCost's latency-target saturation detection.
    """

    def __init__(self, window: float = 1.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._samples: Deque[Tuple[float, float]] = deque()

    def record(self, now: float, latency: float) -> None:
        self._samples.append((now, latency))

    def _prune(self, now: float) -> None:
        horizon = now - self.window
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def count(self, now: float) -> int:
        self._prune(now)
        return len(self._samples)

    def percentile(self, now: float, pct: float) -> Optional[float]:
        """Window percentile, or None if the window is empty."""
        self._prune(now)
        if not self._samples:
            return None
        return percentile([lat for _, lat in self._samples], pct)

    def mean(self, now: float) -> Optional[float]:
        self._prune(now)
        if not self._samples:
            return None
        return sum(lat for _, lat in self._samples) / len(self._samples)

    def clear(self) -> None:
        self._samples.clear()


class RateMeter:
    """Events (optionally weighted, e.g. by bytes) per second over a window."""

    def __init__(self, window: float = 1.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._events: Deque[Tuple[float, float]] = deque()
        self.total = 0.0

    def record(self, now: float, amount: float = 1.0) -> None:
        self._events.append((now, amount))
        self.total += amount

    def rate(self, now: float) -> float:
        """Windowed rate in amount/second."""
        horizon = now - self.window
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()
        return sum(amount for _, amount in self._events) / self.window


class TimeSeries:
    """Append-only time series with monotone timestamps and window reductions."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("timestamps must be monotone non-decreasing")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def slice(self, start: float, end: float) -> List[float]:
        """Values with start <= t < end."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end)
        return self.values[lo:hi]

    def mean(self, start: float = float("-inf"), end: float = float("inf")) -> float:
        values = self.slice(start, end)
        if not values:
            raise ValueError("mean over empty slice")
        return sum(values) / len(values)

    def max(self, start: float = float("-inf"), end: float = float("inf")) -> float:
        values = self.slice(start, end)
        if not values:
            raise ValueError("max over empty slice")
        return max(values)

    def last(self) -> float:
        if not self.values:
            raise ValueError("empty series")
        return self.values[-1]


@dataclass
class Summary:
    """Closed-form aggregate of a sample set (used in benchmark reports)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    maximum: float

    @classmethod
    def of(cls, samples: Iterable[float]) -> "Summary":
        data = list(samples)
        if not data:
            raise ValueError("summary of empty sample set")
        return cls(
            count=len(data),
            mean=sum(data) / len(data),
            p50=percentile(data, 50),
            p90=percentile(data, 90),
            p99=percentile(data, 99),
            maximum=max(data),
        )
