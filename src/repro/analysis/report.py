"""Plain-text table/figure emitters for the benchmark harness.

Every benchmark regenerating a paper table or figure prints its rows through
:class:`Table` so the output reads like the paper's own presentation and can
be diffed across runs.
"""

from __future__ import annotations

from typing import Any, List, Sequence


def format_si(value: float, unit: str = "") -> str:
    """Format with SI prefix: 1500000 -> '1.50M'."""
    for threshold, prefix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            return f"{value / threshold:.2f}{prefix}{unit}"
    return f"{value:.2f}{unit}"


def format_ratio(numerator: float, denominator: float) -> str:
    """Format a ratio like '2.03:1', guarding the zero denominator."""
    if denominator == 0:
        return "inf:1"
    return f"{numerator / denominator:.2f}:1"


class Table:
    """Fixed-width text table with a title, rendered via ``str()``."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([str(cell) for cell in cells])

    def __str__(self) -> str:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(str(self))
