"""Content-addressed result cache over the artifact store.

A run is a cache hit when the store already holds a ``result.json``
whose ``meta.json`` matches on every component of the cache key:

* ``run_hash`` — content hash of (kind, params, seed), so editing one
  sweep axis value invalidates exactly the cells that contain it;
* ``seed`` — the sweep seed (also folded into the hash; checked
  explicitly as a defensive second factor);
* ``version`` — ``repro.__version__``, so bumping the library re-runs
  everything (simulator behaviour may have changed under the same spec).

Failed runs never hit: a sweep re-attempts its previous failures.  The
cache records hit/miss reasons so ``status`` output and the sweep report
can explain *why* a cell re-ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import repro
from repro.exp.grid import RunSpec
from repro.exp.store import META_FILE, RESULT_FILE, SPEC_FILE, ArtifactStore

#: Lookup outcomes (``CacheDecision.reason``).
HIT = "hit"
MISS_ABSENT = "absent"
MISS_VERSION = "version-changed"
MISS_FAILED = "failed-previously"
MISS_TIMEOUT = "timed-out-previously"
MISS_STALE = "stale-metadata"
MISS_FORCED = "forced"


@dataclass(frozen=True)
class CacheDecision:
    """One lookup verdict: hit/miss, why, and the cached result if any."""

    hit: bool
    reason: str
    result: Optional[Dict[str, Any]] = None
    meta: Optional[Dict[str, Any]] = None


class ResultCache:
    """Cache keyed by (run content hash, seed, library version)."""

    def __init__(self, store: ArtifactStore, version: Optional[str] = None) -> None:
        self.store = store
        self.version = repro.__version__ if version is None else version

    def lookup(self, run: RunSpec, force: bool = False) -> CacheDecision:
        if force:
            return CacheDecision(hit=False, reason=MISS_FORCED)
        run_hash = run.run_hash
        meta = self.store.try_read_json(run_hash, META_FILE)
        if meta is None:
            return CacheDecision(hit=False, reason=MISS_ABSENT)
        if meta.get("status") == "timeout":
            return CacheDecision(hit=False, reason=MISS_TIMEOUT, meta=meta)
        if meta.get("status") != "ok":
            return CacheDecision(hit=False, reason=MISS_FAILED, meta=meta)
        result = self.store.try_read_json(run_hash, RESULT_FILE)
        if result is None:
            return CacheDecision(hit=False, reason=MISS_ABSENT, meta=meta)
        if meta.get("version") != self.version:
            return CacheDecision(hit=False, reason=MISS_VERSION, meta=meta)
        if meta.get("run_hash") != run_hash or meta.get("seed") != run.seed:
            return CacheDecision(hit=False, reason=MISS_STALE, meta=meta)
        return CacheDecision(hit=True, reason=HIT, result=result, meta=meta)

    def commit(
        self,
        run: RunSpec,
        status: str,
        attempts: int,
        wall_sec: float,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        """Persist one executed run; returns the meta document written.

        ``result.json`` is written only for successful runs and holds the
        experiment output alone — timing and attempt counts go to
        ``meta.json`` so cached and live runs stay byte-identical.
        """
        run_hash = run.run_hash
        self.store.write_json(
            run_hash,
            SPEC_FILE,
            {
                "name": run.name,
                "kind": run.kind,
                "params": run.params,
                "axes": run.axes,
                "seed": run.seed,
                "derived_seed": run.derived_seed,
                "run_hash": run_hash,
            },
        )
        meta: Dict[str, Any] = {
            "run_hash": run_hash,
            "seed": run.seed,
            "version": self.version,
            "status": status,
            "attempts": attempts,
            "wall_sec": wall_sec,
        }
        if error is not None:
            meta["error"] = error
        self.store.write_json(run_hash, META_FILE, meta)
        if status == "ok" and result is not None:
            self.store.write_json(run_hash, RESULT_FILE, result)
        return meta


__all__ = [
    "CacheDecision",
    "ResultCache",
    "HIT",
    "MISS_ABSENT",
    "MISS_FAILED",
    "MISS_FORCED",
    "MISS_STALE",
    "MISS_TIMEOUT",
    "MISS_VERSION",
]
