"""The sweep runner: expand, consult the cache, execute, persist, report.

Execution model: one **process per run** (fork-context
``ProcessPoolExecutor``), because a simulated machine is CPU-bound pure
Python — processes sidestep the GIL and give each run a pristine
interpreter state.  Results come back to the parent in sweep order
(``Executor.map``), and the parent alone writes the artifact store, so no
two writers ever race on a run directory.

Determinism contract: a run's RNG entropy derives from its content hash
(:attr:`~repro.exp.grid.RunSpec.derived_seed`), never from scheduling, so
a 2-worker and an 8-worker pool produce byte-identical ``result.json``
files.  Wall-clock never enters the runner directly — callers inject a
``clock`` callable (the CLI passes a real one; library users and tests
may pass none and get zeros), keeping this module simlint-clean and the
cached/live artifact bytes identical.

Failures don't abort the sweep: each run is retried once (configurable)
inside its worker, then recorded as a structured failure in ``meta.json``
and the report.  Per-sweep counters (runs completed, cache hits,
failures, wall seconds) land in a :class:`repro.obs.metrics.MetricRegistry`.

Timeouts: ``timeout_sec`` bounds each run's wall-clock.  The pool is then
replaced by a hand-rolled process manager (one killable ``Process`` +
``Pipe`` per run, up to ``workers`` concurrent) because a
``ProcessPoolExecutor`` cannot kill a hung worker without tearing down
the whole pool.  An expired run is terminated and recorded with status
``"timeout"`` — a structured failure in ``meta.json`` like any other, but
distinguishable so the cache can report ``timed-out-previously`` on the
next sweep.  Deadlines are measured with the injected ``clock``, so a
real (wall) clock is required whenever ``timeout_sec`` is set.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.exp.cache import ResultCache
from repro.exp.experiments import TRACE_KEY, resolve
from repro.exp.grid import RunSpec, expand
from repro.exp.spec import ExperimentSpec, canonical_json
from repro.exp.store import TRACE_FILE, ArtifactStore
from repro.obs.metrics import MetricRegistry

Clock = Callable[[], float]

#: Default metric registry for sweep counters (callers may pass their own).
METRICS = MetricRegistry()


def zero_clock() -> float:
    """The no-timing clock: every interval measures as zero seconds."""
    return 0.0


class RunnerError(RuntimeError):
    """Raised for unusable runner configuration."""


@dataclass(frozen=True)
class RunOutcome:
    """How one sweep cell went: cached, executed-ok, or failed."""

    run: RunSpec
    status: str  # "ok" | "failed" | "timeout"
    cached: bool
    cache_reason: str
    attempts: int
    wall_sec: float
    result: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, str]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class SweepReport:
    """Everything a sweep produced, plus the aggregate perf numbers."""

    name: str
    sweep_hash: str
    kind: str
    workers: int
    outcomes: List[RunOutcome] = field(default_factory=list)
    elapsed_wall_sec: float = 0.0
    version: str = ""

    @property
    def runs_total(self) -> int:
        return len(self.outcomes)

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def executed(self) -> int:
        return self.runs_total - self.cache_hits

    @property
    def failures(self) -> int:
        """Runs that did not succeed — exceptions *and* timeouts."""
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    @property
    def timeouts(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == "timeout")

    @property
    def hit_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return self.cache_hits / self.runs_total

    @property
    def executed_wall_sec(self) -> float:
        """Summed per-run worker wall seconds — the serial-cost estimate."""
        return sum(o.wall_sec for o in self.outcomes if not o.cached)

    @property
    def speedup_vs_serial(self) -> Optional[float]:
        """Parallel speedup estimate: serial cost over observed elapsed."""
        if self.elapsed_wall_sec <= 0 or self.executed == 0:
            return None
        return self.executed_wall_sec / self.elapsed_wall_sec

    def results_by_axes(self) -> List[Tuple[Dict[str, Any], Optional[Dict[str, Any]]]]:
        """(axes, result) pairs in sweep order — the figure-friendly view."""
        return [(dict(o.run.axes), o.result) for o in self.outcomes]

    def to_bench_dict(self) -> Dict[str, Any]:
        """The ``BENCH_sweep.json`` payload: the sweep's perf trajectory."""
        return {
            "schema": "repro.exp.sweep/1",
            "name": self.name,
            "sweep_hash": self.sweep_hash,
            "kind": self.kind,
            "version": self.version,
            "workers": self.workers,
            "runs": [
                {
                    "run": outcome.run.run_hash,
                    "axes": outcome.run.axes,
                    "status": outcome.status,
                    "cached": outcome.cached,
                    "cache_reason": outcome.cache_reason,
                    "attempts": outcome.attempts,
                    "wall_sec": outcome.wall_sec,
                }
                for outcome in self.outcomes
            ],
            "totals": {
                "runs": self.runs_total,
                "executed": self.executed,
                "cache_hits": self.cache_hits,
                "cache_hit_rate": self.hit_rate,
                "failures": self.failures,
                "timeouts": self.timeouts,
                "executed_wall_sec": self.executed_wall_sec,
                "elapsed_wall_sec": self.elapsed_wall_sec,
                "speedup_vs_serial": self.speedup_vs_serial,
            },
        }


# -- worker side -------------------------------------------------------------

#: Payload shipped to a worker: (kind, params, derived_seed, retries, clock).
_Payload = Tuple[str, Dict[str, Any], int, int, Clock]
#: What comes back: (status, result, error, attempts, wall_sec).
_Verdict = Tuple[str, Optional[Dict[str, Any]], Optional[Dict[str, str]], int, float]


def _execute(payload: _Payload) -> _Verdict:
    """Run one cell (in a worker process), retrying on failure.

    Never raises: an experiment that keeps failing is reported as a
    structured failure so the rest of the sweep proceeds.
    """
    kind, params, derived_seed, retries, clock = payload
    error: Optional[Dict[str, str]] = None
    start = clock()
    for attempt in range(1, retries + 2):
        try:
            fn = resolve(kind)
            result = fn(params, derived_seed)
        except Exception as exc:  # noqa: BLE001 - the sweep must survive
            error = {"type": type(exc).__name__, "message": str(exc)}
        else:
            return "ok", result, None, attempt, clock() - start
    return "failed", None, error, retries + 1, clock() - start


def _worker_entry(payload: _Payload, conn: Any) -> None:
    """Process target for the timeout manager: execute, ship the verdict."""
    try:
        conn.send(_execute(payload))
    finally:
        conn.close()


def _make_executor(workers: int) -> ProcessPoolExecutor:
    """A fork-context pool when the platform has fork (registry and
    ``sys.path`` state inherit into workers), else the platform default."""
    try:
        mp_context = get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return ProcessPoolExecutor(max_workers=workers)
    return ProcessPoolExecutor(max_workers=workers, mp_context=mp_context)


def _mp_context() -> Any:
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return get_context()


def _run_with_timeouts(
    payloads: List[_Payload],
    workers: int,
    timeout_sec: float,
    clock: Clock,
) -> List[_Verdict]:
    """Execute payloads in killable per-run processes with a wall deadline.

    Keeps up to ``workers`` processes in flight; a run whose verdict has
    not arrived within ``timeout_sec`` (by ``clock``) is terminated and
    recorded with status ``"timeout"``.  Results come back indexed, so
    sweep order is preserved regardless of completion order.
    """
    ctx = _mp_context()
    verdicts: List[Optional[_Verdict]] = [None] * len(payloads)
    #: reader-connection -> (payload index, process, absolute deadline).
    active: Dict[Any, Tuple[int, Any, float]] = {}
    next_index = 0
    try:
        while next_index < len(payloads) or active:
            while next_index < len(payloads) and len(active) < workers:
                reader, writer = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker_entry, args=(payloads[next_index], writer)
                )
                proc.start()
                writer.close()  # the child holds the only write end now
                active[reader] = (next_index, proc, clock() + timeout_sec)
                next_index += 1
            nearest = min(deadline for _, _, deadline in active.values())
            wait_for = max(0.0, nearest - clock())
            ready = _connection_wait(list(active), timeout=wait_for)
            for reader in ready:
                index, proc, _ = active.pop(reader)
                try:
                    verdict: _Verdict = reader.recv()
                except EOFError:  # died without a verdict (OOM-kill, crash)
                    verdict = (
                        "failed",
                        None,
                        {
                            "type": "WorkerDied",
                            "message": "worker exited without a verdict",
                        },
                        1,
                        0.0,
                    )
                reader.close()
                proc.join()
                verdicts[index] = verdict
            if ready:
                continue
            now = clock()
            expired = [
                reader
                for reader, (_, _, deadline) in active.items()
                if deadline <= now
            ]
            for reader in expired:
                # A verdict may have landed between the wait and now —
                # prefer it over a kill.
                if reader.poll():
                    continue
                index, proc, _ = active.pop(reader)
                proc.terminate()
                proc.join()
                reader.close()
                verdicts[index] = (
                    "timeout",
                    None,
                    {
                        "type": "TimeoutError",
                        "message": (
                            f"run exceeded the {timeout_sec:g}s wall-clock "
                            "limit and was killed"
                        ),
                    },
                    1,
                    timeout_sec,
                )
    finally:  # interrupted sweeps must not leak live workers
        for reader, (_, proc, _) in active.items():
            proc.terminate()
            proc.join()
            reader.close()
    return [v for v in verdicts if v is not None]


# -- parent side -------------------------------------------------------------


def run_sweep(
    spec: ExperimentSpec,
    store: Union[ArtifactStore, str, Path],
    workers: int = 1,
    clock: Optional[Clock] = None,
    metrics: Optional[MetricRegistry] = None,
    force: bool = False,
    retries: int = 1,
    timeout_sec: Optional[float] = None,
) -> SweepReport:
    """Execute one sweep: cache-aware, parallel, failure-tolerant.

    ``clock`` must be a picklable zero-argument callable (it travels into
    worker processes); ``None`` disables timing.  ``force`` bypasses the
    cache and re-executes every cell.  ``timeout_sec`` bounds each run's
    wall-clock — it requires a real ``clock`` (deadlines cannot be
    measured with the zero clock) and swaps the pool for killable
    per-run worker processes.
    """
    if workers < 1:
        raise RunnerError("workers must be >= 1")
    if retries < 0:
        raise RunnerError("retries must be >= 0")
    if timeout_sec is not None and timeout_sec <= 0:
        raise RunnerError("timeout_sec must be positive")
    if timeout_sec is not None and (clock is None or clock is zero_clock):
        raise RunnerError(
            "timeout_sec needs a real clock (pass e.g. repro.exp.cli.wall_clock)"
        )
    if not isinstance(store, ArtifactStore):
        store = ArtifactStore(store)
    clock = zero_clock if clock is None else clock
    metrics = METRICS if metrics is None else metrics
    cache = ResultCache(store)
    runs = expand(spec)

    report = SweepReport(
        name=spec.name,
        sweep_hash=spec.sweep_hash,
        kind=spec.kind,
        workers=workers,
        version=cache.version,
    )
    start = clock()

    outcomes: List[Optional[RunOutcome]] = [None] * len(runs)
    pending: List[Tuple[int, RunSpec, str]] = []
    for index, run in enumerate(runs):
        decision = cache.lookup(run, force=force)
        if decision.hit:
            meta = decision.meta or {}
            outcomes[index] = RunOutcome(
                run=run,
                status="ok",
                cached=True,
                cache_reason=decision.reason,
                attempts=int(meta.get("attempts", 1)),
                wall_sec=0.0,
                result=decision.result,
            )
        else:
            pending.append((index, run, decision.reason))

    payloads: List[_Payload] = [
        (run.kind, run.params, run.derived_seed, retries, clock)
        for _, run, _ in pending
    ]
    if not payloads:
        verdicts: List[_Verdict] = []
    elif timeout_sec is not None:
        # Even a lone run needs its own killable process.
        verdicts = _run_with_timeouts(payloads, workers, timeout_sec, clock)
    elif workers == 1 or len(payloads) == 1:
        verdicts = [_execute(payload) for payload in payloads]
    else:
        with _make_executor(workers) as pool:
            verdicts = list(pool.map(_execute, payloads, chunksize=1))

    for (index, run, reason), verdict in zip(pending, verdicts):
        status, result, error, attempts, wall_sec = verdict
        trace_lines: Optional[List[str]] = None
        if result is not None and TRACE_KEY in result:
            trace_lines = list(result.pop(TRACE_KEY))
        cache.commit(
            run,
            status=status,
            attempts=attempts,
            wall_sec=wall_sec,
            result=result,
            error=error,
        )
        if trace_lines is not None:
            store.write_lines(run.run_hash, TRACE_FILE, trace_lines)
        outcomes[index] = RunOutcome(
            run=run,
            status=status,
            cached=False,
            cache_reason=reason,
            attempts=attempts,
            wall_sec=wall_sec,
            result=result,
            error=error,
        )

    report.outcomes = [outcome for outcome in outcomes if outcome is not None]
    report.elapsed_wall_sec = clock() - start

    metrics.counter("exp.runs_completed").inc(report.runs_total - report.failures)
    metrics.counter("exp.cache_hits").inc(report.cache_hits)
    metrics.counter("exp.failures").inc(report.failures)
    metrics.counter("exp.timeouts").inc(report.timeouts)
    wall_hist = metrics.histogram("exp.run_wall_sec")
    for outcome in report.outcomes:
        if not outcome.cached:
            wall_hist.record(outcome.wall_sec)
    metrics.gauge("exp.sweep_wall_sec").set(report.elapsed_wall_sec)
    if report.speedup_vs_serial is not None:
        metrics.gauge("exp.parallel_speedup").set(report.speedup_vs_serial)
    return report


def write_bench_json(report: SweepReport, path: Union[str, Path]) -> Path:
    """Write the sweep's perf-trajectory artifact (``BENCH_sweep.json``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(canonical_json(report.to_bench_dict()) + "\n")
    tmp.replace(path)
    return path


__all__ = [
    "Clock",
    "METRICS",
    "RunOutcome",
    "RunnerError",
    "SweepReport",
    "run_sweep",
    "write_bench_json",
    "zero_clock",
]
