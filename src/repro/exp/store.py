"""On-disk artifact store: ``runs/<run-hash>/{spec,result,meta,trace}``.

The store is the durable half of the orchestrator.  Every executed run
lands as one directory named by its content hash:

* ``spec.json`` — the resolved run (kind, params, seed, axes, hashes);
* ``result.json`` — canonical JSON of the experiment function's return
  value, and nothing else: no timestamps, no worker ids, no attempt
  counts.  Byte-identical across pool sizes and re-runs by construction.
* ``meta.json`` — everything about *how* the run went: library version,
  status, attempts, wall seconds (from the injected clock), failure info.
* ``trace.jsonl`` — optional tracepoint capture (one event per line,
  :mod:`repro.obs.trace` format, replayable).

Writes are atomic (temp file + ``os.replace`` in the same directory) so
a killed sweep never leaves a half-written result that a later sweep
would mistake for a cache hit.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.exp.spec import canonical_json

SPEC_FILE = "spec.json"
RESULT_FILE = "result.json"
META_FILE = "meta.json"
TRACE_FILE = "trace.jsonl"


class StoreError(RuntimeError):
    """Raised for unusable store state (bad root, unreadable artifacts)."""


class ArtifactStore:
    """Filesystem artifact store rooted at ``<root>/runs``."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.runs_root = self.root / "runs"

    # -- paths ---------------------------------------------------------------

    def run_dir(self, run_hash: str) -> Path:
        if not run_hash or "/" in run_hash or run_hash.startswith("."):
            raise StoreError(f"invalid run hash {run_hash!r}")
        return self.runs_root / run_hash

    def path(self, run_hash: str, filename: str) -> Path:
        return self.run_dir(run_hash) / filename

    def has(self, run_hash: str, filename: str) -> bool:
        return self.path(run_hash, filename).is_file()

    # -- writes (atomic) -----------------------------------------------------

    def _write_atomic(self, path: Path, text: str) -> Path:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)
        return path

    def write_json(self, run_hash: str, filename: str, payload: Any) -> Path:
        """Write ``payload`` as canonical JSON (stable bytes) plus newline."""
        return self._write_atomic(
            self.path(run_hash, filename), canonical_json(payload) + "\n"
        )

    def write_lines(
        self, run_hash: str, filename: str, lines: Iterable[str]
    ) -> Path:
        return self._write_atomic(
            self.path(run_hash, filename),
            "".join(line + "\n" for line in lines),
        )

    # -- reads ---------------------------------------------------------------

    def try_read_json(self, run_hash: str, filename: str) -> Optional[Any]:
        """Parse one artifact, or ``None`` if absent/corrupt.

        A corrupt artifact (interrupted machine, manual edit) reads as a
        cache miss, not an error: the runner will simply re-execute.
        """
        path = self.path(run_hash, filename)
        if not path.is_file():
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def read_json(self, run_hash: str, filename: str) -> Any:
        payload = self.try_read_json(run_hash, filename)
        if payload is None:
            raise StoreError(f"missing or unreadable {filename} for {run_hash}")
        return payload

    def result_bytes(self, run_hash: str) -> bytes:
        """Raw ``result.json`` bytes — what determinism tests compare."""
        path = self.path(run_hash, RESULT_FILE)
        if not path.is_file():
            raise StoreError(f"no result for {run_hash}")
        return path.read_bytes()

    # -- enumeration ---------------------------------------------------------

    def list_runs(self) -> List[str]:
        """Hashes of every run directory, sorted."""
        if not self.runs_root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.runs_root.iterdir()
            if entry.is_dir() and not entry.name.startswith(".")
        )

    def collect(self) -> List[Dict[str, Any]]:
        """Merge every stored run into one machine-readable listing."""
        collected: List[Dict[str, Any]] = []
        for run_hash in self.list_runs():
            entry: Dict[str, Any] = {
                "run": run_hash,
                "spec": self.try_read_json(run_hash, SPEC_FILE),
                "meta": self.try_read_json(run_hash, META_FILE),
                "result": self.try_read_json(run_hash, RESULT_FILE),
            }
            collected.append(entry)
        return collected


__all__ = [
    "ArtifactStore",
    "StoreError",
    "META_FILE",
    "RESULT_FILE",
    "SPEC_FILE",
    "TRACE_FILE",
]
