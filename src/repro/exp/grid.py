"""Sweep expansion: spec -> ordered list of concrete runs.

:func:`expand` turns one :class:`~repro.exp.spec.ExperimentSpec` into the
flat list of :class:`RunSpec` cells the runner executes.  Expansion is
fully deterministic: grid axes iterate in sorted-name order (outermost
first), values in the order the spec gives them, and zip rows — all zip
axes advanced in lockstep — form the innermost loop.  The cell order
therefore never depends on dict insertion order or worker count, which
the byte-identical-results contract relies on.

Each cell's identity is its content: ``run_hash`` digests ``(kind,
params, seed)`` after overrides are applied, so editing one axis value
changes exactly the hashes of the cells that contain it.  The per-run RNG
entropy derives from the same content (see
:func:`repro.exp.spec.seed_entropy`), making every run reproducible in
isolation — the cache and the pool can replay or skip cells in any order.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, MutableMapping, Sequence, Tuple

from repro.exp.spec import ExperimentSpec, SpecError, content_hash, seed_entropy


def set_by_path(tree: MutableMapping[str, Any], path: str, value: Any) -> None:
    """Set ``tree[a][b][c] = value`` for dotted ``path`` ``"a.b.c"``.

    Intermediate mappings are created on demand; an integer-looking
    segment indexes a list (``"workloads.0.depth"``).  A segment that
    lands on a non-container raises :class:`SpecError` rather than
    silently clobbering structure the experiment function expects.
    """
    parts = path.split(".")
    node: Any = tree
    for index, part in enumerate(parts[:-1]):
        if isinstance(node, list):
            node = _index_list(node, part, path)
        elif isinstance(node, MutableMapping):
            if part not in node:
                node[part] = {}
            node = node[part]
        else:
            raise SpecError(
                f"axis path {path!r}: segment {'.'.join(parts[:index + 1])!r} "
                f"traverses a {type(node).__name__}, not a mapping/list"
            )
    leaf = parts[-1]
    if isinstance(node, list):
        node[_list_index(node, leaf, path)] = value
    elif isinstance(node, MutableMapping):
        node[leaf] = value
    else:
        raise SpecError(
            f"axis path {path!r} lands inside a {type(node).__name__}, "
            "not a mapping/list"
        )


def _list_index(node: List[Any], part: str, path: str) -> int:
    try:
        index = int(part)
    except ValueError:
        raise SpecError(
            f"axis path {path!r}: list segment {part!r} is not an index"
        ) from None
    if not -len(node) <= index < len(node):
        raise SpecError(f"axis path {path!r}: index {index} out of range")
    return index


def _index_list(node: List[Any], part: str, path: str) -> Any:
    return node[_list_index(node, part, path)]


@dataclass(frozen=True)
class RunSpec:
    """One concrete sweep cell: fully-resolved params plus provenance."""

    name: str
    kind: str
    params: Dict[str, Any]
    axes: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0

    def canonical(self) -> Dict[str, Any]:
        """The content that *is* this run — what the hash and seed digest.

        Axes are provenance (already folded into ``params``), the name is
        presentation; neither belongs in the identity.
        """
        return {"kind": self.kind, "params": self.params, "seed": self.seed}

    @property
    def run_hash(self) -> str:
        return content_hash(self.canonical())

    @property
    def derived_seed(self) -> int:
        """Per-run RNG entropy, a pure function of the run's content."""
        return seed_entropy(self.canonical())

    def describe(self) -> str:
        """Short human label: the axis values, or the hash when axis-free."""
        if not self.axes:
            return self.run_hash
        return " ".join(f"{key}={self.axes[key]}" for key in sorted(self.axes))


def expand(spec: ExperimentSpec) -> List[RunSpec]:
    """Expand a spec into its ordered list of concrete runs.

    Grid axes form a Cartesian product (sorted axis names, outermost
    first); zip axes advance together as the innermost loop.  A spec with
    no axes expands to exactly one run.
    """
    grid_names = sorted(spec.grid)
    grid_values: Sequence[Tuple[Any, ...]] = [spec.grid[n] for n in grid_names]
    zip_names = sorted(spec.zip_axes)
    if zip_names:
        zip_rows = list(zip(*(spec.zip_axes[n] for n in zip_names)))
    else:
        zip_rows = [()]

    runs: List[RunSpec] = []
    for cell in itertools.product(*grid_values):
        for row in zip_rows:
            params = copy.deepcopy(dict(spec.base))
            axes: Dict[str, Any] = {}
            for axis, value in itertools.chain(
                zip(grid_names, cell), zip(zip_names, row)
            ):
                set_by_path(params, axis, copy.deepcopy(value))
                axes[axis] = value
            runs.append(
                RunSpec(
                    name=spec.name,
                    kind=spec.kind,
                    params=params,
                    axes=axes,
                    seed=spec.seed,
                )
            )
    return runs


__all__ = ["RunSpec", "expand", "set_by_path"]
