"""Declarative experiment orchestration: spec -> expand -> run -> collect.

``repro.exp`` turns the hand-rolled "build a Testbed, run it, print a
table" pattern into a declarative pipeline:

* :mod:`repro.exp.spec` — the sweep document (kind, base params, seed,
  grid/zip axes) with canonical-JSON content hashing;
* :mod:`repro.exp.grid` — deterministic expansion into concrete runs,
  each with a content-derived RNG seed;
* :mod:`repro.exp.experiments` — the experiment-kind registry
  (``testbed``, ``profile_device``, ``vrate_phases``, ``mechanism_2to1``,
  or any dotted-path function);
* :mod:`repro.exp.runner` — process-pool execution with result caching,
  one retry, structured failures, and obs-metrics wiring;
* :mod:`repro.exp.store` / :mod:`repro.exp.cache` — the on-disk artifact
  store (``runs/<hash>/{spec,result,meta,trace}``) and the
  (content, seed, version)-keyed result cache over it;
* :mod:`repro.exp.cli` — ``python -m repro.exp run/status/collect``.

See ``docs/EXPERIMENTS_RUNNER.md`` for the spec format and cache layout,
and ``examples/sweep_qos_grid.py`` for a runnable sweep.
"""

from repro.exp.cache import CacheDecision, ResultCache
from repro.exp.experiments import ExperimentError, experiment, resolve
from repro.exp.grid import RunSpec, expand, set_by_path
from repro.exp.runner import (
    METRICS,
    RunOutcome,
    RunnerError,
    SweepReport,
    run_sweep,
    write_bench_json,
    zero_clock,
)
from repro.exp.spec import (
    ExperimentSpec,
    SpecError,
    canonical_json,
    content_hash,
    load_spec,
)
from repro.exp.store import ArtifactStore, StoreError

__all__ = [
    "ArtifactStore",
    "CacheDecision",
    "ExperimentError",
    "ExperimentSpec",
    "METRICS",
    "ResultCache",
    "RunOutcome",
    "RunSpec",
    "RunnerError",
    "SpecError",
    "StoreError",
    "SweepReport",
    "canonical_json",
    "content_hash",
    "expand",
    "experiment",
    "load_spec",
    "resolve",
    "run_sweep",
    "set_by_path",
    "write_bench_json",
    "zero_clock",
]
