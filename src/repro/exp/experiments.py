"""The experiment-kind registry and the built-in kinds.

A *kind* is a plain function ``fn(params, seed) -> result`` — JSON-able
params in, JSON-able result out, every random draw rooted at ``seed``.
The runner resolves kinds by registered name (the :func:`experiment`
decorator) or by dotted import path (``"mypkg.mymod.my_fn"``), so user
code can add kinds without touching this package; both forms survive the
trip into a worker process.

Built-ins cover the repo's own sweep surfaces:

* ``testbed`` — the generic one-machine scenario: devices, controllers,
  QoS, cgroup weights, a workload mix, one measurement window.  This is
  the declarative twin of what every hand-rolled benchmark sets up.
* ``profile_device`` — fio-style device profiling (Figure 3's fan-out
  over the fleet).
* ``vrate_phases`` — the Figure 13 online model-update scenario.
* ``mechanism_2to1`` — the two-container 2:1 comparison scenario that
  ``repro.tools.compare`` fans out over every Table 1 mechanism.
* ``chaos`` — a testbed scenario with a device fault plan (repro.faults)
  injected mid-run, measured phase-by-phase: the isolation-under-fault
  figure (does the protected cgroup's read p99 hold to the QoS target
  while the device misbehaves?).

Results must be canonically serialisable (no NaN, no numpy scalars) —
helpers here convert measurements to plain floats, keeping ``result.json``
byte-stable across worker pools.

Reserved result key: ``_trace_jsonl`` (a list of JSONL event lines).  The
runner strips it out of ``result.json`` and lands it as ``trace.jsonl``.
"""

from __future__ import annotations

import dataclasses
import importlib
import math
from typing import Any, Callable, Dict, List, Optional

from repro.block.device_models import get_device_spec
from repro.controllers.blk_throttle import ThrottleLimits
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.profiler import profile_device
from repro.core.qos import QoSParams
from repro.faults import plan_from_config
from repro.obs.metrics import exact_percentile
from repro.obs.spans import SpanTracker
from repro.obs.trace import TRACE, TraceBuffer
from repro.testbed import Testbed

ExperimentFn = Callable[[Dict[str, Any], int], Dict[str, Any]]

#: Reserved result key carrying tracepoint JSONL lines to the runner.
TRACE_KEY = "_trace_jsonl"


class ExperimentError(ValueError):
    """Raised for unknown kinds or malformed experiment params."""


REGISTRY: Dict[str, ExperimentFn] = {}


def experiment(name: str) -> Callable[[ExperimentFn], ExperimentFn]:
    """Register ``fn`` as the experiment kind ``name``."""

    def register(fn: ExperimentFn) -> ExperimentFn:
        if name in REGISTRY:
            raise ExperimentError(f"duplicate experiment kind {name!r}")
        REGISTRY[name] = fn
        return fn

    return register


def resolve(kind: str) -> ExperimentFn:
    """Look up a kind: registry name first, then dotted import path."""
    fn = REGISTRY.get(kind)
    if fn is not None:
        return fn
    if "." in kind:
        module_name, _, attr = kind.rpartition(".")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise ExperimentError(f"cannot import experiment kind {kind!r}: {exc}") from exc
        fn = getattr(module, attr, None)
        if callable(fn):
            return fn
        raise ExperimentError(f"{kind!r} is not a callable experiment function")
    raise ExperimentError(
        f"unknown experiment kind {kind!r} (registered: {sorted(REGISTRY)})"
    )


# -- param helpers -----------------------------------------------------------


def _opt_float(value: Any) -> Optional[float]:
    return None if value is None else float(value)


def _qos_from(params: Dict[str, Any]) -> Optional[QoSParams]:
    """Build :class:`QoSParams` from a spec's ``qos`` table, if present."""
    table = params.get("qos")
    if table is None:
        return None
    if not isinstance(table, dict):
        raise ExperimentError("'qos' must be a table of QoSParams fields")
    known = {f.name for f in dataclasses.fields(QoSParams)}
    unknown = set(table) - known
    if unknown:
        raise ExperimentError(f"unknown qos fields: {sorted(unknown)}")
    return QoSParams(**table)


def _device_spec(params: Dict[str, Any], key: str = "device") -> Any:
    name = params.get(key, "ssd_new")
    spec = get_device_spec(name)
    scale = params.get("device_scale")
    if scale is not None:
        spec = spec.scaled(float(scale))
    return spec


# -- testbed: the generic declarative scenario -------------------------------

_WORKLOAD_TYPES = ("saturate", "paced", "think_time", "latency_governed")


@experiment("testbed")
def run_testbed(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One declarative testbed scenario.

    Params (all optional unless noted)::

        device / devices        catalogue name, or {name: catalogue-name}
        controller / controllers  Table 1 name, or {device: name}
        device_scale            spec.scaled() factor applied to every device
        qos                     QoSParams fields as a table
        mem_bytes, swap_bytes, swap_device
        cgroups                 {path: weight}           (required)
        workloads               [{cgroup, type, device?, ...kwargs}] (required)
        duration                measurement window seconds (default 1.0)
        percentiles             latency percentiles to report (default [50, 95, 99])
        trace_events            tracepoint names to capture into trace.jsonl
        trace_spans             true: track bio spans, report the stage
                                breakdown (repro.obs.spans) under 'spans'
    """
    cgroup_table = params.get("cgroups")
    workload_table = params.get("workloads")
    if not isinstance(cgroup_table, dict) or not cgroup_table:
        raise ExperimentError("testbed params need a 'cgroups' {path: weight} table")
    if not isinstance(workload_table, list) or not workload_table:
        raise ExperimentError("testbed params need a 'workloads' list")

    bed = Testbed(seed=seed, **machine_kwargs(params))
    groups = {
        path: bed.add_cgroup(path, weight=int(weight))
        for path, weight in cgroup_table.items()
    }
    duration = float(params.get("duration", 1.0))
    for entry in workload_table:
        attach_workload(bed, groups, entry, duration)

    percentiles = [float(p) for p in params.get("percentiles", [50, 95, 99])]
    trace_names = params.get("trace_events") or []
    buffer: Optional[TraceBuffer] = None
    if trace_names:
        buffer = TraceBuffer()
        buffer.attach(TRACE, events=tuple(trace_names))
    tracker: Optional[SpanTracker] = None
    if params.get("trace_spans"):
        tracker = SpanTracker().attach(TRACE)
    try:
        bed.run(duration)
    finally:
        if buffer is not None:
            buffer.detach()
        if tracker is not None:
            tracker.detach()
        bed.detach()

    cgroup_results: Dict[str, Any] = {}
    for path, group in groups.items():
        latencies: Dict[str, Optional[float]] = {}
        for pct in percentiles:
            value = bed.latency_percentile(group, pct)
            latencies[f"read_p{pct:g}"] = _opt_float(value)
        cgroup_results[path] = {"iops": float(bed.iops(group)), **latencies}
    result: Dict[str, Any] = {
        "duration": duration,
        "cgroups": cgroup_results,
        "events_processed": int(bed.sim.events_processed),
    }
    if tracker is not None:
        result["spans"] = {
            "completed": tracker.completed,
            "open": tracker.open_count,
            "breakdown": tracker.breakdown(),
        }
    if buffer is not None:
        result[TRACE_KEY] = [event.to_json() for event in buffer.events]
    return result


def _scaled_spec(name: str, params: Dict[str, Any]) -> Any:
    spec = get_device_spec(name)
    scale = params.get("device_scale")
    return spec if scale is None else spec.scaled(float(scale))


def machine_kwargs(params: Dict[str, Any]) -> Dict[str, Any]:
    """Testbed constructor kwargs shared by the testbed-shaped kinds.

    Public because other kinds (:mod:`repro.fleet.experiments`) build
    machines from the same param-table format.
    """
    kwargs: Dict[str, Any] = {}
    if "devices" in params:
        kwargs["devices"] = {
            name: _scaled_spec(spec_name, params)
            for name, spec_name in params["devices"].items()
        }
    else:
        kwargs["device"] = _device_spec(params)
    if "controllers" in params:
        kwargs["controllers"] = dict(params["controllers"])
    else:
        kwargs["controller"] = params.get("controller", "iocost")
    for key in ("mem_bytes", "swap_bytes", "swap_device"):
        if params.get(key) is not None:
            kwargs[key] = params[key]
    qos = _qos_from(params)
    if qos is not None:
        kwargs["qos"] = qos
    return kwargs


def attach_workload(
    bed: Testbed,
    groups: Dict[str, Any],
    entry: Dict[str, Any],
    duration: float,
) -> None:
    """Attach one declarative workload table to a testbed cgroup.

    Public because other kinds (:mod:`repro.fleet.experiments`) build
    testbed-shaped scenarios from the same workload-table format.
    """
    if not isinstance(entry, dict):
        raise ExperimentError("each workload must be a table")
    entry = dict(entry)
    cgroup_path = entry.pop("cgroup", None)
    wl_type = entry.pop("type", "saturate")
    device = entry.pop("device", None)
    if cgroup_path not in groups:
        raise ExperimentError(
            f"workload cgroup {cgroup_path!r} is not in the 'cgroups' table"
        )
    if wl_type not in _WORKLOAD_TYPES:
        raise ExperimentError(
            f"unknown workload type {wl_type!r} (want one of {_WORKLOAD_TYPES})"
        )
    entry.setdefault("stop_at", duration)
    group = groups[cgroup_path]
    if wl_type == "saturate":
        bed.saturate(group, device=device, **entry)
    elif wl_type == "paced":
        rate = entry.pop("rate", None)
        if rate is None:
            raise ExperimentError("paced workloads need a 'rate'")
        bed.paced(group, float(rate), device=device, **entry)
    elif wl_type == "think_time":
        bed.think_time(group, device=device, **entry)
    else:
        bed.latency_governed(group, device=device, **entry)


# -- profile_device: Figure 3's per-device cell ------------------------------


@experiment("profile_device")
def run_profile_device(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Profile one catalogued device into linear-model parameters.

    Params: ``device`` (required), ``device_scale``, ``read_duration``,
    ``write_duration``.
    """
    if "device" not in params:
        raise ExperimentError("profile_device params need a 'device'")
    spec = _device_spec(params)
    profile = profile_device(
        spec,
        seed=seed,
        read_duration=float(params.get("read_duration", 0.25)),
        write_duration=float(params.get("write_duration", 1.0)),
    )
    return {
        key: (value if isinstance(value, str) else float(value))
        for key, value in dataclasses.asdict(profile).items()
    }


# -- vrate_phases: Figure 13's online model updates --------------------------


@experiment("vrate_phases")
def run_vrate_phases(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Saturating reader under phase-wise cost-model rescaling.

    Params: ``device`` (default ``ssd_new``), ``device_scale``,
    ``phase_sec``, ``model_scales`` (one factor per phase, applied to the
    accurate parameters at each phase start), ``depth``, and the QoS knobs
    ``read_lat_target``/``read_pct``/``vrate_min``/``vrate_max``/``period``.

    Returns per-phase steady-state vrate and read-latency percentile
    (mean of the second half of each phase).
    """
    import numpy as np

    from repro.block.device import Device
    from repro.block.layer import BlockLayer
    from repro.cgroup import CgroupTree
    from repro.core.controller import IOCost
    from repro.sim import Simulator
    from repro.workloads.synthetic import ClosedLoopWorkload

    spec = _device_spec(params)
    phase_sec = float(params.get("phase_sec", 4.0))
    model_scales = [float(s) for s in params.get("model_scales", [1.0, 0.5, 2.0])]
    if not model_scales:
        raise ExperimentError("vrate_phases needs at least one model scale")
    depth = int(params.get("depth", 64))
    total = phase_sec * len(model_scales)

    sim = Simulator()
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(1,))
    )
    device = Device(sim, spec, rng)
    accurate = ModelParams.from_device_spec(spec)
    model = LinearCostModel(accurate.scaled(model_scales[0]))
    qos = QoSParams(
        read_lat_target=_opt_float(params.get("read_lat_target", 2.5e-3)),
        read_pct=float(params.get("read_pct", 90)),
        write_lat_target=None,
        vrate_min=float(params.get("vrate_min", 0.1)),
        vrate_max=float(params.get("vrate_max", 4.0)),
        period=float(params.get("period", 0.05)),
    )
    controller = IOCost(model, qos=qos)
    layer = BlockLayer(sim, device, controller)
    group = CgroupTree().create("fio")
    ClosedLoopWorkload(
        sim, layer, group, depth=depth, stop_at=total,
        seed=np.random.SeedSequence(entropy=seed, spawn_key=(2,)),
    ).start()

    phases: List[Dict[str, float]] = []
    for index, scale in enumerate(model_scales):
        if index > 0:
            model.replace_params(accurate.scaled(scale))
        sim.run(until=(index + 1) * phase_sec)
    controller.detach()

    vrate_series = controller.vrate_ctl.vrate_series
    lat_series = controller.vrate_ctl.read_lat_series

    def tail_mean(series: Any, start: float, end: float) -> float:
        values = series.slice(start, end)
        tail = values[len(values) // 2:]
        if not tail:
            raise ExperimentError("phase too short: no steady-state samples")
        return float(sum(tail) / len(tail))

    for index, scale in enumerate(model_scales):
        start, end = index * phase_sec, (index + 1) * phase_sec
        phases.append(
            {
                "model_scale": scale,
                "vrate": tail_mean(vrate_series, start, end),
                "read_lat": tail_mean(lat_series, start, end),
            }
        )
    return {"phase_sec": phase_sec, "phases": phases}


# -- mechanism_2to1: the tools/compare scenario ------------------------------


@experiment("mechanism_2to1")
def run_mechanism_2to1(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Two saturating containers at 2:1 weights under one mechanism.

    Params: ``mechanism`` (required, a Table 1 name), ``device``,
    ``device_scale``, ``duration``, ``depth``, ``vrate`` (pinned
    vrate_min = vrate_max), ``period``.
    """
    mechanism = params.get("mechanism")
    if not mechanism:
        raise ExperimentError("mechanism_2to1 params need a 'mechanism'")
    spec = _device_spec(params)
    duration = float(params.get("duration", 2.0))
    depth = int(params.get("depth", 32))
    kwargs: Dict[str, Any] = {}
    if mechanism == "blk-throttle":
        # Limits sized to the device's profiled peak, split 2:1.
        peak = spec.peak_rand_read_iops
        kwargs["limits"] = {
            "workload.slice/high": ThrottleLimits(riops=peak * 2 / 3),
            "workload.slice/low": ThrottleLimits(riops=peak / 3),
        }
    vrate = float(params.get("vrate", 0.9))
    qos = QoSParams(
        read_lat_target=None, write_lat_target=None,
        vrate_min=vrate, vrate_max=vrate,
        period=float(params.get("period", 0.05)),
    )
    bed = Testbed(device=spec, controller=mechanism, qos=qos, seed=seed, **kwargs)
    high = bed.add_cgroup("workload.slice/high", weight=200)
    low = bed.add_cgroup("workload.slice/low", weight=100)
    bed.saturate(high, depth=depth, stop_at=duration)
    bed.saturate(low, depth=depth, stop_at=duration)
    bed.run(duration)
    high_iops, low_iops = bed.iops(high), bed.iops(low)
    p90 = bed.layer.read_latency.percentile(bed.sim.now, 90)
    bed.detach()
    return {
        "mechanism": mechanism,
        "high_iops": float(high_iops),
        "low_iops": float(low_iops),
        "ratio": float(high_iops / low_iops) if low_iops else None,
        "read_p90": _opt_float(p90),
    }


# -- chaos: isolation under device faults (repro.faults) ---------------------

_PHASE_NAMES = ("pre", "fault", "post")


@experiment("chaos")
def run_chaos(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """A testbed scenario with a device fault plan injected mid-run.

    Accepts every ``testbed`` machine/workload param, plus::

        faults          [{kind, start, duration, ...}] fault tables (required;
                        see repro.faults.fault_from_dict)
        fault_device    device name the plan attaches to (default: the data
                        device)
        protected       cgroup path held to the latency target
                        (default: the first entry of 'cgroups')
        latency_target  seconds (default: the qos read_lat_target)
        io_timeout      block-layer bio timeout in seconds
        max_retries     bounded-retry budget (default 3)
        settle          drain window in seconds appended to the fault phase
                        (default 0.05) — bios delayed by a stall or hang
                        complete *after* the fault window closes, so the
                        fault phase must cover the drain to see the damage
        percentiles     read-latency percentiles per phase (default [50, 95, 99])

    The run is split at the fault plan's envelope into ``pre`` / ``fault`` /
    ``post`` phases (an unbounded hang extends the fault phase to the end of
    the run; ``settle`` extends it past the last bounded fault).  Each phase
    reports per-cgroup iops and read-latency
    percentiles computed over the successful completions *inside* that phase
    — not a trailing window — plus the block layer's error / requeue /
    timeout deltas.  The ``isolation`` figure asks whether the protected
    cgroup's fault-phase read p99 held within the latency target while the
    device misbehaved; empty phases (fault plan starting at t=0, or running
    past ``duration``) report ``null``.

    The plan's error-draw RNG is bound by the testbed to the machine seed
    (label ``faults:<device>``), so results are a pure function of
    ``(params, seed)`` like every other kind.
    """
    cgroup_table = params.get("cgroups")
    workload_table = params.get("workloads")
    if not isinstance(cgroup_table, dict) or not cgroup_table:
        raise ExperimentError("chaos params need a 'cgroups' {path: weight} table")
    if not isinstance(workload_table, list) or not workload_table:
        raise ExperimentError("chaos params need a 'workloads' list")
    fault_tables = params.get("faults")
    if not isinstance(fault_tables, list) or not fault_tables:
        raise ExperimentError("chaos params need a 'faults' list of fault tables")
    plan = plan_from_config(fault_tables)  # unseeded: the testbed binds it

    kwargs = machine_kwargs(params)
    fault_device = params.get("fault_device")
    kwargs["faults"] = plan if fault_device is None else {fault_device: plan}
    if params.get("io_timeout") is not None:
        kwargs["io_timeout"] = float(params["io_timeout"])
    kwargs["max_retries"] = int(params.get("max_retries", 3))

    bed = Testbed(seed=seed, **kwargs)
    groups = {
        path: bed.add_cgroup(path, weight=int(weight))
        for path, weight in cgroup_table.items()
    }
    duration = float(params.get("duration", 1.0))
    for entry in workload_table:
        attach_workload(bed, groups, entry, duration)

    protected = params.get("protected", next(iter(cgroup_table)))
    if protected not in cgroup_table:
        raise ExperimentError(f"protected cgroup {protected!r} is not in 'cgroups'")
    target = _opt_float(params.get("latency_target"))
    if target is None:
        target = (kwargs.get("qos") or QoSParams()).read_lat_target
    percentiles = [float(p) for p in params.get("percentiles", [50, 95, 99])]

    # The fault envelope: [0, t0) pre, [t0, t1) fault, [t1, duration] post.
    settle = float(params.get("settle", 0.05))
    if settle < 0:
        raise ExperimentError("'settle' must be >= 0")
    t0 = min(duration, max(0.0, min(f.start for f in plan.faults)))
    ends = [f.end for f in plan.faults]
    if any(math.isinf(e) for e in ends):
        t1 = duration
    else:
        t1 = min(duration, max(ends) + settle)
    t1 = max(t1, t0)

    fault_layer = bed.layer_of(fault_device)
    samples: Dict[str, List[float]] = {path: [] for path in groups}

    def on_complete(event: Any) -> None:
        fields = event.fields
        if fields["dev"] != fault_layer.dev or fields["op"] != "read":
            return
        bucket = samples.get(fields["cgroup"])
        if bucket is not None:
            bucket.append(float(fields["device_latency"]))

    subscription = TRACE.subscribe(on_complete, events=("bio_complete",))
    phases: Dict[str, Optional[Dict[str, Any]]] = {}
    fault_p99: Optional[float] = None
    try:
        for name, start, end in zip(
            _PHASE_NAMES, (0.0, t0, t1), (t0, t1, duration)
        ):
            if end - start <= 0.0:
                phases[name] = None
                continue
            errors_before = fault_layer.errored_ios
            requeues_before = fault_layer.requeued_ios
            timeouts_before = fault_layer.timed_out_ios
            for bucket in samples.values():
                bucket.clear()
            bed.run(end - start)
            cgroup_results: Dict[str, Any] = {}
            for path, group in groups.items():
                lats: Dict[str, Optional[float]] = {}
                for pct in percentiles:
                    lats[f"read_p{pct:g}"] = (
                        float(exact_percentile(samples[path], pct))
                        if samples[path] else None
                    )
                cgroup_results[path] = {"iops": float(bed.iops(group)), **lats}
            if name == "fault" and samples[protected]:
                fault_p99 = float(exact_percentile(samples[protected], 99))
            phases[name] = {
                "start": float(start),
                "end": float(end),
                "cgroups": cgroup_results,
                "errors": int(fault_layer.errored_ios - errors_before),
                "requeues": int(fault_layer.requeued_ios - requeues_before),
                "timeouts": int(fault_layer.timed_out_ios - timeouts_before),
            }
    finally:
        subscription.close()
        bed.detach()

    within: Optional[bool] = None
    if target is not None and fault_p99 is not None:
        within = bool(fault_p99 <= target)
    totals: Dict[str, Any] = {
        "errors": int(fault_layer.errored_ios),
        "requeues": int(fault_layer.requeued_ios),
        "timeouts": int(fault_layer.timed_out_ios),
    }
    # IOCost tracks the cost of failed bios it never refunds (graceful
    # degradation accounting); other Table 1 mechanisms have no such notion.
    failed_ios = getattr(fault_layer.controller, "failed_ios", None)
    if failed_ios is not None:
        totals["failed_ios"] = int(failed_ios)
        totals["failed_cost"] = float(fault_layer.controller.failed_cost)
    return {
        "duration": duration,
        "phases": phases,
        "isolation": {
            "protected": protected,
            "latency_target": _opt_float(target),
            "fault_read_p99": fault_p99,
            "within_target": within,
        },
        "totals": totals,
        "events_processed": int(bed.sim.events_processed),
    }


__all__ = [
    "ExperimentError",
    "ExperimentFn",
    "REGISTRY",
    "TRACE_KEY",
    "attach_workload",
    "experiment",
    "machine_kwargs",
    "resolve",
    "run_chaos",
    "run_mechanism_2to1",
    "run_profile_device",
    "run_testbed",
    "run_vrate_phases",
]
