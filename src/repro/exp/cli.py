"""``python -m repro.exp`` — run, inspect, and collect experiment sweeps.

Three subcommands over one artifact store:

* ``run SPEC`` — expand the sweep, execute misses across a worker pool,
  print the per-cell table, and emit the ``BENCH_sweep.json`` perf
  trajectory (per-run wall seconds, cache-hit rate, parallel speedup).
  ``--min-hit-rate`` turns the hit rate into an exit-code assertion so CI
  can verify that a second invocation was served from cache.
* ``status SPEC`` — cache verdict per cell without executing anything.
* ``collect`` — merge every stored run into one JSON document.

This module is the only place in :mod:`repro.exp` that touches the wall
clock: it injects a real clock into the otherwise clock-free runner.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, List, Optional, Sequence

from repro.analysis.report import Table
from repro.exp.cache import ResultCache
from repro.exp.grid import expand
from repro.exp.runner import SweepReport, run_sweep, write_bench_json
from repro.exp.spec import ExperimentSpec, SpecError, load_spec
from repro.exp.store import ArtifactStore

BENCH_FILE = "BENCH_sweep.json"


def wall_clock() -> float:
    """Real elapsed-seconds clock, injected into the runner by the CLI.

    The one sanctioned wall-clock read in this package: front-ends may
    measure real time (same carve-out as ``repro.tools``).
    """
    return time.perf_counter()  # CLI timing only - simlint: disable=no-wallclock


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.exp",
        description="Declarative experiment sweeps: run, status, collect.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="execute a sweep (cache-aware)")
    run_cmd.add_argument("spec", help="path to a .toml or .json sweep spec")
    run_cmd.add_argument("--workers", type=int, default=1)
    run_cmd.add_argument(
        "--out", default=".",
        help="artifact store root (runs land under <out>/runs/)",
    )
    run_cmd.add_argument(
        "--force", action="store_true", help="re-execute every cell"
    )
    run_cmd.add_argument("--retries", type=int, default=1)
    run_cmd.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="per-run wall-clock limit; expired runs are killed and "
             "recorded with status 'timeout'",
    )
    run_cmd.add_argument(
        "--bench-json", default=None,
        help=f"perf-trajectory path (default <out>/{BENCH_FILE})",
    )
    run_cmd.add_argument(
        "--min-hit-rate", type=float, default=None,
        help="exit non-zero unless cache hit rate >= this fraction",
    )
    run_cmd.add_argument("--quiet", action="store_true")

    status_cmd = sub.add_parser("status", help="cache verdict per sweep cell")
    status_cmd.add_argument("spec")
    status_cmd.add_argument("--out", default=".")

    collect_cmd = sub.add_parser("collect", help="merge stored runs to JSON")
    collect_cmd.add_argument("--out", default=".")
    collect_cmd.add_argument(
        "--output", default=None, help="write here instead of stdout"
    )
    return parser


def _load(path: str) -> ExperimentSpec:
    try:
        return load_spec(path)
    except SpecError as exc:
        raise SystemExit(f"repro.exp: {exc}")


def _print_report(report: SweepReport) -> None:
    table = Table(
        f"Sweep {report.name} [{report.sweep_hash}] — "
        f"{report.workers} worker(s)",
        ["cell", "status", "source", "attempts", "wall"],
    )
    for outcome in report.outcomes:
        table.add_row(
            outcome.run.describe(),
            outcome.status,
            "cache" if outcome.cached else "executed",
            outcome.attempts,
            f"{outcome.wall_sec:.2f}s",
        )
    table.print()
    speedup = report.speedup_vs_serial
    print(
        f"\n{report.runs_total} runs: {report.cache_hits} cached, "
        f"{report.executed} executed, {report.failures} failed"
        + (f" ({report.timeouts} timed out)" if report.timeouts else "")
        + f"; elapsed {report.elapsed_wall_sec:.2f}s"
        + (f", speedup vs serial {speedup:.2f}x" if speedup is not None else "")
    )


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load(args.spec)
    store = ArtifactStore(args.out)
    report = run_sweep(
        spec,
        store,
        workers=args.workers,
        clock=wall_clock,
        force=args.force,
        retries=args.retries,
        timeout_sec=args.timeout,
    )
    bench_path = (
        Path(args.bench_json) if args.bench_json else store.root / BENCH_FILE
    )
    write_bench_json(report, bench_path)
    if not args.quiet:
        _print_report(report)
        print(f"perf trajectory: {bench_path}")
    if report.failures:
        for outcome in report.outcomes:
            if not outcome.ok and outcome.error is not None:
                print(
                    f"FAILED {outcome.run.describe()}: "
                    f"{outcome.error['type']}: {outcome.error['message']}",
                    file=sys.stderr,
                )
        return 1
    if args.min_hit_rate is not None and report.hit_rate < args.min_hit_rate:
        print(
            f"cache hit rate {report.hit_rate:.0%} below required "
            f"{args.min_hit_rate:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    spec = _load(args.spec)
    store = ArtifactStore(args.out)
    cache = ResultCache(store)
    table = Table(
        f"Sweep {spec.name} [{spec.sweep_hash}] — cache status",
        ["cell", "run", "verdict"],
    )
    hits = 0
    runs = expand(spec)
    for run in runs:
        decision = cache.lookup(run)
        hits += 1 if decision.hit else 0
        table.add_row(
            run.describe(),
            run.run_hash,
            "cached" if decision.hit else f"pending ({decision.reason})",
        )
    table.print()
    print(f"\n{hits}/{len(runs)} cells cached")
    return 0


def _cmd_collect(args: argparse.Namespace) -> int:
    store = ArtifactStore(args.out)
    document = json.dumps(store.collect(), indent=2, sort_keys=True)
    if args.output:
        Path(args.output).write_text(document + "\n")
    else:
        print(document)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(
        list(argv) if argv is not None else None
    )
    handlers = {"run": _cmd_run, "status": _cmd_status, "collect": _cmd_collect}
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # stdout piped into a pager/head that quit
        return 0


__all__: List[Any] = ["build_parser", "main", "wall_clock", "BENCH_FILE"]


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
