"""Entry point: ``python -m repro.exp``."""

from repro.exp.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
