"""Declarative experiment specs: parse, validate, canonicalise, hash.

An :class:`ExperimentSpec` describes a whole sweep — the experiment kind
(a registered function in :mod:`repro.exp.experiments`), the base
parameter tree handed to that function, the machine seed, and the sweep
axes.  Two axis families exist, mirroring fio's job expansion and every
hyper-parameter search tool since:

* ``grid`` — the Cartesian product of every axis (2 devices x 2
  controllers x 2 weights = 8 cells);
* ``zip`` — axes iterated in lockstep (paired values, one cell per row).

Axis names are dotted paths into ``base`` (``"device"``,
``"qos.read_lat_target"``, ``"workloads.0.depth"``), applied by
:func:`repro.exp.grid.set_by_path`.

Hashing is content-addressed: :func:`canonical_json` renders any spec or
run to one byte string (sorted keys, compact separators, ``allow_nan``
off so a NaN can never silently poison a cache key) and
:func:`content_hash` digests it.  Everything downstream — the artifact
store layout, the result cache, per-run seeds — keys off these hashes,
which is what makes re-running a sweep after editing one axis re-execute
only the changed cells.

Specs load from plain dicts, JSON files, or TOML files (TOML needs
``tomllib``, Python >= 3.11, or a ``tomli`` backport; JSON always works).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union


class SpecError(ValueError):
    """Raised for malformed experiment specs or sweep axes."""


def canonical_json(obj: Any) -> str:
    """Render ``obj`` as canonical JSON: sorted keys, compact, no NaN.

    The byte string is the content-addressed identity of specs, runs and
    results, so it must be stable across processes, Python versions and
    dict insertion orders.
    """
    try:
        return json.dumps(
            obj, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise SpecError(f"spec is not canonically serialisable: {exc}") from exc


def content_hash(obj: Any) -> str:
    """Hex content hash (sha256, 16 hex chars) of ``obj``'s canonical JSON."""
    digest = hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()
    return digest[:16]


def seed_entropy(obj: Any) -> int:
    """Derive deterministic ``SeedSequence`` entropy from ``obj``'s content.

    Independent of scheduling, worker count, and sweep-cell order: the
    entropy depends only on what the run *is*.
    """
    digest = hashlib.sha256(canonical_json(obj).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _check_axes(axes: Mapping[str, Any], family: str) -> Dict[str, Tuple[Any, ...]]:
    out: Dict[str, Tuple[Any, ...]] = {}
    for name, values in axes.items():
        if not isinstance(name, str) or not name:
            raise SpecError(f"{family} axis names must be non-empty strings")
        if not isinstance(values, (list, tuple)) or not values:
            raise SpecError(
                f"{family} axis {name!r} must be a non-empty list of values"
            )
        out[name] = tuple(values)
    return out


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative sweep: kind + base params + seed + axes.

    ``name`` is presentation-only (reports, CLI); it is deliberately
    excluded from content hashes so renaming a sweep never invalidates
    its cache.
    """

    name: str
    kind: str = "testbed"
    base: Mapping[str, Any] = field(default_factory=dict)
    grid: Mapping[str, Tuple[Any, ...]] = field(default_factory=dict)
    zip_axes: Mapping[str, Tuple[Any, ...]] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("spec needs a non-empty name")
        if not self.kind:
            raise SpecError("spec needs an experiment kind")
        if not isinstance(self.seed, int):
            raise SpecError("seed must be an int")
        object.__setattr__(self, "base", dict(self.base))
        object.__setattr__(self, "grid", _check_axes(self.grid, "grid"))
        object.__setattr__(self, "zip_axes", _check_axes(self.zip_axes, "zip"))
        overlap = set(self.grid) & set(self.zip_axes)
        if overlap:
            raise SpecError(f"axes in both grid and zip: {sorted(overlap)}")
        lengths = {len(values) for values in self.zip_axes.values()}
        if len(lengths) > 1:
            raise SpecError(
                "zip axes must all have the same length, got "
                f"{sorted(lengths)}"
            )
        # Fail early if any part cannot be content-addressed.
        canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Build a spec from a plain mapping (the TOML/JSON document shape)."""
        if not isinstance(data, Mapping):
            raise SpecError(f"spec document must be a mapping, got {type(data).__name__}")
        known = {"name", "kind", "base", "grid", "zip", "seed"}
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown spec keys: {sorted(unknown)}")
        if "name" not in data:
            raise SpecError("spec document needs a 'name'")
        return cls(
            name=str(data["name"]),
            kind=str(data.get("kind", "testbed")),
            base=dict(data.get("base", {})),
            grid=dict(data.get("grid", {})),
            zip_axes=dict(data.get("zip", {})),
            seed=int(data.get("seed", 0)),
        )

    def to_dict(self) -> Dict[str, Any]:
        """The round-trippable document form (``zip_axes`` back to ``zip``)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "base": dict(self.base),
            "grid": {name: list(values) for name, values in self.grid.items()},
            "zip": {name: list(values) for name, values in self.zip_axes.items()},
            "seed": self.seed,
        }

    @property
    def sweep_hash(self) -> str:
        """Content hash of the whole sweep (name excluded — see class doc)."""
        doc = self.to_dict()
        del doc["name"]
        return content_hash(doc)

    def replace_axis(self, axis: str, values: List[Any]) -> "ExperimentSpec":
        """A copy of this spec with one grid/zip axis's values replaced."""
        if axis in self.grid:
            grid = dict(self.grid)
            grid[axis] = tuple(values)
            return ExperimentSpec(
                self.name, self.kind, self.base, grid, self.zip_axes, self.seed
            )
        if axis in self.zip_axes:
            zipped = dict(self.zip_axes)
            zipped[axis] = tuple(values)
            return ExperimentSpec(
                self.name, self.kind, self.base, self.grid, zipped, self.seed
            )
        raise SpecError(f"no such axis {axis!r}")


def _load_toml(path: Path) -> Dict[str, Any]:
    try:
        import tomllib as toml_reader  # Python >= 3.11
    except ImportError:  # pragma: no cover - exercised only on 3.9/3.10
        try:
            import tomli as toml_reader  # type: ignore[no-redef]
        except ImportError:
            raise SpecError(
                f"cannot read {path}: TOML support needs Python >= 3.11 "
                "(tomllib) or the 'tomli' package; use a .json spec instead"
            ) from None
    with path.open("rb") as handle:
        return toml_reader.load(handle)


def load_document(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a ``.toml``/``.json`` spec document into a plain mapping.

    The shared front door for every declarative spec format in the repo:
    experiment sweeps here, cluster specs in :mod:`repro.fleet.spec`.
    """
    path = Path(path)
    if not path.is_file():
        raise SpecError(f"no such spec file: {path}")
    if path.suffix == ".toml":
        return _load_toml(path)
    if path.suffix == ".json":
        document = json.loads(path.read_text())
        if not isinstance(document, dict):
            raise SpecError(f"{path}: spec document must be a JSON object")
        return document
    raise SpecError(
        f"unsupported spec extension {path.suffix!r} (want .toml or .json)"
    )


def load_spec(path: Union[str, Path]) -> ExperimentSpec:
    """Load a spec document from a ``.toml`` or ``.json`` file."""
    return ExperimentSpec.from_dict(load_document(path))


__all__ = [
    "ExperimentSpec",
    "SpecError",
    "canonical_json",
    "content_hash",
    "load_document",
    "load_spec",
    "seed_entropy",
]
