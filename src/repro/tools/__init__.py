"""Command-line tools mirroring the paper's open-sourced tooling.

* ``python -m repro.tools.profile <device>`` — fio-style device profiling
  into an ``io.cost.model`` configuration line (§3.2).
* ``python -m repro.tools.tune <device>`` — the §3.4 two-scenario QoS
  sweep deriving vrate bounds.
* ``python -m repro.tools.compare <device>`` — run the canonical
  proportional-control scenario under every mechanism and print the
  comparison table.
* ``python -m repro.tools.monitor <trace.jsonl>`` — re-render a saved
  per-period monitor stream in ``iocost_monitor.py`` style (the live
  :class:`repro.tools.monitor.Monitor` writes such streams).
"""
