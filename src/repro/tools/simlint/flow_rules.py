"""Interprocedural v2 rules: unit propagation and RNG stream labels.

* ``unit-flow`` — the PR-2 ``wait_usec`` incident (a ``_usec`` counter
  accumulated in seconds) was fixed by the per-expression ``unit-suffix``
  rule, but only when the mixing happens *inside one expression*.  This
  rule propagates unit tags (``_usec``/``_sec``/``_msec`` time units and
  ``_cost`` device-seconds) across the module call graph: through call
  arguments into parameter names, through return values into assignment
  targets, and through attribute stores — so ``self.total_usec =
  self._window_sec()`` is caught even when the two suffixes sit two calls
  apart.
* ``rng-stream-labels`` — every ``rng_for(...)``/``noise_stream(...)``
  label must be a literal-derivable string (a string constant, or an
  f-string with a distinguishing literal prefix) and unique within its
  enclosing scope.  Two consumers that pass the same label silently share
  one bit stream — each sees every *other* draw of a single sequence, the
  statistical equivalent of seeding both with the same seed — and a label
  built from an arbitrary expression cannot be audited for that statically.

Both rules only ever act on what resolves *within the module*
(:class:`~repro.tools.simlint.symbols.ModuleIndex`); anything else is
opaque and never guessed at.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.tools.simlint.core import FileContext, Finding, rule
from repro.tools.simlint.rules import _finding, _time_unit
from repro.tools.simlint.symbols import FunctionInfo, ModuleIndex

# -- unit tags ---------------------------------------------------------------

#: Cost-carrying name suffixes (IOCost absolute cost, in device seconds —
#: deliberately a distinct tag: adding a cost to a wall-clock duration is
#: a category error even though both are float seconds).
_COST_SUFFIXES = ("_cost", "_abs_cost")


def _name_tag(name: str) -> Optional[str]:
    """Unit tag carried by a name, or None for untagged names."""
    unit = _time_unit(name)
    if unit is not None:
        return unit
    for suffix in _COST_SUFFIXES:
        if name.endswith(suffix) or name == suffix[1:]:
            return "cost"
    return None


class _UnitEnv:
    """Expression → unit tag evaluation for one module.

    ``return_tags`` maps qualname → tag for functions whose return value
    provably carries one unit (computed to fixpoint so a chain of
    ``return self._inner()`` hops propagates).
    """

    def __init__(self, index: ModuleIndex) -> None:
        self.index = index
        self.return_tags: Dict[str, Optional[str]] = {}
        self._compute_return_tags()

    def _compute_return_tags(self) -> None:
        # Seed: a function *named* with a unit suffix declares its return
        # unit; everything else starts unknown.
        for qualname, info in self.index.functions.items():
            name = qualname.rsplit(".", 1)[-1]
            self.return_tags[qualname] = _name_tag(name)
        # Fixpoint over return-statement expressions (bounded: tags only
        # ever go from None to a value, so |functions| passes suffice).
        for _ in range(len(self.index.functions) or 1):
            changed = False
            for qualname, info in self.index.functions.items():
                if self.return_tags[qualname] is not None:
                    continue
                tags: Set[str] = set()
                bare_return = False
                for node in info.own_nodes():
                    if isinstance(node, ast.Return):
                        if node.value is None:
                            bare_return = True
                            continue
                        tag = self.expr_tag(node.value, info)
                        if tag is None:
                            bare_return = True  # untagged path: stay unknown
                        else:
                            tags.add(tag)
                if len(tags) == 1 and not bare_return:
                    self.return_tags[qualname] = tags.pop()
                    changed = True
            if not changed:
                break

    def expr_tag(
        self, node: ast.expr, enclosing: Optional[FunctionInfo]
    ) -> Optional[str]:
        """Unit tag of an expression, or None when untagged/unknowable.

        Multiplication and division drop the tag (they are how legitimate
        unit conversions are written: ``x_sec * 1e6``); addition and
        subtraction preserve a tag only when both sides agree.
        """
        if isinstance(node, ast.Name):
            return _name_tag(node.id)
        if isinstance(node, ast.Attribute):
            return _name_tag(node.attr)
        if isinstance(node, ast.Call):
            callee = self.index.resolve_call(node, enclosing)
            if callee is not None:
                return self.return_tags.get(callee)
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            left = self.expr_tag(node.left, enclosing)
            right = self.expr_tag(node.right, enclosing)
            if left is not None and right is not None:
                return left if left == right else None
            return left if right is None else right
        if isinstance(node, ast.UnaryOp):
            return self.expr_tag(node.operand, enclosing)
        if isinstance(node, ast.IfExp):
            body = self.expr_tag(node.body, enclosing)
            orelse = self.expr_tag(node.orelse, enclosing)
            return body if body == orelse else None
        return None


def _mismatch(left: Optional[str], right: Optional[str]) -> bool:
    return left is not None and right is not None and left != right


@rule(
    "unit-flow",
    "unit tags (_usec/_sec/_cost) must survive call, return, and "
    "assignment boundaries (interprocedural)",
)
def check_unit_flow(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    index = ModuleIndex(tree)
    env = _UnitEnv(index)

    def body_findings(
        info: Optional[FunctionInfo], nodes: Iterable[ast.AST]
    ) -> Iterable[Finding]:
        for node in nodes:
            # 1. Assignment flow: ``x_usec = <sec-tagged expr>`` — covers
            # plain names, attribute stores, and annotated assigns.
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = node.value
                if value is None:
                    continue
                value_tag = env.expr_tag(value, info)
                if value_tag is None:
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        target_tag = _name_tag(target.id)
                        label = target.id
                    elif isinstance(target, ast.Attribute):
                        target_tag = _name_tag(target.attr)
                        label = target.attr
                    else:
                        continue
                    if _mismatch(target_tag, value_tag):
                        yield _finding(
                            ctx,
                            node,
                            "unit-flow",
                            f"{label!r} is tagged {target_tag} but is assigned "
                            f"a {value_tag}-tagged value (convert before "
                            "storing)",
                        )
            # 2. Call-argument flow: a tagged argument into a parameter
            # whose name declares a different unit.
            elif isinstance(node, ast.Call):
                callee_name = index.resolve_call(node, info)
                if callee_name is None:
                    continue
                callee = index.functions[callee_name]
                for param, arg in index.pair_arguments(node, callee):
                    param_tag = _name_tag(param)
                    arg_tag = env.expr_tag(arg, info)
                    if _mismatch(param_tag, arg_tag):
                        yield _finding(
                            ctx,
                            arg,
                            "unit-flow",
                            f"argument to {callee_name}() parameter "
                            f"{param!r} ({param_tag}) carries unit "
                            f"{arg_tag}",
                        )
            # 3. Return flow: the function's name declares a unit the
            # returned expression contradicts.
            elif isinstance(node, ast.Return) and info is not None:
                declared = _name_tag(info.qualname.rsplit(".", 1)[-1])
                if declared is None or node.value is None:
                    continue
                value_tag = env.expr_tag(node.value, info)
                if _mismatch(declared, value_tag):
                    yield _finding(
                        ctx,
                        node,
                        "unit-flow",
                        f"{info.qualname}() is tagged {declared} but returns "
                        f"a {value_tag}-tagged value",
                    )

    for info in index.functions.values():
        yield from body_findings(info, info.own_nodes())
    # Module top level (constants wired from other tagged constants).
    top_level: List[ast.AST] = []
    for stmt in tree.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            top_level.extend(ast.walk(stmt))
    yield from body_findings(None, top_level)


# -- rng-stream-labels -------------------------------------------------------

#: Callables whose argument is a stream label: name → index of the label
#: argument (``noise_stream(rng, label)`` has it second).
_LABELED_STREAM_FNS: Dict[str, int] = {"rng_for": 0, "noise_stream": 1}


def _label_expr(call: ast.Call, position: int) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == "label":
            return keyword.value
    if len(call.args) > position and not any(
        isinstance(arg, ast.Starred) for arg in call.args[: position + 1]
    ):
        return call.args[position]
    return None


def _label_skeleton(node: ast.expr) -> Optional[str]:
    """Literal skeleton of a label expression, or None if not derivable.

    A constant string is its own skeleton.  An f-string is derivable when
    it *leads* with a non-empty literal (the namespace prefix that keeps
    two call sites' streams apart); its placeholders render as ``{}`` so
    ``f"device:{a}"`` and ``f"device:{b}"`` share a skeleton — same
    template, same collision risk class.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if not (
            isinstance(head, ast.Constant)
            and isinstance(head.value, str)
            and head.value
        ):
            return None
        parts: List[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            elif isinstance(value, ast.FormattedValue):
                parts.append("{}")
            else:
                return None
        return "".join(parts)
    return None


@rule(
    "rng-stream-labels",
    "rng_for()/noise_stream() labels must be literal-derivable strings, "
    "unique per scope (aliased labels share one bit stream)",
)
def check_rng_stream_labels(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    index = ModuleIndex(tree)
    # Scope → (callee, skeleton) → first-use line, for duplicate detection.
    seen: Dict[Tuple[str, str, str], int] = {}

    def scope_calls() -> Iterable[Tuple[str, ast.Call]]:
        for info in index.functions.values():
            for node in info.own_nodes():
                if isinstance(node, ast.Call):
                    yield info.qualname, node
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    yield "<module>", node

    for scope, call in scope_calls():
        func = call.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id
            if isinstance(func, ast.Name)
            else None
        )
        if name not in _LABELED_STREAM_FNS:
            continue
        label = _label_expr(call, _LABELED_STREAM_FNS[name])
        if label is None:
            continue  # splat or missing: nothing to reason about
        skeleton = _label_skeleton(label)
        if skeleton is None:
            yield _finding(
                ctx,
                label,
                "rng-stream-labels",
                f"{name}() label is not literal-derivable; use a string "
                "constant or an f-string with a literal prefix so stream "
                "identity is auditable",
            )
            continue
        if skeleton == "" or skeleton == "{}":
            yield _finding(
                ctx,
                label,
                "rng-stream-labels",
                f"{name}() label has no distinguishing literal content",
            )
            continue
        key = (scope, name, skeleton)
        first = seen.get(key)
        if first is not None:
            yield _finding(
                ctx,
                label,
                "rng-stream-labels",
                f"{name}() label {skeleton!r} duplicates the label on line "
                f"{first} in the same scope; two consumers would share one "
                "bit stream",
            )
        else:
            seen[key] = label.lineno
