"""The trace-catalogue rule: tracepoint names and emit() fields, statically.

``TracePoint.emit`` validates its fields at runtime — but only on code
paths that run *while tracing is enabled*, which CI never exercises for
every site.  A typo'd event name or field therefore survives until someone
attaches a monitor in anger.  This rule closes that gap by resolving every
tracepoint reference against ``EVENT_CATALOGUE`` in ``repro/obs/trace.py``
at lint time:

* ``registry.point("name")`` / ``REGISTRY.points["name"]`` lookups and
  ``subscribe(..., events=[...])`` literals must name catalogued events;
* ``<point>.emit(now, field=...)`` keyword sets must be a subset of the
  event's declared fields **and** must supply every required field
  (required = declared minus ``OPTIONAL_FIELDS``), matching the runtime
  contract exactly.

The binding between a variable and its event is recovered from the
idiomatic cache assignments (``self._tp_submit = TRACE.points["bio_submit"]``
or module-level ``_TP_X = TRACE.point("x")``); emits through bindings the
rule cannot resolve are skipped, never guessed.

The catalogue itself is read from the ``repro/obs/trace.py`` *source* (AST
literal extraction), not imported — the linter stays usable on a tree too
broken to import.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.tools.simlint.core import FileContext, Finding, LintError, rule

#: Where the catalogue lives relative to this file
#: (``repro/tools/simlint/`` -> ``repro/obs/trace.py``).
_TRACE_SOURCE = Path(__file__).resolve().parents[2] / "obs" / "trace.py"

_CATALOGUE_CACHE: Optional[Tuple[Dict[str, Tuple[str, ...]], frozenset]] = None


def _literal_set(node: ast.expr) -> Optional[frozenset]:
    """Evaluate ``frozenset({...})`` / set / tuple / list literals."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "frozenset" and node.args:
            node = node.args[0]
        else:
            return None
    try:
        value = ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return None
    return frozenset(value)


def load_catalogue(
    source_path: Optional[Path] = None,
) -> Tuple[Dict[str, Tuple[str, ...]], frozenset]:
    """Extract (EVENT_CATALOGUE, OPTIONAL_FIELDS) from trace.py's source."""
    global _CATALOGUE_CACHE
    if source_path is None and _CATALOGUE_CACHE is not None:
        return _CATALOGUE_CACHE
    path = _TRACE_SOURCE if source_path is None else source_path
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except (OSError, SyntaxError) as exc:
        raise LintError(f"cannot load tracepoint catalogue from {path}: {exc}")
    catalogue: Optional[Dict[str, Tuple[str, ...]]] = None
    optional: frozenset = frozenset()
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name) or value is None:
                continue
            if target.id == "EVENT_CATALOGUE":
                raw = ast.literal_eval(value)
                catalogue = {name: tuple(fields) for name, fields in raw.items()}
            elif target.id == "OPTIONAL_FIELDS":
                extracted = _literal_set(value)
                if extracted is not None:
                    optional = extracted
    if catalogue is None:
        raise LintError(f"no EVENT_CATALOGUE literal found in {path}")
    result = (catalogue, optional)
    if source_path is None:
        _CATALOGUE_CACHE = result
    return result


def _config_catalogue(
    ctx: FileContext,
) -> Tuple[Mapping[str, Tuple[str, ...]], frozenset]:
    if ctx.config.catalogue is not None:
        optional = ctx.config.optional_fields
        return ctx.config.catalogue, frozenset() if optional is None else optional
    return load_catalogue()


def _const_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _event_of(node: ast.expr) -> Optional[Tuple[str, ast.AST]]:
    """If ``node`` is a tracepoint lookup with a literal name, return
    (event_name, node-to-report-on)."""
    if isinstance(node, ast.Subscript):
        value = node.value
        if isinstance(value, ast.Attribute) and value.attr == "points":
            name = _const_str(node.slice)
            if name is not None:
                return name, node
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "point" and node.args:
            name = _const_str(node.args[0])
            if name is not None:
                return name, node
    return None


def _subscribe_events(node: ast.Call) -> Iterable[Tuple[str, ast.AST]]:
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "subscribe"):
        return
    for keyword in node.keywords:
        if keyword.arg != "events":
            continue
        if isinstance(keyword.value, (ast.List, ast.Tuple, ast.Set)):
            for element in keyword.value.elts:
                name = _const_str(element)
                if name is not None:
                    yield name, element


@rule(
    "trace-catalogue",
    "tracepoint names and emit() field sets must match EVENT_CATALOGUE",
)
def check_trace_catalogue(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    catalogue, optional = _config_catalogue(ctx)

    def unknown_event(name: str, node: ast.AST) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule="trace-catalogue",
            message=f"unknown tracepoint {name!r} (not in EVENT_CATALOGUE)",
        )

    # Pass 1: every literal lookup resolves, and bindings are recorded.
    bound_names: Dict[str, str] = {}
    bound_attrs: Dict[str, str] = {}
    for node in ast.walk(tree):
        resolved = _event_of(node) if isinstance(node, ast.expr) else None
        if resolved is not None:
            name, report_on = resolved
            if name not in catalogue:
                yield unknown_event(name, report_on)
        if isinstance(node, ast.Call):
            for name, element in _subscribe_events(node):
                if name not in catalogue:
                    yield unknown_event(name, element)
        if isinstance(node, ast.Assign):
            resolved = _event_of(node.value)
            if resolved is None:
                continue
            event_name = resolved[0]
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound_names[target.id] = event_name
                elif isinstance(target, ast.Attribute):
                    bound_attrs[target.attr] = event_name
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Hot paths cache a point as a parameter default:
            # ``def _issue(self, bio, _tp=TRACE.points["bio_issue"]): ...``
            args = node.args
            positional = list(args.posonlyargs) + list(args.args)
            for arg, default in zip(positional[-len(args.defaults):], args.defaults):
                resolved = _event_of(default)
                if resolved is not None:
                    bound_names[arg.arg] = resolved[0]
            for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
                if kw_default is None:
                    continue
                resolved = _event_of(kw_default)
                if resolved is not None:
                    bound_names[arg.arg] = resolved[0]

    # Pass 2: emit() keyword sets against the bound event's schema.
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
            continue
        base = func.value
        event: Optional[str] = None
        resolved = _event_of(base)
        if resolved is not None:
            event = resolved[0]
        elif isinstance(base, ast.Name):
            event = bound_names.get(base.id)
        elif isinstance(base, ast.Attribute):
            event = bound_attrs.get(base.attr)
        if event is None or event not in catalogue:
            continue  # unresolvable binding (or already reported unknown)
        fields = catalogue[event]
        given = [kw.arg for kw in node.keywords if kw.arg is not None]
        has_splat = any(kw.arg is None for kw in node.keywords)
        unknown = sorted(set(given) - set(fields))
        if unknown:
            yield Finding(
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                rule="trace-catalogue",
                message=(
                    f"emit on {event!r} passes field(s) {unknown} not in "
                    "its EVENT_CATALOGUE schema"
                ),
            )
        if not has_splat:
            missing = sorted(set(fields) - set(given) - optional)
            if missing:
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="trace-catalogue",
                    message=(
                        f"emit on {event!r} omits required field(s) "
                        f"{missing}"
                    ),
                )
