"""Module entry point: ``python -m repro.tools.simlint [paths]``."""

import sys

from repro.tools.simlint.cli import main

if __name__ == "__main__":
    sys.exit(main())
