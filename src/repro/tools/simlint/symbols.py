"""Module-level symbol table and call graph for interprocedural rules.

simlint's original rules are per-expression: each looks at one AST node and
decides.  The v2 rules (``unit-flow``, ``dual-path-parity``) need to reason
*across* function boundaries — "this argument flows into that parameter",
"this fast path transitively emits the same tracepoints as its slow twin".
This module supplies the shared machinery, deliberately lightweight:

* :class:`FunctionInfo` — one top-level function or class method with its
  parameters and body (nested ``def``/``lambda`` bodies are excluded from a
  function's own statements: they run when *called*, not when defined).
* :class:`ModuleIndex` — the symbol table for one module: every function
  keyed by qualname (``Class.method`` / ``func``), plus call resolution
  (``self.m()`` → the enclosing class's ``m``, ``name()`` → the module
  function, ``Class.m()`` → that class's method) and a memoised transitive
  closure over the resulting call graph.

The index is **module-local** by design.  Calls into other modules resolve
to ``None`` and analyses must treat them as opaque — the right bias for a
linter: never guess, only reason about what is provably in front of it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple


@dataclass
class FunctionInfo:
    """One indexed function: identity, shape, and its own (non-nested) body."""

    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str]
    #: Positional parameter names in order (``self``/``cls`` included for
    #: methods; call resolution accounts for the receiver).
    params: List[str] = field(default_factory=list)
    #: Keyword-only parameter names.
    kwonly: List[str] = field(default_factory=list)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def own_nodes(self) -> Iterator[ast.AST]:
        """Walk the function body, excluding nested function/lambda bodies.

        The def/lambda *node* itself is yielded (so default-argument
        expressions stay visible) but its body is not descended into.
        """
        stack: List[ast.AST] = list(getattr(self.node, "body", []))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # nested body executes on call, not here
            stack.extend(ast.iter_child_nodes(node))


def _positional_params(node: ast.AST) -> List[str]:
    args = node.args  # type: ignore[attr-defined]
    return [a.arg for a in list(args.posonlyargs) + list(args.args)]


class ModuleIndex:
    """Symbol table + call graph for one parsed module."""

    def __init__(self, tree: ast.Module) -> None:
        self.tree = tree
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, List[str]] = {}
        self._calls_memo: Dict[str, List[Tuple[ast.Call, Optional[str]]]] = {}
        self._reach_memo: Dict[str, Set[str]] = {}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add(node, None)
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = []
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add(item, node.name)
                        self.classes[node.name].append(item.name)

    def _add(self, node: ast.AST, class_name: Optional[str]) -> None:
        name = node.name  # type: ignore[attr-defined]
        qualname = f"{class_name}.{name}" if class_name else name
        info = FunctionInfo(
            qualname=qualname,
            node=node,
            class_name=class_name,
            params=_positional_params(node),
            kwonly=[a.arg for a in node.args.kwonlyargs],  # type: ignore[attr-defined]
        )
        # First definition wins on duplicates (e.g. version-gated redefs);
        # a linter must stay deterministic, not clever.
        self.functions.setdefault(qualname, info)

    # -- call resolution ----------------------------------------------------

    def resolve_call(
        self, call: ast.Call, enclosing: Optional[FunctionInfo]
    ) -> Optional[str]:
        """Qualname of the module-local callee, or None when unresolvable."""
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.functions:
                return func.id
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if base in ("self", "cls") and enclosing is not None and enclosing.class_name:
                qualname = f"{enclosing.class_name}.{attr}"
                if qualname in self.functions:
                    return qualname
                return None
            if base in self.classes:
                qualname = f"{base}.{attr}"
                if qualname in self.functions:
                    return qualname
        return None

    def call_sites(self, qualname: str) -> List[Tuple[ast.Call, Optional[str]]]:
        """Every call in ``qualname``'s own body with its resolved callee."""
        cached = self._calls_memo.get(qualname)
        if cached is not None:
            return cached
        info = self.functions[qualname]
        sites: List[Tuple[ast.Call, Optional[str]]] = []
        for node in info.own_nodes():
            if isinstance(node, ast.Call):
                sites.append((node, self.resolve_call(node, info)))
        self._calls_memo[qualname] = sites
        return sites

    def reach(self, qualname: str) -> Set[str]:
        """Transitive closure of module-local callees, including ``qualname``.

        Cycle-safe: recursion is cut at members of the current walk; the
        memo only caches completed closures.
        """
        cached = self._reach_memo.get(qualname)
        if cached is not None:
            return cached
        closure: Set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            if current in closure or current not in self.functions:
                continue
            closure.add(current)
            for _call, callee in self.call_sites(current):
                if callee is not None and callee not in closure:
                    stack.append(callee)
        self._reach_memo[qualname] = closure
        return closure

    # -- receiver-aware argument pairing -------------------------------------

    def pair_arguments(
        self, call: ast.Call, callee: FunctionInfo
    ) -> List[Tuple[str, ast.expr]]:
        """Match call arguments to the callee's parameter names.

        Returns ``(param_name, argument_expression)`` pairs for positional
        and keyword arguments.  For method calls through a receiver
        (``self.m(x)`` / ``obj.m(x)``) the leading ``self`` parameter is
        skipped; ``*args``/``**kwargs`` splats end positional pairing (the
        linter never guesses how a splat lines up).
        """
        params = list(callee.params)
        if callee.is_method and isinstance(call.func, ast.Attribute):
            params = params[1:]  # receiver provides self/cls
        pairs: List[Tuple[str, ast.expr]] = []
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred) or index >= len(params):
                break
            pairs.append((params[index], arg))
        named = set(params) | set(callee.kwonly)
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in named:
                pairs.append((keyword.arg, keyword.value))
        return pairs


__all__ = ["FunctionInfo", "ModuleIndex"]
