"""simlint — repo-specific static analysis for the IOCost reproduction.

The simulator's correctness contracts (deterministic time, seeded RNG
streams, unit-suffixed names, catalogue-checked tracepoints, no stripped
asserts) are enforced over Python's ``ast`` by the rules registered here.
Run ``python -m repro.tools.simlint [paths]``; see docs/STATIC_ANALYSIS.md.

Importing this package registers every rule: ``rules`` and ``trace_rules``
populate :data:`repro.tools.simlint.core.RULES` at import time.
"""

from repro.tools.simlint.core import (
    RULES,
    FileContext,
    Finding,
    LintConfig,
    LintError,
    Rule,
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    rule,
    write_baseline,
)
from repro.tools.simlint import rules as _rules  # noqa: F401  (registers rules)
from repro.tools.simlint import trace_rules as _trace_rules  # noqa: F401
from repro.tools.simlint import flow_rules as _flow_rules  # noqa: F401
from repro.tools.simlint import dual_rules as _dual_rules  # noqa: F401
from repro.tools.simlint.cli import main
from repro.tools.simlint.trace_rules import load_catalogue

__all__ = [
    "RULES",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintError",
    "Rule",
    "apply_baseline",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "load_catalogue",
    "main",
    "rule",
    "write_baseline",
]
