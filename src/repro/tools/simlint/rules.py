"""General simlint rules: determinism, units, defaults, asserts.

Every rule here is grounded in a failure mode this repo has actually hit
or structurally risks:

* ``no-wallclock`` — the simulator's clock is :attr:`Simulator.now`;
  wall-clock reads (``time.time`` & friends) silently break run-to-run
  reproducibility.  CLI front-ends (``tools/``) and the overhead profiler
  (``obs/overhead.py``) are exempt via :attr:`LintConfig.wallclock_allow`.
* ``no-unseeded-rng`` — every random draw must come from a seeded,
  label-keyed stream (``Testbed.rng_for`` / ``RandomStreams``); module-level
  ``random.*`` and unseeded ``np.random`` calls are hidden global state.
* ``unit-suffix`` — quantities carry their unit in the name
  (``_usec``/``_sec``/``_bytes``/``_pages``); PR 2 fixed a real bug where
  ``wait_usec`` was accumulated in seconds.  Flags non-canonical unit
  suffixes on bindings and ``_usec``/``_sec`` mixing inside one
  addition/subtraction/comparison.
* ``no-mutable-default`` — the classic shared-default-argument trap.
* ``no-bare-assert`` — ``assert`` disappears under ``python -O``; invariant
  checks in ``src/repro`` must raise typed errors.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.tools.simlint.core import FileContext, Finding, rule

# -- shared helpers ----------------------------------------------------------


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Map local binding name -> canonical dotted origin.

    ``import numpy as np`` binds ``np -> numpy``; ``from time import
    perf_counter as pc`` binds ``pc -> time.perf_counter``.  Conditional or
    function-local imports are included too (``ast.walk``), which is the
    right bias for a linter: resolve as much as possible.
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                origin = alias.name if alias.asname else local
                mapping[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports cannot be stdlib/numpy
            for alias in node.names:
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
    return mapping


def _dotted(node: ast.expr, imports: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name of a Name/Attribute chain, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = imports.get(node.id, node.id)
    parts.append(base)
    return ".".join(reversed(parts))


def _finding(
    ctx: FileContext, node: ast.AST, name: str, message: str
) -> Finding:
    return Finding(
        path=ctx.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=name,
        message=message,
    )


# -- no-wallclock ------------------------------------------------------------

_WALLCLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@rule(
    "no-wallclock",
    "simulated code must read Simulator.now, never the wall clock",
)
def check_wallclock(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    if ctx.path_matches(ctx.config.wallclock_allow):
        return
    imports = _import_map(tree)
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Attribute, ast.Name)):
            continue
        if not isinstance(getattr(node, "ctx", None), ast.Load):
            continue
        # For x.y.z only the outermost Attribute resolves to the full
        # dotted name, so inner nodes never double-report.
        dotted = _dotted(node, imports)
        if dotted in _WALLCLOCK:
            yield _finding(
                ctx,
                node,
                "no-wallclock",
                f"{dotted} reads the wall clock; simulated code must use "
                "Simulator.now (or move the caller onto the allowlist)",
            )


# -- no-unseeded-rng ---------------------------------------------------------

#: numpy.random constructors that are fine *when given an explicit seed*.
_SEEDED_CTORS = frozenset(
    {
        "default_rng",
        "SeedSequence",
        "Generator",
        "RandomState",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)


@rule(
    "no-unseeded-rng",
    "random draws must come from seeded, label-keyed Generator streams",
)
def check_unseeded_rng(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    imports = _import_map(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func, imports)
        if dotted is None:
            continue
        if dotted.startswith("random."):
            tail = dotted.split(".", 1)[1]
            if tail == "Random" and (node.args or node.keywords):
                continue  # an explicitly seeded private instance
            yield _finding(
                ctx,
                node,
                "no-unseeded-rng",
                f"{dotted} draws from the process-global stdlib RNG; use a "
                "seeded stream (Testbed.rng_for / RandomStreams)",
            )
        elif dotted.startswith("numpy.random."):
            tail = dotted.split("numpy.random.", 1)[1]
            if "." in tail:
                continue  # e.g. numpy.random.Generator.normal via a var: n/a
            if tail in _SEEDED_CTORS:
                if not node.args and not node.keywords:
                    yield _finding(
                        ctx,
                        node,
                        "no-unseeded-rng",
                        f"numpy.random.{tail}() without a seed pulls OS "
                        "entropy; pass an explicit seed "
                        "(Testbed.rng_for / RandomStreams)",
                    )
            else:
                yield _finding(
                    ctx,
                    node,
                    "no-unseeded-rng",
                    f"numpy.random.{tail} uses the hidden global "
                    "RandomState; draw from a seeded Generator instead",
                )


# -- unit-suffix -------------------------------------------------------------

_CANONICAL_SUFFIXES = ("_usec", "_sec", "_bytes", "_pages")

#: Non-canonical unit suffix -> what to use instead.
_SUFFIX_ALIASES: Dict[str, str] = {
    "_us": "_usec",
    "_usecs": "_usec",
    "_microsec": "_usec",
    "_microseconds": "_usec",
    "_secs": "_sec",
    "_seconds": "_sec",
    "_ms": "_usec or _sec",
    "_msec": "_usec or _sec",
    "_msecs": "_usec or _sec",
    "_milliseconds": "_usec or _sec",
    "_ns": "_usec",
    "_nsec": "_usec",
    "_nsecs": "_usec",
    "_nanoseconds": "_usec",
    "_byte": "_bytes",
    "_kb": "_bytes",
    "_kib": "_bytes",
    "_mb": "_bytes",
    "_mib": "_bytes",
    "_gb": "_bytes",
    "_gib": "_bytes",
    "_page": "_pages",
}

#: All unit-ish suffixes, longest first, so ``_msec`` matches before
#: ``_sec`` and ``_milliseconds`` before ``_seconds``.
_ALL_SUFFIXES: Tuple[str, ...] = tuple(
    sorted(set(_CANONICAL_SUFFIXES) | set(_SUFFIX_ALIASES), key=len, reverse=True)
)


def _unit_suffix(name: str) -> Optional[str]:
    for suffix in _ALL_SUFFIXES:
        if name.endswith(suffix):
            return suffix
    return None


def _binding_names(tree: ast.Module) -> Iterator[Tuple[ast.AST, str]]:
    """Yield (node, name) for every binding a unit suffix applies to:
    function parameters, plain/annotated assignments, attribute stores."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            args = node.args
            every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            if args.vararg is not None:
                every.append(args.vararg)
            if args.kwarg is not None:
                every.append(args.kwarg)
            for arg in every:
                yield arg, arg.arg
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                yield from _target_names(target)
        elif isinstance(node, ast.AnnAssign):
            yield from _target_names(node.target)


def _target_names(target: ast.expr) -> Iterator[Tuple[ast.AST, str]]:
    if isinstance(target, ast.Name):
        yield target, target.id
    elif isinstance(target, ast.Attribute):
        yield target, target.attr
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def _sum_chain(
    node: ast.expr, leaves: List[ast.expr], chain: List[ast.expr]
) -> None:
    """Collect the direct Name/Attribute leaves of a +/- chain, plus every
    nested +/- node (conversions like ``x_sec * 1e6`` hide behind a Mult
    node and are correctly skipped)."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        chain.append(node)
        _sum_chain(node.left, leaves, chain)
        _sum_chain(node.right, leaves, chain)
    elif isinstance(node, (ast.Name, ast.Attribute)):
        leaves.append(node)


def _time_unit(name: str) -> Optional[str]:
    suffix = _unit_suffix(name)
    if suffix in ("_usec", "_us", "_usecs", "_microsec", "_microseconds"):
        return "usec"
    if suffix in ("_ms", "_msec", "_msecs", "_milliseconds"):
        return "msec"
    if suffix in ("_sec", "_secs", "_seconds"):
        return "sec"
    return None


@rule(
    "unit-suffix",
    "quantities carry canonical unit suffixes (_usec/_sec/_bytes/_pages); "
    "never mix _usec and _sec in one expression",
)
def check_unit_suffix(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    for node, name in _binding_names(tree):
        suffix = _unit_suffix(name)
        if suffix is not None and suffix not in _CANONICAL_SUFFIXES:
            yield _finding(
                ctx,
                node,
                "unit-suffix",
                f"{name!r} uses non-canonical unit suffix {suffix!r}; "
                f"use {_SUFFIX_ALIASES[suffix]} (convert the value too)",
            )
    inner_chain_nodes: set = set()
    for node in ast.walk(tree):
        leaves: List[ast.expr] = []
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            # Only the outermost node of a +/- chain reports; nested chain
            # nodes (visited later — ast.walk is preorder) are skipped.
            if id(node) in inner_chain_nodes:
                continue
            chain: List[ast.expr] = []
            _sum_chain(node, leaves, chain)
            inner_chain_nodes.update(id(part) for part in chain if part is not node)
        elif isinstance(node, ast.Compare):
            for side in [node.left] + list(node.comparators):
                if isinstance(side, (ast.Name, ast.Attribute)):
                    leaves.append(side)
        if len(leaves) < 2:
            continue
        units: Dict[str, str] = {}
        for leaf in leaves:
            leaf_name = leaf.id if isinstance(leaf, ast.Name) else leaf.attr
            unit = _time_unit(leaf_name)
            if unit is not None:
                units[unit] = leaf_name
        if len(units) > 1:
            names = " and ".join(repr(units[key]) for key in sorted(units))
            yield _finding(
                ctx,
                node,
                "unit-suffix",
                f"expression mixes time units: {names} "
                "(convert to one unit before combining)",
            )


# -- no-mutable-default ------------------------------------------------------

_MUTABLE_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.deque",
        "collections.Counter",
        "collections.OrderedDict",
    }
)


def _is_mutable_default(node: ast.expr, imports: Dict[str, str]) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func, imports)
        return dotted in _MUTABLE_CALLS
    return False


@rule(
    "no-mutable-default",
    "default argument values must not be mutable objects",
)
def check_mutable_default(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    imports = _import_map(tree)
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            if _is_mutable_default(default, imports):
                label = getattr(node, "name", "<lambda>")
                yield _finding(
                    ctx,
                    default,
                    "no-mutable-default",
                    f"mutable default in {label}(); defaults are evaluated "
                    "once and shared across calls — use None and create "
                    "inside",
                )


# -- no-bare-assert ----------------------------------------------------------


@rule(
    "no-bare-assert",
    "assert statements vanish under python -O; raise typed errors in src",
)
def check_bare_assert(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    if ctx.path_matches(ctx.config.assert_allow):
        # pytest rewrites asserts in test modules, so they survive -O there;
        # the rule is about load-bearing checks in shipped code.
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Assert):
            yield _finding(
                ctx,
                node,
                "no-bare-assert",
                "assert is stripped under -O; raise a typed error "
                "(or pragma with a justification) for load-bearing checks",
            )
