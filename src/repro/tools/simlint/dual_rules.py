"""The dual-path-parity rule: fast/slow twins must stay observably equal.

PR 8 forked several hot paths into a fast variant and a semantically
identical slow one (``Simulator.run`` inlines the loop that
``_run_profiled`` routes through ``step()``; ``schedule_bulk`` amortises
N× ``schedule``).  Their equivalence is pinned by golden-trace tests — but
a test only covers the workload it runs.  This rule makes the contract
*structural*: a function annotated

    def _run_profiled(self, until):  # simlint: dual-of=Simulator.run
        ...

must, transitively through module-local calls, (a) emit the same set of
tracepoint events and (b) mutate the same set of ``self``-rooted
attributes as its registered twin.  Observability state is exempt — the
profiler/sanitizer counters (``self._prof``/``self._san``, the ``PROF``/
``SANITIZE``/``TRACE`` globals, and local aliases of them) are exactly the
*allowed* difference between a fast path and its instrumented twin.

The marker may sit on the ``def`` line, the line above it, or anywhere
inside the function body.  A marker naming a function the module does not
define is itself a finding: a parity contract nobody can check is worse
than none.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.tools.simlint.core import FileContext, Finding, iter_comments, rule
from repro.tools.simlint.rules import _finding
from repro.tools.simlint.symbols import FunctionInfo, ModuleIndex
from repro.tools.simlint.trace_rules import _event_of

_DUAL_RE = re.compile(r"#.*\bsimlint:\s*dual-of=([A-Za-z0-9_.]+)")

#: Attribute names on ``self`` that hold observability state.
_OBS_ATTRS = frozenset({"_prof", "_san", "_trace", "_tp"})
#: Module-global observability singletons.
_OBS_GLOBALS = frozenset({"PROF", "SANITIZE", "TRACE", "SPAN_EVENTS"})


def _markers(ctx: FileContext) -> Dict[int, str]:
    """Map 1-based line number -> dual-of target qualname.

    Comment tokens only (via :func:`iter_comments`): a marker quoted inside
    a docstring — like the one at the top of this file — must not register.
    """
    found: Dict[int, str] = {}
    for lineno, text in iter_comments(ctx.source):
        match = _DUAL_RE.search(text)
        if match is not None:
            found[lineno] = match.group(1)
    return found


def _attach(
    index: ModuleIndex, markers: Dict[int, str]
) -> Tuple[List[Tuple[FunctionInfo, str]], List[int]]:
    """Bind each marker to its function; return (pairs, orphan line numbers)."""
    pairs: List[Tuple[FunctionInfo, str]] = []
    orphans: List[int] = []
    for lineno, target in markers.items():
        owner: Optional[FunctionInfo] = None
        for info in index.functions.values():
            start = info.node.lineno  # type: ignore[attr-defined]
            end = getattr(info.node, "end_lineno", start)
            if start - 1 <= lineno <= end:
                owner = info
                break
        if owner is None:
            orphans.append(lineno)
        else:
            pairs.append((owner, target))
    return pairs, orphans


# -- transitive emit sets -----------------------------------------------------


def _emit_bindings(tree: ast.Module) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Recover name/attr -> event bindings, as trace_rules does in pass 1."""
    bound_names: Dict[str, str] = {}
    bound_attrs: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            resolved = _event_of(node.value)
            if resolved is None:
                continue
            event_name = resolved[0]
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound_names[target.id] = event_name
                elif isinstance(target, ast.Attribute):
                    bound_attrs[target.attr] = event_name
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            positional = list(args.posonlyargs) + list(args.args)
            for arg, default in zip(positional[-len(args.defaults):], args.defaults):
                resolved = _event_of(default)
                if resolved is not None:
                    bound_names[arg.arg] = resolved[0]
            for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
                if kw_default is None:
                    continue
                resolved = _event_of(kw_default)
                if resolved is not None:
                    bound_names[arg.arg] = resolved[0]
    return bound_names, bound_attrs


def _emits(
    index: ModuleIndex,
    qualname: str,
    bound_names: Dict[str, str],
    bound_attrs: Dict[str, str],
) -> Set[str]:
    """Event names ``qualname`` transitively emits (module-local closure)."""
    events: Set[str] = set()
    for member in index.reach(qualname):
        for call, _callee in index.call_sites(member):
            func = call.func
            if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
                continue
            base = func.value
            resolved = _event_of(base)
            if resolved is not None:
                events.add(resolved[0])
            elif isinstance(base, ast.Name) and base.id in bound_names:
                events.add(bound_names[base.id])
            elif isinstance(base, ast.Attribute) and base.attr in bound_attrs:
                events.add(bound_attrs[base.attr])
    return events


# -- transitive self-attribute mutation sets ----------------------------------


def _obs_aliases(info: FunctionInfo) -> Set[str]:
    """Local names bound to observability state (``prof = self._prof``)."""
    aliases: Set[str] = set()
    for node in info.own_nodes():
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        is_obs = (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id in ("self", "cls")
            and value.attr in _OBS_ATTRS
        ) or (isinstance(value, ast.Name) and value.id in _OBS_GLOBALS)
        if not is_obs:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                aliases.add(target.id)
    return aliases


def _mutation_targets(node: ast.AST) -> Iterable[ast.expr]:
    if isinstance(node, ast.Assign):
        yield from node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        if not (isinstance(node, ast.AnnAssign) and node.value is None):
            yield node.target


def _mutations(index: ModuleIndex, qualname: str) -> Set[str]:
    """``self``-rooted attributes ``qualname`` transitively assigns,
    excluding observability state."""
    mutated: Set[str] = set()
    for member in index.reach(qualname):
        info = index.functions[member]
        aliases = _obs_aliases(info)
        for node in info.own_nodes():
            for target in _mutation_targets(node):
                while isinstance(target, ast.Subscript):
                    target = target.value
                # Walk the attribute chain down to its base Name,
                # remembering the component nearest the base — for
                # ``self._prof.heap_pops`` that is ``_prof``, the name
                # that decides counter vs observability.
                first_attr: Optional[str] = None
                chain = target
                while isinstance(chain, ast.Attribute):
                    first_attr = chain.attr
                    chain = chain.value
                if not isinstance(chain, ast.Name) or first_attr is None:
                    continue
                if chain.id in ("self", "cls"):
                    if first_attr not in _OBS_ATTRS:
                        mutated.add(first_attr)
                # Mutations through aliases / globals of observability
                # state are the allowed delta; every other non-self base
                # (locals, parameters) is out of scope for parity.
    return mutated


@rule(
    "dual-path-parity",
    "functions marked '# simlint: dual-of=<qualname>' must emit the same "
    "tracepoints and mutate the same self attributes as their twin",
)
def check_dual_path_parity(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    markers = _markers(ctx)
    if not markers:
        return
    index = ModuleIndex(tree)
    pairs, orphans = _attach(index, markers)
    for lineno in orphans:
        yield Finding(
            path=ctx.path,
            line=lineno,
            col=0,
            rule="dual-path-parity",
            message="dual-of marker is not attached to any function",
        )
    bound_names, bound_attrs = _emit_bindings(tree)
    for info, target in pairs:
        if target == info.qualname:
            yield _finding(
                ctx,
                info.node,
                "dual-path-parity",
                f"{info.qualname} is marked as its own dual",
            )
            continue
        if target not in index.functions:
            yield _finding(
                ctx,
                info.node,
                "dual-path-parity",
                f"dual-of target {target!r} is not defined in this module",
            )
            continue
        mine_emits = _emits(index, info.qualname, bound_names, bound_attrs)
        twin_emits = _emits(index, target, bound_names, bound_attrs)
        if mine_emits != twin_emits:
            only_mine = sorted(mine_emits - twin_emits)
            only_twin = sorted(twin_emits - mine_emits)
            yield _finding(
                ctx,
                info.node,
                "dual-path-parity",
                f"{info.qualname} and {target} emit different tracepoint "
                f"sets (only {info.qualname}: {only_mine}; only {target}: "
                f"{only_twin})",
            )
        mine_attrs = _mutations(index, info.qualname)
        twin_attrs = _mutations(index, target)
        if mine_attrs != twin_attrs:
            only_mine = sorted(mine_attrs - twin_attrs)
            only_twin = sorted(twin_attrs - mine_attrs)
            yield _finding(
                ctx,
                info.node,
                "dual-path-parity",
                f"{info.qualname} and {target} mutate different attribute "
                f"sets (only {info.qualname}: {only_mine}; only {target}: "
                f"{only_twin})",
            )
