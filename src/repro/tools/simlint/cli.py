"""``python -m repro.tools.simlint`` — the lint front-end CI runs.

Exit codes: 0 clean, 1 new findings, 2 usage/configuration error.
Diagnostics are one ``file:line:col rule message`` per line on stdout;
the summary goes to stderr so output stays pipe-friendly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.tools.simlint.core import (
    RULES,
    Finding,
    LintConfig,
    LintError,
    apply_baseline,
    lint_paths,
    load_baseline,
    write_baseline,
)

DEFAULT_BASELINE = "simlint.baseline"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.simlint",
        description=(
            "AST lint enforcing the simulator's determinism, unit, and "
            "tracepoint contracts (see docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE}; missing file = empty baseline)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file with the current findings and exit 0",
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="also print findings matched by the baseline (marked [baseline])",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _split(csv: Optional[str]) -> Optional[List[str]]:
    if csv is None:
        return None
    return [item.strip() for item in csv.split(",") if item.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        width = max(len(name) for name in RULES)
        for name in sorted(RULES):
            print(f"{name:<{width}}  {RULES[name].description}")
        return 0

    config = LintConfig(
        select=_split(args.select),
        disable=_split(args.disable) or (),
    )
    try:
        findings = lint_paths(args.paths, config)
    except LintError as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        write_baseline(baseline_path, findings)
        print(
            f"simlint: wrote {len(findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    baseline = {}
    if not args.no_baseline and baseline_path.is_file():
        baseline = load_baseline(baseline_path)
    new, baselined = apply_baseline(findings, baseline)

    for finding in new:
        print(finding)
    if args.show_baselined:
        for finding in baselined:
            print(f"{finding} [baseline]")

    if new:
        print(f"simlint: {len(new)} finding(s)", file=sys.stderr)
        return 1
    checked = "clean" if not baselined else f"{len(baselined)} baselined finding(s)"
    print(f"simlint: {checked}", file=sys.stderr)
    return 0


def render_findings(findings: Sequence[Finding]) -> str:
    """Join findings the way the CLI prints them (library convenience)."""
    return "\n".join(str(finding) for finding in findings)
