"""simlint rule engine: findings, registry, pragmas, baseline, drivers.

simlint is the repo's contract checker.  The simulator's correctness rests
on conventions a type checker cannot see — simulated time must never mix
with wall-clock time, randomness must come from seeded streams, names carry
their units, tracepoint emits match the catalogue.  Each convention is a
:class:`Rule` over Python's ``ast``; this module supplies the machinery
around the rules:

* :class:`Finding` — one diagnostic, rendered ``file:line:col rule message``.
* :func:`rule` — registration decorator populating :data:`RULES`.
* pragma suppression — ``# simlint: disable=<rule>[,<rule>...]`` on the
  flagged line (or on the line above, for lines that are themselves
  generated or too long) silences a finding.
* baseline files — grandfathered findings listed one fingerprint per line;
  anything in the baseline is reported only with ``--show-baselined``.
* :func:`lint_source` / :func:`lint_paths` — the drivers the CLI and tests
  share.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic emitted by a rule."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by baseline files.

        Dropping ``line``/``col`` keeps a baseline stable across unrelated
        edits to the same file; two identical findings in one file share a
        fingerprint and are counted as a multiset.
        """
        return f"{self.path}|{self.rule}|{self.message}"


@dataclass
class LintConfig:
    """Knobs shared by every rule.

    ``wallclock_allow`` holds fnmatch patterns (matched against the posix
    form of the file path) exempt from ``no-wallclock``: CLI front-ends may
    measure real time, and the overhead profiler exists to measure it.
    """

    select: Optional[Sequence[str]] = None
    disable: Sequence[str] = ()
    wallclock_allow: Sequence[str] = (
        "*/repro/tools/*",
        "*/repro/obs/overhead.py",
    )
    #: fnmatch patterns exempt from ``no-bare-assert``.  pytest rewrites
    #: asserts in test modules (they survive ``-O`` there by construction),
    #: so flagging every test assertion would be 1500 pragmas of noise.
    assert_allow: Sequence[str] = (
        "tests/*",
        "*/tests/*",
        "benchmarks/*",
        "*/benchmarks/*",
        "conftest.py",
        "*/conftest.py",
    )
    #: Tracepoint catalogue for the trace-catalogue rule: name -> fields.
    #: ``None`` means "load from repro.obs.trace at first use".
    catalogue: Optional[Mapping[str, Tuple[str, ...]]] = None
    #: Fields emit() may omit (mirrors repro.obs.trace.OPTIONAL_FIELDS).
    optional_fields: Optional[frozenset] = None

    def rule_names(self) -> List[str]:
        names = list(RULES) if self.select is None else list(self.select)
        return [name for name in names if name not in set(self.disable)]


class FileContext:
    """Everything a rule may need about the file under analysis."""

    def __init__(self, path: str, source: str, config: LintConfig):
        self.path = path
        self.posix_path = Path(path).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.config = config

    def path_matches(self, patterns: Sequence[str]) -> bool:
        return any(fnmatch.fnmatch(self.posix_path, pat) for pat in patterns)


RuleFn = Callable[[ast.Module, FileContext], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """A registered check: a name, a one-liner, and the AST visitor."""

    name: str
    description: str
    check: RuleFn


#: The global rule registry, populated by the :func:`rule` decorator at
#: import time (importing ``repro.tools.simlint`` pulls in every rule
#: module).
RULES: Dict[str, Rule] = {}


def rule(name: str, description: str) -> Callable[[RuleFn], RuleFn]:
    """Register ``fn`` as the checker for rule ``name``."""

    def register(fn: RuleFn) -> RuleFn:
        if name in RULES:
            raise ValueError(f"duplicate simlint rule {name!r}")
        RULES[name] = Rule(name, description, fn)
        return fn

    return register


# -- pragma suppression ------------------------------------------------------

# The pragma may sit anywhere inside a comment, so a one-line justification
# can precede it: ``# narrowing only - simlint: disable=<rule>``.
_PRAGMA_RE = re.compile(r"#.*\bsimlint:\s*disable=([A-Za-z0-9_,\- ]+)")


def iter_comments(source: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(1-based lineno, text)`` for every genuine comment token.

    Token-based, not a regex over raw lines: a pragma or marker spelled
    inside a triple-quoted string (docs, test fixtures) is *not* a comment
    and must not count.  Sources that fail to tokenize fall back to a raw
    line scan — by the time the drivers call this the file has already
    parsed, so the fallback only serves callers feeding deliberately broken
    fixtures.
    """
    try:
        comments = [
            (token.start[0], token.string)
            for token in tokenize.generate_tokens(io.StringIO(source).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = [
            (lineno, text)
            for lineno, text in enumerate(source.splitlines(), start=1)
            if "#" in text
        ]
    yield from comments


def _pragmas(source: str) -> Dict[int, frozenset]:
    """Map 1-based line number -> rule names disabled on that line."""
    disabled: Dict[int, frozenset] = {}
    for lineno, text in iter_comments(source):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        names = frozenset(
            name.strip() for name in match.group(1).split(",") if name.strip()
        )
        disabled[lineno] = names
    return disabled


class _PragmaLedger:
    """Pragma map plus bookkeeping of which suppressions actually fired."""

    def __init__(self, source: str):
        self.pragmas = _pragmas(source)
        #: ``(pragma line, rule name)`` pairs that suppressed a finding.
        self.used: Set[Tuple[int, str]] = set()

    def suppresses(self, finding: Finding) -> bool:
        for lineno in (finding.line, finding.line - 1):
            names = self.pragmas.get(lineno)
            if names is None:
                continue
            if finding.rule in names:
                self.used.add((lineno, finding.rule))
                return True
            if "all" in names:
                self.used.add((lineno, "all"))
                return True
        return False

    def unused(
        self, ctx: "FileContext", enabled_rules: Sequence[str]
    ) -> Iterator[Finding]:
        """Findings for pragma names that could have fired but never did.

        A name for a rule that is not enabled this run is skipped (it could
        not have suppressed anything); a name that is no registered rule at
        all is flagged — it is a typo that silently suppresses nothing.
        """
        enabled = set(enabled_rules)
        for lineno in sorted(self.pragmas):
            for name in sorted(self.pragmas[lineno]):
                if name == "all":
                    if (lineno, "all") not in self.used:
                        yield Finding(
                            path=ctx.path,
                            line=lineno,
                            col=0,
                            rule="unused-pragma",
                            message="'simlint: disable=all' suppresses nothing",
                        )
                elif name not in RULES:
                    yield Finding(
                        path=ctx.path,
                        line=lineno,
                        col=0,
                        rule="unused-pragma",
                        message=(
                            f"pragma names unknown rule {name!r} "
                            "(typo? it suppresses nothing)"
                        ),
                    )
                elif name in enabled and (lineno, name) not in self.used:
                    yield Finding(
                        path=ctx.path,
                        line=lineno,
                        col=0,
                        rule="unused-pragma",
                        message=(
                            f"'simlint: disable={name}' suppresses nothing "
                            "on this line or the line below"
                        ),
                    )


def _suppressed(finding: Finding, pragmas: Mapping[int, frozenset]) -> bool:
    """Legacy predicate (kept for tests); :class:`_PragmaLedger` supersedes it."""
    for lineno in (finding.line, finding.line - 1):
        names = pragmas.get(lineno)
        if names is not None and (finding.rule in names or "all" in names):
            return True
    return False


@rule(
    "unused-pragma",
    "a '# simlint: disable=' pragma must actually suppress something",
)
def _check_unused_pragma(tree: ast.Module, ctx: "FileContext") -> Iterable[Finding]:
    # Driver-implemented (see lint_source): detecting a *useless* pragma
    # requires the suppression ledger of every other rule's findings, which
    # a per-rule check cannot see.  Registered here so --list-rules/--select
    # know the name.
    return ()


# -- baseline files ----------------------------------------------------------

def load_baseline(path: Path) -> Dict[str, int]:
    """Read a baseline file into a fingerprint -> count multiset.

    Lines starting with ``#`` and blank lines are ignored, so a baseline
    can carry a header explaining why each grandfathered finding exists.
    """
    counts: Dict[str, int] = {}
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        counts[line] = counts.get(line, 0) + 1
    return counts


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write the current findings as the new grandfathered set."""
    header = (
        "# simlint baseline — grandfathered findings, one fingerprint per line.\n"
        "# An empty baseline means the tree is clean; new findings fail the lint.\n"
    )
    body = "".join(
        finding.fingerprint + "\n" for finding in sorted(findings)
    )
    path.write_text(header + body)


def apply_baseline(
    findings: Sequence[Finding], baseline: Mapping[str, int]
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (new, baselined) against the multiset."""
    remaining = dict(baseline)
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        count = remaining.get(finding.fingerprint, 0)
        if count > 0:
            remaining[finding.fingerprint] = count - 1
            old.append(finding)
        else:
            new.append(finding)
    return new, old


# -- drivers -----------------------------------------------------------------

class LintError(RuntimeError):
    """Raised for unusable input (bad path, unknown rule, syntax error)."""


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Run every enabled rule over one source string."""
    config = LintConfig() if config is None else config
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot parse: {exc}") from exc
    ctx = FileContext(path, source, config)
    ledger = _PragmaLedger(source)
    enabled = config.rule_names()
    findings: List[Finding] = []
    for name in enabled:
        try:
            checker = RULES[name]
        except KeyError:
            raise LintError(f"unknown simlint rule {name!r}") from None
        for finding in checker.check(tree, ctx):
            if not ledger.suppresses(finding):
                findings.append(finding)
    # unused-pragma is driver-implemented: it needs the full suppression
    # ledger, which only exists after every other rule has run.  These
    # meta-findings land on the pragma's own line, so a dead ``disable=all``
    # would silently self-suppress via its own "all" — only an *explicit*
    # ``disable=unused-pragma`` opts a line out.
    if "unused-pragma" in enabled:
        for finding in ledger.unused(ctx, enabled):
            explicit = any(
                "unused-pragma" in ledger.pragmas.get(lineno, frozenset())
                for lineno in (finding.line, finding.line - 1)
            )
            if not explicit:
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.is_file():
            yield path
        else:
            raise LintError(f"no such file or directory: {raw}")


def lint_paths(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; findings sorted by location."""
    config = LintConfig() if config is None else config
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(
            lint_source(file_path.read_text(), str(file_path), config)
        )
    return findings


__all__ = [
    "Finding",
    "LintConfig",
    "LintError",
    "FileContext",
    "Rule",
    "RULES",
    "rule",
    "lint_source",
    "lint_paths",
    "iter_python_files",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]
