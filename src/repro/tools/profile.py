"""``python -m repro.tools.profile`` — profile a device model (§3.2).

Runs the saturating sweeps against a catalogued (or scaled) device model
and prints the measured parameters plus the ``io.cost.model`` configuration
line, like the open-sourced iocost tooling does for real block devices.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.analysis.report import Table, format_si
from repro.block.device_models import DEVICE_CATALOG, get_device_spec
from repro.core.profiler import profile_device


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.profile",
        description="Profile a simulated device into iocost model parameters.",
    )
    parser.add_argument(
        "device",
        nargs="?",
        default="ssd_new",
        help=f"device model name (one of: {', '.join(sorted(DEVICE_CATALOG))})",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="speed factor applied to the device before profiling",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--read-duration", type=float, default=0.25,
        help="simulated seconds per read sweep",
    )
    parser.add_argument(
        "--write-duration", type=float, default=1.0,
        help="simulated seconds per write sweep (longer: GC steady state)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    spec = get_device_spec(args.device)
    if args.scale != 1.0:
        spec = spec.scaled(args.scale)

    print(f"profiling {spec.name} (saturating sweeps)...")
    profile = profile_device(
        spec,
        seed=args.seed,
        read_duration=args.read_duration,
        write_duration=args.write_duration,
    )

    table = Table(f"Measured parameters — {spec.name}", ["parameter", "value"])
    table.add_row("random read IOPS (4k)", format_si(profile.rrandiops))
    table.add_row("sequential read IOPS (4k)", format_si(profile.rseqiops))
    table.add_row("read bandwidth", format_si(profile.rbps, "B/s"))
    table.add_row("random write IOPS (4k)", format_si(profile.wrandiops))
    table.add_row("sequential write IOPS (4k)", format_si(profile.wseqiops))
    table.add_row("write bandwidth (sustained)", format_si(profile.wbps, "B/s"))
    table.add_row("read latency p50 (saturated)", f"{profile.read_lat_p50 * 1e6:.0f}us")
    table.print()
    print("\nio.cost.model configuration:")
    print(f"  {profile.config_line()}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    raise SystemExit(main())
