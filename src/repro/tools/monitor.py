"""Live per-period monitor — the simulation's ``iocost_monitor.py``.

The kernel ships ``iocost_monitor.py``, a drgn script that walks live kernel
memory once per period and prints device state (vrate%, busy level) plus one
row per cgroup (hweight, usage, debt, delay).  :class:`Monitor` is the
simulation equivalent: it registers a periodic simulator callback, captures
a :class:`~repro.obs.snapshot.MonitorSnapshot` each interval from the
controller's introspection surface and the :class:`~repro.obs.iostat.IOStat`
counters, optionally streaming them as JSONL, and renders them in the same
tabular style.

Library use::

    bed = Testbed("ssd_new", "iocost")
    with open("run.jsonl", "w") as out:
        monitor = Monitor(bed, stream=out).start()
        bed.sim.run(until=30.0)
        monitor.stop()
    print(monitor.render())

CLI use (re-render a saved stream)::

    python -m repro.tools.monitor run.jsonl --last 3

The monitor is strictly read-only: attaching it never changes simulation
results (guarded by ``tests/integration/test_monitor.py``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, TextIO

from repro.obs.iostat import IOStat
from repro.obs.snapshot import MonitorSnapshot, load_snapshots, render_snapshots

#: Fallback sampling interval when the controller has no planning period.
DEFAULT_INTERVAL = 0.05


class Monitor:
    """Periodic observer over a testbed (or equivalent component bundle).

    ``bed`` needs ``sim``, ``layer``, ``controller`` and ``cgroups``
    attributes — a :class:`repro.testbed.Testbed` or anything shaped like
    one.  The sampling ``interval`` defaults to the controller's QoS period
    when it has one (so snapshots land once per planning period, right after
    the plan tick, which the event heap orders first at equal timestamps).
    """

    def __init__(
        self,
        bed,
        interval: Optional[float] = None,
        stream: Optional[TextIO] = None,
    ) -> None:
        self.sim = bed.sim
        self.layer = bed.layer
        self.controller = bed.controller
        self.cgroups = bed.cgroups
        qos = getattr(self.controller, "qos", None)
        self.interval = interval if interval is not None else (
            qos.period if qos is not None else DEFAULT_INTERVAL
        )
        if self.interval <= 0:
            raise ValueError("monitor interval must be positive")
        self.stream = stream
        self.iostat = IOStat(self.cgroups, controller=self.controller)
        self.snapshots: List[MonitorSnapshot] = []
        self._timer = None
        # Previous cumulative counters, for per-interval deltas.
        self._prev: Dict[str, Dict[str, float]] = {}

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Monitor":
        if self._timer is None:
            self._timer = self.sim.schedule(self.interval, self._tick)
        return self

    def stop(self) -> "Monitor":
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        return self

    # -- capture ------------------------------------------------------------

    def _tick(self) -> None:
        snapshot = self.capture()
        self.snapshots.append(snapshot)
        if self.stream is not None:
            self.stream.write(snapshot.to_json() + "\n")
        self._timer = self.sim.schedule(self.interval, self._tick)

    def capture(self) -> MonitorSnapshot:
        """Take one snapshot right now (also usable without :meth:`start`)."""
        vrate = getattr(self.controller, "vrate", 1.0)
        vrate_ctl = getattr(self.controller, "vrate_ctl", None)
        busy = vrate_ctl.busy_level if vrate_ctl is not None else 0
        io_snapshot = self.iostat.snapshot()

        groups: Dict[str, Dict[str, float]] = {}
        for path, entry in io_snapshot.items():
            row = dict(entry)
            cgroup = self.cgroups.lookup(path) if path in self.cgroups else None
            stat = getattr(self.controller, "stat", None)
            if stat is not None and cgroup is not None:
                ctl = stat(cgroup)
                row["active"] = 1.0 if ctl.get("active") else 0.0
                row["weight"] = float(ctl.get("weight", cgroup.weight))
                row["hweight"] = float(ctl.get("hweight", 0.0))
                row["queued"] = float(ctl.get("queued", 0))
                row["debt_ms"] = float(ctl.get("debt_walltime", 0.0)) * 1e3
            else:
                row["weight"] = float(cgroup.weight) if cgroup is not None else 0.0
            prev = self._prev.get(path, {})
            usage_delta = row.get("cost.usage", 0.0) - prev.get("cost.usage", 0.0)
            row["usage_delta"] = usage_delta
            # Usage as percent of device time over the sampling interval.
            row["usage_pct"] = usage_delta / self.interval * 100.0
            row["wait_ms"] = (
                row.get("wait_usec", 0.0) - prev.get("wait_usec", 0.0)
            ) / 1e3
            row["delay_ms"] = (
                row.get("cost.indelay", 0.0) - prev.get("cost.indelay", 0.0)
            ) * 1e3
            groups[path] = row
        self._prev = {path: dict(row) for path, row in groups.items()}

        return MonitorSnapshot(
            time=self.sim.now,
            device=self.layer.device.spec.name,
            controller=self.controller.name,
            period=self.interval,
            vrate=vrate,
            busy_level=busy,
            groups=groups,
        )

    # -- rendering ----------------------------------------------------------

    def render(self, last: Optional[int] = None) -> str:
        """Render captured snapshots ``iocost_monitor``-style."""
        snapshots = self.snapshots if last is None else self.snapshots[-last:]
        return render_snapshots(snapshots)


def main(argv: Optional[List[str]] = None) -> int:
    """Re-render a saved JSONL snapshot stream."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.monitor",
        description="Render monitor JSONL in iocost_monitor style.",
    )
    parser.add_argument("trace", help="JSONL file written by Monitor(stream=...)")
    parser.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="only render the last N snapshots",
    )
    args = parser.parse_args(argv)
    try:
        with open(args.trace) as stream:
            snapshots = load_snapshots(stream)
    except OSError as exc:
        print(f"cannot read {args.trace}: {exc.strerror}", file=sys.stderr)
        return 1
    except (ValueError, KeyError) as exc:
        print(f"{args.trace}: not a monitor JSONL stream ({exc})", file=sys.stderr)
        return 1
    if args.last is not None:
        snapshots = snapshots[-args.last:]
    if not snapshots:
        print("(no snapshots)", file=sys.stderr)
        return 1
    print(render_snapshots(snapshots))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
