"""Live per-period monitor — the simulation's ``iocost_monitor.py``.

The kernel ships ``iocost_monitor.py``, a drgn script that walks live kernel
memory once per period and prints device state (vrate%, busy level) plus one
row per cgroup (hweight, usage, debt, delay).  :class:`Monitor` is the
simulation equivalent: it registers a periodic simulator callback and, each
interval, captures one :class:`~repro.obs.snapshot.MonitorSnapshot` **per
monitored device** from that device's controller introspection surface and
its per-device :class:`~repro.obs.iostat.IOStat` counters, optionally
streaming them as JSONL, and renders them in the same tabular style.

Library use::

    bed = Testbed(devices={"vda": "ssd_new", "vdb": "ebs_gp3"})
    with open("run.jsonl", "w") as out:
        monitor = Monitor(bed, stream=out).start()
        bed.sim.run(until=30.0)
        monitor.stop()
    print(monitor.render(device="vdb"))      # one stream per device

``Monitor(bed, device="vdb")`` restricts the monitor to one named device;
single-device testbeds behave exactly as before.

CLI use (re-render a saved stream)::

    python -m repro.tools.monitor run.jsonl --last 3 [--device vdb|8:16] [--json]

The monitor is strictly read-only: attaching it never changes simulation
results (guarded by ``tests/integration/test_monitor.py``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, TextIO, Tuple

from repro.obs.iostat import IOStat
from repro.obs.snapshot import MonitorSnapshot, load_snapshots, render_snapshots

#: Fallback sampling interval when no controller has a planning period.
DEFAULT_INTERVAL = 0.05


class Monitor:
    """Periodic observer over a testbed (or equivalent component bundle).

    ``bed`` needs ``sim``, ``layer``, ``controller`` and ``cgroups``
    attributes — a :class:`repro.testbed.Testbed` or anything shaped like
    one.  Multi-device testbeds expose a ``devices`` registry, in which
    case every device is monitored (or just ``device``, when named).  The
    sampling ``interval`` defaults to the shortest QoS period among the
    monitored controllers (so snapshots land once per planning period,
    right after the plan tick, which the event heap orders first at equal
    timestamps).
    """

    def __init__(
        self,
        bed,
        interval: Optional[float] = None,
        stream: Optional[TextIO] = None,
        device: Optional[str] = None,
    ) -> None:
        self.sim = bed.sim
        self.cgroups = bed.cgroups
        registry = getattr(bed, "devices", None)
        #: (name, layer) pairs under observation.
        self._targets: List[Tuple[str, object]] = []
        if registry is not None and len(registry) > 0:
            if device is not None:
                self._targets = [(device, registry.layer(device))]
            else:
                self._targets = list(registry.items())
        else:
            if device is not None:
                raise ValueError("bed has no device registry to look up a name in")
            self._targets = [(bed.layer.device.name, bed.layer)]
        # Single-device conveniences (first monitored device).
        self.layer = self._targets[0][1]
        self.controller = self.layer.controller

        if interval is None:
            periods = [
                layer.controller.qos.period
                for _, layer in self._targets
                if getattr(layer.controller, "qos", None) is not None
            ]
            interval = min(periods) if periods else DEFAULT_INTERVAL
        if interval <= 0:
            raise ValueError("monitor interval must be positive")
        self.interval = interval
        self.stream = stream
        self.iostat = IOStat(
            self.cgroups,
            controllers={
                layer.dev: layer.controller for _, layer in self._targets
            },
        )
        self.snapshots: List[MonitorSnapshot] = []
        self._timer = None
        # Previous cumulative counters, for per-interval deltas, keyed by
        # (device id, cgroup path).
        self._prev: Dict[Tuple[str, str], Dict[str, float]] = {}

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Monitor":
        if self._timer is None:
            self._timer = self.sim.schedule(self.interval, self._tick)
        return self

    def stop(self) -> "Monitor":
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        return self

    # -- capture ------------------------------------------------------------

    def _tick(self) -> None:
        for snapshot in self.capture_all():
            self.snapshots.append(snapshot)
            if self.stream is not None:
                self.stream.write(snapshot.to_json() + "\n")
        self._timer = self.sim.schedule(self.interval, self._tick)

    def capture_all(self) -> List[MonitorSnapshot]:
        """One snapshot per monitored device, right now."""
        per_device = self.iostat.device_snapshot()
        return [
            self._capture_device(layer, per_device) for _, layer in self._targets
        ]

    def capture(self) -> MonitorSnapshot:
        """Snapshot the first monitored device (single-device shorthand)."""
        return self.capture_all()[0]

    def _capture_device(self, layer, per_device) -> MonitorSnapshot:
        controller = layer.controller
        dev = layer.dev
        vrate = getattr(controller, "vrate", 1.0)
        vrate_ctl = getattr(controller, "vrate_ctl", None)
        busy = vrate_ctl.busy_level if vrate_ctl is not None else 0

        groups: Dict[str, Dict[str, float]] = {}
        for path, devices in per_device.items():
            entry = devices.get(dev)
            if entry is None:
                continue
            row = dict(entry)
            cgroup = self.cgroups.lookup(path) if path in self.cgroups else None
            stat = getattr(controller, "stat", None)
            if stat is not None and cgroup is not None:
                ctl = stat(cgroup)
                row["active"] = 1.0 if ctl.get("active") else 0.0
                row["weight"] = float(ctl.get("weight", cgroup.weight))
                row["hweight"] = float(ctl.get("hweight", 0.0))
                row["queued"] = float(ctl.get("queued", 0))
                row["debt_ms"] = float(ctl.get("debt_walltime", 0.0)) * 1e3
            else:
                row["weight"] = float(cgroup.weight) if cgroup is not None else 0.0
            prev = self._prev.get((dev, path), {})
            usage_delta = row.get("cost.usage", 0.0) - prev.get("cost.usage", 0.0)
            row["usage_delta"] = usage_delta
            # Usage as percent of device time over the sampling interval.
            row["usage_pct"] = usage_delta / self.interval * 100.0
            row["wait_ms"] = (
                row.get("wait_usec", 0.0) - prev.get("wait_usec", 0.0)
            ) / 1e3
            row["delay_ms"] = (
                row.get("cost.indelay", 0.0) - prev.get("cost.indelay", 0.0)
            ) * 1e3
            groups[path] = row
        for path, row in groups.items():
            self._prev[(dev, path)] = dict(row)

        return MonitorSnapshot(
            time=self.sim.now,
            device=layer.device.spec.name,
            controller=controller.name,
            period=self.interval,
            vrate=vrate,
            busy_level=busy,
            groups=groups,
            dev=dev,
        )

    # -- selection & rendering ----------------------------------------------

    def snapshots_for(self, device: str) -> List[MonitorSnapshot]:
        """This device's snapshot stream (by registered name or devno)."""
        devnos = {
            layer.dev for name, layer in self._targets if name == device
        }
        return [
            snap
            for snap in self.snapshots
            if snap.dev == device or snap.dev in devnos
        ]

    def render(self, last: Optional[int] = None, device: Optional[str] = None) -> str:
        """Render captured snapshots ``iocost_monitor``-style."""
        snapshots = (
            self.snapshots if device is None else self.snapshots_for(device)
        )
        if last is not None:
            snapshots = snapshots[-last:]
        return render_snapshots(snapshots)


def main(argv: Optional[List[str]] = None) -> int:
    """Re-render a saved JSONL snapshot stream."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.monitor",
        description="Render monitor JSONL in iocost_monitor style.",
    )
    parser.add_argument("trace", help="JSONL file written by Monitor(stream=...)")
    parser.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="only render the last N snapshots",
    )
    parser.add_argument(
        "--device", default=None, metavar="DEV",
        help="only render snapshots of this device (spec name or maj:min id)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the selected snapshots as JSONL instead of tables "
        "(machine-readable; composes with --last/--device)",
    )
    args = parser.parse_args(argv)
    try:
        with open(args.trace) as stream:
            snapshots = load_snapshots(stream)
    except OSError as exc:
        print(f"cannot read {args.trace}: {exc.strerror}", file=sys.stderr)
        return 1
    except (ValueError, KeyError) as exc:
        print(f"{args.trace}: not a monitor JSONL stream ({exc})", file=sys.stderr)
        return 1
    if args.device is not None:
        snapshots = [
            snap
            for snap in snapshots
            if args.device in (snap.dev, snap.device)
        ]
    if args.last is not None:
        snapshots = snapshots[-args.last:]
    if not snapshots:
        print("(no snapshots)", file=sys.stderr)
        return 1
    if args.json:
        for snap in snapshots:
            print(snap.to_json())
    else:
        print(render_snapshots(snapshots))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
