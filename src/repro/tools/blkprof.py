"""``python -m repro.tools.blkprof`` — bio latency attribution CLI.

The blktrace/iowatcher workflow for the simulated stack: take a trace
JSONL stream (written by :meth:`repro.obs.trace.TraceBuffer.save`, or the
``trace.jsonl`` artifact a ``trace_events`` experiment produces), stitch
its bio-lifecycle events into spans, and answer "where did the latency
go?" in four shapes:

* ``spans``     — per-bio stage decompositions as JSONL (or a table);
* ``breakdown`` — the per-stage rollup: "p99 = X usec, of which Y% was
  iocost throttling" (``--json`` for the raw rollup dict);
* ``timeline``  — Chrome trace-event JSON; open the file in
  https://ui.perfetto.dev (a process per cgroup, a row per device);
* ``prof``      — run the fixed engine micro-benchmark under the
  deterministic self-profiler and print its work counters (no trace file
  needed).

Examples::

    python -m repro.tools.blkprof breakdown trace.jsonl --cgroup /ws
    python -m repro.tools.blkprof timeline trace.jsonl -o timeline.json
    python -m repro.tools.blkprof spans trace.jsonl --limit 10
    python -m repro.tools.blkprof prof --bios 20000
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.spans import SpanTracker, spans_to_jsonl
from repro.obs.timeline import write_chrome_trace
from repro.obs.trace import load_events
from repro.tools.engine_bench import DEFAULT_DEPTH, profile_counters


def load_tracker(trace_path: str) -> SpanTracker:
    """Replay a trace JSONL file through a fresh :class:`SpanTracker`."""
    tracker = SpanTracker()
    with open(trace_path) as stream:
        for event in load_events(stream):
            tracker(event)
    return tracker


def _add_scope_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("trace", help="trace JSONL (TraceBuffer.save output)")
    parser.add_argument("--cgroup", default=None, help="filter: cgroup path")
    parser.add_argument("--dev", default=None, help="filter: device maj:min id")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.blkprof",
        description="Stitch bio tracepoints into spans and attribute latency.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    spans = sub.add_parser("spans", help="per-bio stage decompositions")
    _add_scope_args(spans)
    spans.add_argument("--limit", type=int, default=None, metavar="N",
                       help="only the last N spans")

    breakdown = sub.add_parser("breakdown", help="per-stage latency rollup")
    _add_scope_args(breakdown)
    breakdown.add_argument("--json", action="store_true",
                           help="raw rollup dict instead of the table")

    timeline = sub.add_parser("timeline", help="Chrome trace-event export")
    _add_scope_args(timeline)
    timeline.add_argument("-o", "--out", default="timeline.json",
                          help="output path (default: timeline.json)")

    prof = sub.add_parser(
        "prof", help="engine self-profile of the fixed micro-benchmark"
    )
    prof.add_argument("--bios", type=int, default=20_000)
    prof.add_argument("--depth", type=int, default=DEFAULT_DEPTH)
    prof.add_argument("--json", action="store_true",
                      help="counter dict instead of the text summary")
    return parser


def _cmd_spans(args: argparse.Namespace) -> int:
    tracker = load_tracker(args.trace)
    selected = tracker.select(args.cgroup, args.dev)
    if args.limit is not None:
        selected = selected[-args.limit:]
    if not selected:
        print("(no completed spans)", file=sys.stderr)
        return 1
    print(spans_to_jsonl(selected))
    return 0


def _cmd_breakdown(args: argparse.Namespace) -> int:
    tracker = load_tracker(args.trace)
    if args.json:
        print(json.dumps(tracker.breakdown(args.cgroup, args.dev), indent=2))
        return 0
    description = tracker.describe(args.cgroup, args.dev)
    if tracker.completed == 0:
        print(description, file=sys.stderr)
        return 1
    print(description)
    if tracker.open_count:
        print(f"({tracker.open_count} bios still open at end of trace)")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    tracker = load_tracker(args.trace)
    selected = tracker.select(args.cgroup, args.dev)
    if not selected:
        print("(no completed spans)", file=sys.stderr)
        return 1
    with open(args.out, "w") as stream:
        count = write_chrome_trace(selected, stream)
    print(
        f"wrote {count} trace events for {len(selected)} spans to {args.out} "
        "(open in https://ui.perfetto.dev)"
    )
    return 0


def _cmd_prof(args: argparse.Namespace) -> int:
    counters = profile_counters(args.bios, args.depth)
    if args.json:
        print(json.dumps(counters, indent=2))
        return 0
    per_bio = counters.pop("per_bio")
    emits = counters.pop("emits_by_point")
    width = max(len(name) for name in counters)
    for name, value in counters.items():
        line = f"{name:<{width}} {value:>12,}"
        if per_bio is not None and name in per_bio:
            line += f"  ({per_bio[name]:.2f}/bio)"
        print(line)
    if emits:
        print("tracepoint emissions:")
        for name, value in sorted(emits.items()):
            print(f"  {name:<{width}} {value:>10,}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command != "prof":
        try:
            return _DISPATCH[args.command](args)
        except OSError as exc:
            print(f"cannot read {args.trace}: {exc.strerror}", file=sys.stderr)
            return 1
        except (ValueError, KeyError) as exc:
            print(f"{args.trace}: not a trace JSONL stream ({exc})",
                  file=sys.stderr)
            return 1
    return _cmd_prof(args)


_DISPATCH = {
    "spans": _cmd_spans,
    "breakdown": _cmd_breakdown,
    "timeline": _cmd_timeline,
}


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
