"""``python -m repro.tools.compare`` — controller comparison on one device.

Runs the canonical two-container proportional-control scenario (weights
2:1, both saturating) under every Table 1 mechanism and prints achieved
IOPS, the split ratio, and p90 latency — a quick "which controller does
what" view of the library.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.analysis.report import Table, format_ratio, format_si
from repro.block.device_models import DEVICE_CATALOG, get_device_spec
from repro.controllers.blk_throttle import ThrottleLimits
from repro.core.qos import QoSParams
from repro.testbed import Testbed

MECHANISMS = ("none", "mq-deadline", "kyber", "blk-throttle", "bfq", "iolatency", "iocost")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.compare",
        description="Compare IO control mechanisms on a 2:1 weighted scenario.",
    )
    parser.add_argument(
        "device",
        nargs="?",
        default="ssd_old",
        help=f"device model name (one of: {', '.join(sorted(DEVICE_CATALOG))})",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--depth", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    return parser


def run_mechanism(name, spec, duration, depth, seed):
    kwargs = {}
    if name == "blk-throttle":
        # Limits sized to the device's profiled peak, split 2:1.
        peak = spec.peak_rand_read_iops
        kwargs["limits"] = {
            "workload.slice/high": ThrottleLimits(riops=peak * 2 / 3),
            "workload.slice/low": ThrottleLimits(riops=peak / 3),
        }
    qos = QoSParams(
        read_lat_target=None, write_lat_target=None,
        vrate_min=0.9, vrate_max=0.9, period=0.05,
    )
    testbed = Testbed(device=spec, controller=name, qos=qos, seed=seed, **kwargs)
    high = testbed.add_cgroup("workload.slice/high", weight=200)
    low = testbed.add_cgroup("workload.slice/low", weight=100)
    testbed.saturate(high, depth=depth, stop_at=duration)
    testbed.saturate(low, depth=depth, stop_at=duration)
    testbed.run(duration)
    high_iops, low_iops = testbed.iops(high), testbed.iops(low)
    p90 = testbed.layer.read_latency.percentile(testbed.sim.now, 90)
    testbed.detach()
    return high_iops, low_iops, p90


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    spec = get_device_spec(args.device)
    if args.scale != 1.0:
        spec = spec.scaled(args.scale)

    table = Table(
        f"Mechanism comparison — {spec.name}, weights 2:1, both saturating",
        ["mechanism", "high IOPS", "low IOPS", "ratio", "read p90"],
    )
    for name in MECHANISMS:
        high_iops, low_iops, p90 = run_mechanism(
            name, spec, args.duration, args.depth, args.seed
        )
        table.add_row(
            name,
            format_si(high_iops),
            format_si(low_iops),
            format_ratio(high_iops, low_iops),
            f"{p90 * 1e6:.0f}us" if p90 is not None else "n/a",
        )
    table.print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
