"""``python -m repro.tools.compare`` — controller comparison on one device.

Runs the canonical two-container proportional-control scenario (weights
2:1, both saturating) under every Table 1 mechanism and prints achieved
IOPS, the split ratio, and p90 latency — a quick "which controller does
what" view of the library.

The per-mechanism fan-out drives through the :mod:`repro.exp`
orchestrator (one ``mechanism_2to1`` cell per mechanism), so comparisons
parallelise across a worker pool and repeat invocations against a
persistent ``--store`` are served from the result cache.
"""

from __future__ import annotations

import argparse
import tempfile
from typing import Optional, Sequence

from repro.analysis.report import Table, format_ratio, format_si
from repro.block.device_models import DEVICE_CATALOG
from repro.exp import ArtifactStore, ExperimentSpec, run_sweep
from repro.exp.cli import wall_clock

MECHANISMS = ("none", "mq-deadline", "kyber", "blk-throttle", "bfq", "iolatency", "iocost")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.compare",
        description="Compare IO control mechanisms on a 2:1 weighted scenario.",
    )
    parser.add_argument(
        "device",
        nargs="?",
        default="ssd_old",
        help=f"device model name (one of: {', '.join(sorted(DEVICE_CATALOG))})",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--depth", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=2,
        help="mechanism runs executed in parallel (default 2)",
    )
    parser.add_argument(
        "--store", default=None,
        help="persistent artifact store root (default: throwaway temp dir); "
        "repeat invocations hit the result cache",
    )
    return parser


def build_spec(args: argparse.Namespace) -> ExperimentSpec:
    """The comparison as a declarative sweep: one axis over mechanisms."""
    if args.device not in DEVICE_CATALOG:
        raise KeyError(args.device)
    base = {
        "device": args.device,
        "duration": args.duration,
        "depth": args.depth,
        "vrate": 0.9,
        "period": 0.05,
    }
    if args.scale != 1.0:
        base["device_scale"] = args.scale
    return ExperimentSpec(
        name=f"compare-{args.device}",
        kind="mechanism_2to1",
        base=base,
        grid={"mechanism": list(MECHANISMS)},
        seed=args.seed,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    spec = build_spec(args)

    def sweep(root: str):
        return run_sweep(
            spec, ArtifactStore(root), workers=args.workers, clock=wall_clock
        )

    if args.store is not None:
        report = sweep(args.store)
    else:
        with tempfile.TemporaryDirectory() as root:
            report = sweep(root)

    device_label = args.device if args.scale == 1.0 else f"{args.device}-x{args.scale:g}"
    table = Table(
        f"Mechanism comparison — {device_label}, weights 2:1, both saturating",
        ["mechanism", "high IOPS", "low IOPS", "ratio", "read p90"],
    )
    failures = 0
    for outcome in report.outcomes:
        name = outcome.run.axes["mechanism"]
        if not outcome.ok:
            failures += 1
            error = outcome.error or {}
            table.add_row(name, "failed", error.get("type", "?"), "-", "-")
            continue
        result = outcome.result
        p90 = result["read_p90"]
        table.add_row(
            name,
            format_si(result["high_iops"]),
            format_si(result["low_iops"]),
            format_ratio(result["high_iops"], result["low_iops"]),
            f"{p90 * 1e6:.0f}us" if p90 is not None else "n/a",
        )
    table.print()
    cached = report.cache_hits
    if cached:
        print(f"\n({cached}/{report.runs_total} mechanisms served from cache)")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
