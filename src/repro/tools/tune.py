"""``python -m repro.tools.tune`` — derive vrate bounds for a device (§3.4).

Runs the two ResourceControlBench scenarios across a vrate sweep and prints
the table plus the derived ``io.cost.qos`` bounds.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.analysis.report import Table
from repro.block.device_models import DEVICE_CATALOG, get_device_spec
from repro.core.qos_tuning import DEFAULT_VRATE_CANDIDATES, tune_qos

MB = 1024 * 1024


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.tune",
        description="Derive QoS vrate bounds via the RCBench two-scenario sweep.",
    )
    parser.add_argument(
        "device",
        nargs="?",
        default="ssd_new",
        help=f"device model name (one of: {', '.join(sorted(DEVICE_CATALOG))})",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--candidates", type=float, nargs="+",
        default=list(DEFAULT_VRATE_CANDIDATES),
    )
    parser.add_argument("--duration", type=float, default=8.0,
                        help="simulated seconds per sweep point")
    parser.add_argument("--mem-mb", type=int, default=128)
    parser.add_argument("--latency-target-ms", type=float, default=75.0)
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    spec = get_device_spec(args.device)
    if args.scale != 1.0:
        spec = spec.scaled(args.scale)

    print(f"tuning QoS for {spec.name} (two-scenario vrate sweep)...")
    result = tune_qos(
        spec,
        candidates=args.candidates,
        latency_threshold=args.latency_target_ms * 1e-3,
        duration=args.duration,
        total_mem=args.mem_mb * MB,
        seed=args.seed,
    )

    table = Table(
        f"RCBench vrate sweep — {spec.name}",
        ["vrate", "solo RPS (paging-bound)", "p95 vs memory leak"],
    )
    for vrate in result.candidates:
        table.add_row(
            f"{vrate:.2f}",
            f"{result.solo_rps[vrate]:.0f}",
            f"{result.protected_p95[vrate] * 1e3:.1f}ms",
        )
    table.print()
    print(
        f"\nio.cost.qos bounds: vrate_min={result.vrate_min * 100:.0f}% "
        f"vrate_max={result.vrate_max * 100:.0f}%"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
