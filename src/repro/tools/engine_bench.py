"""``python -m repro.tools.engine_bench`` — engine micro-benchmark.

ROADMAP item 2 ("make the event engine the fastest Python DES it can be")
needs a standing number to optimise against.  This tool runs a fixed
closed-loop rig — 4 KiB random reads at depth 64 against the calibrated
SSD under iocost, driven on the block layer's callback completion fast
path (docs/PERF.md) — and reports:

* throughput: bios/sec and simulator events/sec (wall clock, best of N);
* the deterministic work profile from :data:`repro.obs.prof.PROF`
  (events dispatched, heap ops, pump calls per completed bio);
* the top wall-clock hotspots from one ``cProfile`` pass.

The JSON artifact (``BENCH_engine.json`` by default) is an **append-only
trajectory**: a JSON list of schema-versioned entries, one appended per
invocation, so the bios/sec history across PRs lives in one file.  A
legacy single-entry artifact (schema ``/1``) is wrapped into a list on
first append.  ``--check-floor`` compares the new entry's bios/sec
against a committed floor file and fails the run on a >15% regression.

Wall-clock timing and ``cProfile`` are allowed here because this is a
``repro.tools`` module — simlint's ``no-wallclock`` rule exempts the tools
tree, and nothing under ``src/repro`` outside it may time real time.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.block.bio import Bio, IOOp
from repro.block.device import Device
from repro.block.device_models import SSD_NEW
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.obs.overhead import wall_time
from repro.obs.prof import PROF
from repro.sim import Simulator
from repro.testbed import make_controller

#: Schema tag for one trajectory entry (bump on incompatible change).
#: ``/1`` was a single-entry artifact; ``/2`` entries live in a list and
#: are produced by the callback-fast-path rig.
BENCH_SCHEMA = "repro.tools.engine_bench/2"
#: CI fails when measured bios/sec drops more than this below the floor.
REGRESSION_TOLERANCE = 0.15

DEFAULT_BIOS = 50_000
DEFAULT_DEPTH = 64


class _BenchDriver:
    """Closed-loop rig on the callback completion fast path.

    Keeps ``depth`` bios outstanding until ``bios`` have been issued, then
    drains; sectors are chunk-pre-drawn (stream-equivalent to scalar
    draws).  No Signals, no generator resume — each completion issues its
    successor directly from the completion callback.
    """

    __slots__ = ("layer", "group", "rng", "bios", "depth", "issued", "done",
                 "on_drained", "_sectors", "_i")

    SECTOR_CHUNK = 4096

    def __init__(
        self,
        layer: BlockLayer,
        group: Any,
        rng: np.random.Generator,
        bios: int,
        depth: int,
        on_drained: Callable[[], None],
    ) -> None:
        self.layer = layer
        self.group = group
        self.rng = rng
        self.bios = bios
        self.depth = depth
        self.issued = 0
        self.done = 0
        self.on_drained = on_drained
        self._sectors: List[int] = []
        self._i = 0

    def start(self) -> None:
        for _ in range(min(self.depth, self.bios)):
            self._issue()

    def _next_sector(self) -> int:
        i = self._i
        if i == len(self._sectors):
            self._sectors = (
                self.rng.integers(0, 1 << 30, size=self.SECTOR_CHUNK) * 8
            ).tolist()
            i = 0
        self._i = i + 1
        return self._sectors[i]

    def _issue(self) -> None:
        self.issued += 1
        self.layer.submit(
            Bio(IOOp.READ, 4096, self._next_sector(), self.group),
            on_done=self._done_cb,
        )

    def _done_cb(self, bio: Bio) -> None:
        self.done += 1
        if self.issued < self.bios:
            self._issue()
        elif self.done >= self.bios:
            self.on_drained()


def run_fixed_load(bios: int = DEFAULT_BIOS, depth: int = DEFAULT_DEPTH) -> Simulator:
    """Run the fixed rig to completion; returns the drained simulator.

    Deterministic: fixed seeds, fixed bio count, closed loop at ``depth``.
    The same rig shape backs the tracing/profiler overhead benchmarks, so
    the bios/sec reported here is directly comparable across PRs.
    """
    sim = Simulator()
    device = Device(sim, SSD_NEW, np.random.default_rng(0))
    controller = make_controller("iocost", SSD_NEW)
    layer = BlockLayer(sim, device, controller)
    group = CgroupTree().create("bench")
    driver = _BenchDriver(
        layer, group, np.random.default_rng(1), bios, depth,
        # Stop the plan timer once the last bio completes so the heap drains.
        on_drained=controller.detach,
    )
    driver.start()
    sim.run()
    if layer.completed_ios != bios:
        raise RuntimeError(
            f"bench rig completed {layer.completed_ios} of {bios} bios"
        )
    return sim


def profile_counters(bios: int, depth: int) -> Dict[str, Any]:
    """One run under the deterministic self-profiler; snapshot + per-bio."""
    PROF.reset()
    with PROF:
        run_fixed_load(bios, depth)
    counters = PROF.snapshot()
    counters["per_bio"] = PROF.per_bio()
    PROF.reset()
    return counters


def hotspots(bios: int, depth: int, top: int = 15) -> List[Dict[str, Any]]:
    """Top wall-clock hotspots of one profiled run (cumulative time)."""
    profiler = cProfile.Profile()
    profiler.enable()
    run_fixed_load(bios, depth)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=io.StringIO())
    rows: List[Dict[str, Any]] = []
    entries = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: item[1][3],  # cumulative time
        reverse=True,
    )
    for (filename, lineno, funcname), row in entries[:top]:
        calls, _primitive, tottime, cumtime, _callers = row
        rows.append(
            {
                "func": f"{Path(filename).name}:{lineno}({funcname})",
                "ncalls": calls,
                "tottime_sec": round(tottime, 6),
                "cumtime_sec": round(cumtime, 6),
            }
        )
    return rows


def run_bench(
    bios: int = DEFAULT_BIOS,
    depth: int = DEFAULT_DEPTH,
    repeat: int = 3,
    top: int = 15,
) -> Dict[str, Any]:
    """One full trajectory entry: timing + deterministic profile + hotspots."""
    sim = run_fixed_load(bios, depth)  # warm-up, and the event count
    wall_sec = wall_time(lambda: run_fixed_load(bios, depth), repeat=repeat)
    return {
        "schema": BENCH_SCHEMA,
        "bios": bios,
        "depth": depth,
        "repeat": repeat,
        "wall_sec": round(wall_sec, 6),
        "bios_per_sec": round(bios / wall_sec, 1),
        "events_processed": sim.events_processed,
        "events_per_sec": round(sim.events_processed / wall_sec, 1),
        "sim_profile": profile_counters(bios, depth),
        "hotspots": hotspots(bios, depth, top),
    }


def load_trajectory(path: Path) -> List[Dict[str, Any]]:
    """Read a trajectory file; wraps a legacy single-entry (``/1``) object."""
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    if isinstance(data, dict):
        return [data]
    if not isinstance(data, list):
        raise ValueError(f"{path} is neither a trajectory list nor an entry")
    return data


def append_trajectory(entry: Dict[str, Any], path: Path) -> List[Dict[str, Any]]:
    """Append ``entry`` to the trajectory at ``path`` (append-only)."""
    trajectory = load_trajectory(path)
    trajectory.append(entry)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return trajectory


def check_floor(result: Dict[str, Any], floor_path: Path) -> Optional[str]:
    """Compare against the committed floor; returns an error string or None."""
    floor = json.loads(floor_path.read_text())
    floor_rate = float(floor["bios_per_sec"])
    measured = float(result["bios_per_sec"])
    allowed = floor_rate * (1.0 - REGRESSION_TOLERANCE)
    if measured < allowed:
        return (
            f"engine throughput regression: {measured:.0f} bios/sec is more "
            f"than {REGRESSION_TOLERANCE:.0%} below the committed floor "
            f"{floor_rate:.0f} (minimum allowed {allowed:.0f})"
        )
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.engine_bench",
        description="Benchmark the simulation engine; append to BENCH_engine.json.",
    )
    parser.add_argument("--bios", type=int, default=DEFAULT_BIOS)
    parser.add_argument("--depth", type=int, default=DEFAULT_DEPTH)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--top", type=int, default=15, help="hotspots to keep")
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_engine.json"),
        help="trajectory path, appended to (default: ./BENCH_engine.json)",
    )
    parser.add_argument(
        "--check-floor", type=Path, default=None, metavar="FLOOR_JSON",
        help="fail (exit 1) if bios/sec regresses >15%% below this floor file",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    result = run_bench(args.bios, args.depth, args.repeat, args.top)
    trajectory = append_trajectory(result, args.out)
    print(
        f"{result['bios']} bios in {result['wall_sec'] * 1e3:.0f} ms -> "
        f"{result['bios_per_sec']:,.0f} bios/sec "
        f"({result['events_per_sec']:,.0f} events/sec)"
    )
    per_bio = result["sim_profile"]["per_bio"]
    if per_bio is not None:
        print(
            "per bio: "
            f"{per_bio['events_dispatched']:.2f} events, "
            f"{per_bio['heap_pushes']:.2f} heap pushes, "
            f"{per_bio['pump_calls']:.2f} pump calls"
        )
    print(f"appended entry {len(trajectory)} to {args.out}")
    if args.check_floor is not None:
        error = check_floor(result, args.check_floor)
        if error is not None:
            print(error)
            return 1
        print(f"floor check passed ({args.check_floor})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    raise SystemExit(main())
