"""Cgroup hierarchy substrate.

A minimal cgroup-v2-like tree: named nodes with configurable ``weight``
(default 100, range 1..10000 as in the kernel's ``io.weight``), per-node IO
statistics, and a factory for the production hierarchy of the paper's
Figure 1 (``system`` / ``hostcritical`` / ``workload`` slices).
"""

from repro.cgroup.tree import (
    Cgroup,
    CgroupError,
    CgroupIOStats,
    CgroupTree,
    IOStats,
    MAX_WEIGHT,
    MIN_WEIGHT,
    UNATTRIBUTED_DEV,
    make_meta_hierarchy,
)

__all__ = [
    "Cgroup",
    "CgroupError",
    "CgroupIOStats",
    "CgroupTree",
    "IOStats",
    "MAX_WEIGHT",
    "MIN_WEIGHT",
    "UNATTRIBUTED_DEV",
    "make_meta_hierarchy",
]
