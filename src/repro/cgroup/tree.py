"""Cgroup tree with weights and IO statistics.

Mirrors the pieces of cgroup v2 that IO controllers consume: a rooted tree
of named groups, a per-group ``weight`` in [1, 10000] (default 100)
interpreted proportionally among siblings, and per-group cumulative IO
accounting.  Controllers attach their own per-group state via
:attr:`Cgroup.controller_data`, the moral equivalent of the kernel's
per-policy ``blkg`` data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

MIN_WEIGHT = 1
MAX_WEIGHT = 10000
DEFAULT_WEIGHT = 100


class CgroupError(ValueError):
    """Raised for invalid cgroup operations (bad weight, duplicate child...)."""


#: Device id used when IO is accounted without naming a device (direct
#: ``stats.account(...)`` calls outside any block layer).  Mirrors the
#: kernel's 0:0 pseudo-device.
UNATTRIBUTED_DEV = "0:0"


@dataclass
class IOStats:
    """One device's cumulative IO accounting for one cgroup.

    ``rbytes``/``wbytes``/``rios``/``wios`` count at submission, as the
    kernel does (``blk_cgroup_bio_start``).  ``dbytes``/``dios`` exist for
    io.stat format parity (the simulation issues no discards).
    ``wait_total`` accumulates, at completion, the wall **seconds** each bio
    spent above the device (throttling + issue-path CPU); the io.stat
    surface reports it in microseconds via :attr:`wait_usec` — the single
    place that conversion happens.  ``errors`` counts bios that completed
    with a terminal non-OK status and ``requeues`` block-layer retry
    requeues (docs/FAULTS.md); both are filled in by the block layer's
    completion path.
    """

    rbytes: int = 0
    wbytes: int = 0
    rios: int = 0
    wios: int = 0
    dbytes: int = 0
    dios: int = 0
    wait_total: float = 0.0
    errors: int = 0
    requeues: int = 0

    def account(self, is_write: bool, nbytes: int) -> None:
        if is_write:
            self.wbytes += nbytes
            self.wios += 1
        else:
            self.rbytes += nbytes
            self.rios += 1

    @property
    def wait_usec(self) -> float:
        """``wait_total`` (seconds) in io.stat's microsecond unit."""
        return self.wait_total * 1e6

    @property
    def total_bytes(self) -> int:
        return self.rbytes + self.wbytes

    @property
    def total_ios(self) -> int:
        return self.rios + self.wios


class CgroupIOStats:
    """Per-device IO accounting for one cgroup (``Cgroup.stats``).

    Holds one :class:`IOStats` record per device id (``maj:min`` string),
    matching the kernel where ``io.stat`` reports one line per device.  The
    machine-wide aggregates the old single-device ``IOStats`` surfaced
    (``rbytes``, ``wait_total``, ``total_bytes``, ...) remain available as
    read-only properties summing over devices, so existing callers keep
    working unchanged.
    """

    __slots__ = ("per_device",)

    def __init__(self) -> None:
        self.per_device: Dict[str, IOStats] = {}

    def device(self, dev: str) -> IOStats:
        """The record for one device id (created on first use)."""
        stats = self.per_device.get(dev)
        if stats is None:
            stats = IOStats()
            self.per_device[dev] = stats
        return stats

    def devices(self) -> Iterator[tuple]:
        """Iterate ``(dev_id, IOStats)`` pairs."""
        return iter(self.per_device.items())

    def account(self, is_write: bool, nbytes: int, dev: str = UNATTRIBUTED_DEV) -> None:
        self.device(dev).account(is_write, nbytes)

    # -- machine-wide aggregates (the legacy single-device surface) -------

    def _sum(self, attr: str):
        return sum(getattr(stats, attr) for stats in self.per_device.values())

    @property
    def rbytes(self) -> int:
        return self._sum("rbytes")

    @property
    def wbytes(self) -> int:
        return self._sum("wbytes")

    @property
    def rios(self) -> int:
        return self._sum("rios")

    @property
    def wios(self) -> int:
        return self._sum("wios")

    @property
    def dbytes(self) -> int:
        return self._sum("dbytes")

    @property
    def dios(self) -> int:
        return self._sum("dios")

    @property
    def wait_total(self) -> float:
        return self._sum("wait_total")

    @property
    def wait_usec(self) -> float:
        return self._sum("wait_usec")

    @property
    def errors(self) -> int:
        return self._sum("errors")

    @property
    def requeues(self) -> int:
        return self._sum("requeues")

    @property
    def total_bytes(self) -> int:
        return self.rbytes + self.wbytes

    @property
    def total_ios(self) -> int:
        return self.rios + self.wios


class Cgroup:
    """One node in the hierarchy.

    Use :meth:`CgroupTree.create` rather than instantiating directly so the
    tree index stays consistent.
    """

    def __init__(self, name: str, parent: Optional["Cgroup"], weight: int = DEFAULT_WEIGHT):
        if parent is not None and not name:
            raise CgroupError("non-root cgroup needs a name")
        if "/" in name:
            raise CgroupError("cgroup name must not contain '/'")
        self.name = name
        self.parent = parent
        self.children: Dict[str, Cgroup] = {}
        self._weight = DEFAULT_WEIGHT
        self.weight = weight
        self.stats = CgroupIOStats()
        # Per-controller private state, keyed by controller name.
        self.controller_data: Dict[str, Any] = {}
        # Sequential-detection state: sector expected next, per device id.
        self.last_end_sector: Dict[str, int] = {}

    # -- weight -----------------------------------------------------------

    @property
    def weight(self) -> int:
        return self._weight

    @weight.setter
    def weight(self, value: int) -> None:
        if not (MIN_WEIGHT <= value <= MAX_WEIGHT):
            raise CgroupError(
                f"weight {value} out of range [{MIN_WEIGHT}, {MAX_WEIGHT}]"
            )
        self._weight = int(value)

    # -- topology ---------------------------------------------------------

    @property
    def path(self) -> str:
        """Slash-joined path from the root, '' for the root itself."""
        parts: List[str] = []
        node: Optional[Cgroup] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def ancestors(self, include_self: bool = False) -> Iterator["Cgroup"]:
        """Walk towards the root (root last)."""
        node = self if include_self else self.parent
        while node is not None:
            yield node
            node = node.parent

    def walk(self) -> Iterator["Cgroup"]:
        """Depth-first pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children.values():
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Cgroup({self.path or '/'}, weight={self.weight})"


class CgroupTree:
    """The hierarchy: a root plus a path index."""

    def __init__(self) -> None:
        self.root = Cgroup("", None)
        self._index: Dict[str, Cgroup] = {"": self.root}
        # Observers notified just before a cgroup is removed; the io.stat
        # collector uses this to fold the dying group's counters into its
        # parent (kernel rstat flush-on-release semantics).
        self._remove_hooks: List[Any] = []

    def add_remove_hook(self, hook: Any) -> None:
        """Register ``hook(cgroup)`` to run before each removal."""
        self._remove_hooks.append(hook)

    def create(self, path: str, weight: int = DEFAULT_WEIGHT) -> Cgroup:
        """Create a cgroup at ``path``, creating intermediate groups as needed.

        Intermediate groups get the default weight; the leaf gets ``weight``.
        Creating an existing path is an error (use :meth:`lookup`).
        """
        if not path:
            raise CgroupError("cannot re-create the root")
        if path in self._index:
            raise CgroupError(f"cgroup {path!r} already exists")
        parent = self.root
        parts = path.split("/")
        for depth, part in enumerate(parts):
            prefix = "/".join(parts[: depth + 1])
            node = self._index.get(prefix)
            if node is None:
                is_leaf = depth == len(parts) - 1
                node = Cgroup(part, parent, weight if is_leaf else DEFAULT_WEIGHT)
                parent.children[part] = node
                self._index[prefix] = node
            parent = node
        return parent

    def lookup(self, path: str) -> Cgroup:
        """Return the cgroup at ``path`` (raises :class:`CgroupError` if absent)."""
        try:
            return self._index[path]
        except KeyError:
            raise CgroupError(f"no cgroup at {path!r}") from None

    def get_or_create(self, path: str, weight: int = DEFAULT_WEIGHT) -> Cgroup:
        if path in self._index:
            return self._index[path]
        return self.create(path, weight)

    def remove(self, path: str) -> None:
        """Remove a leaf cgroup (children must be removed first)."""
        node = self.lookup(path)
        if node.parent is None:  # is_root, spelled so the check narrows
            raise CgroupError("cannot remove the root")
        if node.children:
            raise CgroupError(f"cgroup {path!r} still has children")
        for hook in self._remove_hooks:
            hook(node)
        del node.parent.children[node.name]
        del self._index[path]

    def __contains__(self, path: str) -> bool:
        return path in self._index

    def __iter__(self) -> Iterator[Cgroup]:
        return self.root.walk()

    def __len__(self) -> int:
        return len(self._index)


def make_meta_hierarchy(
    tree: Optional[CgroupTree] = None,
    workloads: Optional[Dict[str, int]] = None,
) -> CgroupTree:
    """Build the production hierarchy from the paper's Figure 1.

    ``system`` (auxiliary services like chef), ``hostcritical`` (sshd, the
    container agent) and ``workload`` (application containers) slices, with
    ``workloads`` mapping child-container name -> weight under the workload
    slice.
    """
    tree = tree or CgroupTree()
    tree.get_or_create("system.slice", weight=25)
    tree.get_or_create("hostcritical.slice", weight=100)
    tree.get_or_create("workload.slice", weight=500)
    for name, weight in (workloads or {}).items():
        tree.get_or_create(f"workload.slice/{name}", weight=weight)
    return tree
