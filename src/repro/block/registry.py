"""The machine's table of named block devices.

A real machine exposes several block devices side by side (``/dev/vda``,
``/dev/vdb``, ...), each with its own request queue and IO-control policy,
all visible under one cgroup tree.  :class:`DeviceRegistry` is that table
for the simulation: it maps machine-local device names to
:class:`~repro.block.layer.BlockLayer` instances and hands out stable
``maj:min`` device numbers (``8:0``, ``8:16``, ... — the SCSI-disk
convention of 16 minors per disk), which key every per-device surface:
per-cgroup :class:`~repro.cgroup.tree.IOStats` records, ``io.stat`` lines,
tracepoint ``dev`` fields, and monitor snapshot streams.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.block.layer import BlockLayer


class DeviceRegistryError(KeyError):
    """Raised for unknown device names or duplicate registrations."""


#: Linux SCSI-disk numbering: major 8, one disk every 16 minors.
SCSI_MAJOR = 8
MINORS_PER_DISK = 16


def devno_for_index(index: int) -> str:
    """The ``maj:min`` id of the ``index``-th disk (``8:0``, ``8:16``, ...)."""
    if index < 0:
        raise ValueError("device index must be >= 0")
    return f"{SCSI_MAJOR}:{index * MINORS_PER_DISK}"


class DeviceRegistry:
    """Named block layers of one simulated machine, in registration order."""

    def __init__(self) -> None:
        self._layers: Dict[str, "BlockLayer"] = {}

    # -- registration -------------------------------------------------------

    def next_devno(self) -> str:
        """The devno the next registered device should be created with."""
        return devno_for_index(len(self._layers))

    def add(self, name: str, layer: "BlockLayer") -> "BlockLayer":
        """Register ``layer`` under the machine-local ``name`` (``vda``...)."""
        if not name or "/" in name:
            raise DeviceRegistryError(f"invalid device name {name!r}")
        if name in self._layers:
            raise DeviceRegistryError(f"device {name!r} already registered")
        devno = layer.dev
        if any(existing.dev == devno for existing in self._layers.values()):
            raise DeviceRegistryError(f"devno {devno!r} already registered")
        self._layers[name] = layer
        return layer

    # -- lookup -------------------------------------------------------------

    def layer(self, name: str) -> "BlockLayer":
        try:
            return self._layers[name]
        except KeyError:
            raise DeviceRegistryError(
                f"no device {name!r} (have {sorted(self._layers)})"
            ) from None

    def __getitem__(self, name: str) -> "BlockLayer":
        return self.layer(name)

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def __iter__(self) -> Iterator[str]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def names(self) -> List[str]:
        return list(self._layers)

    def items(self) -> Iterator[Tuple[str, "BlockLayer"]]:
        return iter(self._layers.items())

    def layers(self) -> List["BlockLayer"]:
        return list(self._layers.values())

    @property
    def default(self) -> "BlockLayer":
        """The first-registered device's layer (the machine's data device)."""
        if not self._layers:
            raise DeviceRegistryError("registry is empty")
        return next(iter(self._layers.values()))

    def controllers_by_devno(self) -> Dict[str, object]:
        """``devno -> controller`` for every registered device."""
        return {layer.dev: layer.controller for layer in self._layers.values()}

    def name_of(self, devno: str) -> str:
        """Reverse lookup: the registered name for a ``maj:min`` id."""
        for name, layer in self._layers.items():
            if layer.dev == devno:
                return name
        raise DeviceRegistryError(f"no device with devno {devno!r}")
