"""Catalogue of simulated device models.

Three families, standing in for the paper's hardware:

* **Lab devices** (`ssd_old`, `ssd_new`, `ssd_enterprise`) — the three SSDs
  used in §4's experiments: "an older generation commercial SSD, a newer
  generation commercial SSD, a high-end enterprise-grade SSD".  The
  enterprise device is calibrated to the paper's 750K max read IOPS
  (Fig 9); the older device has low latency but modest IOPS ("due to its
  relatively lower latency, [it] has higher demands in terms of IO
  control", §4.2).
* **Fleet devices** (`fleet_a` .. `fleet_h`) — the eight heterogeneous SSD
  types of Figure 3.  The paper only gives qualitative anchors ("SSD H
  achieves high IOPS at a low latency, SSD G offers low IOPS and a
  relatively low latency, and SSD A provides moderate IOPS with a higher
  latency"); the rest are spread to produce similar diversity.
* **Remote volumes** (`ebs_gp3`, `ebs_io2`, `gcp_pd_balanced`,
  `gcp_pd_ssd`) — the §4.7 cloud configurations, modelled as
  provisioned-IOPS devices with a network round trip.

Plus `hdd`, the §4.3 spinning disk: a single head, millisecond seeks, so
random IO costs ~300× sequential — the regime where occupancy-based costing
beats sector-based fairness.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.block.device import DeviceSpec

MB = 1e6
GB = 1e9


def _ssd(
    name: str,
    rand_read_iops: float,
    read_lat: float,
    rand_write_iops: float,
    write_lat: float,
    read_bw: float,
    write_bw: float,
    **kwargs: Any,
) -> DeviceSpec:
    """Build an SSD spec from headline numbers.

    ``parallelism`` falls out of IOPS × latency (Little's law); sequential
    base service times are set slightly below random (SSDs serve sequential
    reads marginally faster thanks to readahead and striping).
    """
    parallelism = max(1, round(rand_read_iops * read_lat))
    srv_rand_read = parallelism / rand_read_iops
    write_parallel_service = parallelism / rand_write_iops
    return DeviceSpec(
        name=name,
        parallelism=parallelism,
        srv_rand_read=srv_rand_read,
        srv_seq_read=srv_rand_read * 0.85,
        srv_rand_write=write_parallel_service,
        srv_seq_write=write_parallel_service * 0.9,
        read_bw=read_bw,
        write_bw=write_bw,
        **kwargs,
    )


DEVICE_CATALOG: Dict[str, DeviceSpec] = {}


def _register(spec: DeviceSpec) -> DeviceSpec:
    DEVICE_CATALOG[spec.name] = spec
    return spec


# --- lab devices (§4 experiments) -----------------------------------------

SSD_OLD = _register(
    _ssd(
        "ssd_old",
        rand_read_iops=90_000,
        read_lat=90e-6,
        rand_write_iops=60_000,
        write_lat=120e-6,
        read_bw=500 * MB,
        write_bw=400 * MB,
        sigma=0.25,
        tail_prob=0.002,
        tail_scale=20.0,
        # Old-generation flash: a small write buffer and a sustained write
        # rate far below burst; under sustained write floods reads degrade
        # heavily (the §5 "unpredictable SSD behaviours").
        gc_buffer_bytes=int(128 * MB),
        gc_drain_bps=120 * MB,
        gc_write_slowdown=6.0,
        gc_read_slowdown=3.0,
        nr_slots=128,
    )
)

SSD_NEW = _register(
    _ssd(
        "ssd_new",
        rand_read_iops=300_000,
        read_lat=85e-6,
        rand_write_iops=250_000,
        write_lat=35e-6,
        read_bw=2.5 * GB,
        write_bw=1.8 * GB,
        sigma=0.25,
        tail_prob=0.003,
        tail_scale=25.0,
        gc_buffer_bytes=int(512 * MB),
        gc_drain_bps=900 * MB,
        nr_slots=256,
    )
)

SSD_ENTERPRISE = _register(
    _ssd(
        "ssd_enterprise",
        rand_read_iops=750_000,
        read_lat=85e-6,
        rand_write_iops=400_000,
        write_lat=25e-6,
        read_bw=6 * GB,
        write_bw=4 * GB,
        sigma=0.15,
        tail_prob=0.0005,
        tail_scale=10.0,
        gc_buffer_bytes=int(2 * GB),
        gc_drain_bps=2 * GB,
        nr_slots=1024,
    )
)

# --- fleet devices (Figure 3) ----------------------------------------------
# Anchors from the paper: H = high IOPS, low latency; G = low IOPS,
# relatively low latency; A = moderate IOPS, higher latency.

_FLEET_HEADLINES = {
    # name: (rand_read_iops, read_lat, rand_write_iops, write_lat, r_bw, w_bw)
    "fleet_a": (120_000, 180e-6, 70_000, 250e-6, 1.2 * GB, 0.9 * GB),
    "fleet_b": (250_000, 100e-6, 150_000, 90e-6, 2.0 * GB, 1.4 * GB),
    "fleet_c": (90_000, 150e-6, 55_000, 180e-6, 0.9 * GB, 0.7 * GB),
    "fleet_d": (400_000, 90e-6, 220_000, 60e-6, 3.0 * GB, 2.2 * GB),
    "fleet_e": (60_000, 120e-6, 35_000, 200e-6, 0.6 * GB, 0.45 * GB),
    "fleet_f": (200_000, 110e-6, 120_000, 100e-6, 1.8 * GB, 1.2 * GB),
    "fleet_g": (50_000, 80e-6, 30_000, 110e-6, 0.5 * GB, 0.4 * GB),
    "fleet_h": (600_000, 60e-6, 350_000, 30e-6, 5.0 * GB, 3.5 * GB),
}

for _name, (_rr, _rl, _wr, _wl, _rbw, _wbw) in _FLEET_HEADLINES.items():
    _register(
        _ssd(
            _name,
            rand_read_iops=_rr,
            read_lat=_rl,
            rand_write_iops=_wr,
            write_lat=_wl,
            read_bw=_rbw,
            write_bw=_wbw,
            sigma=0.25,
            tail_prob=0.002,
            tail_scale=15.0,
            gc_buffer_bytes=int(256 * MB),
            gc_drain_bps=_wbw * 0.35,
        )
    )

# --- spinning disk (§4.3) ----------------------------------------------------

HDD = _register(
    DeviceSpec(
        name="hdd",
        parallelism=1,
        srv_rand_read=7e-3,  # seek + half rotation
        srv_seq_read=23e-6,  # 4 KiB at streaming rate
        srv_rand_write=7.5e-3,
        srv_seq_write=25e-6,
        read_bw=180 * MB,
        write_bw=160 * MB,
        sigma=0.2,
        rotational=True,
        nr_slots=64,
    )
)

# --- remote volumes (§4.7) ---------------------------------------------------

EBS_GP3 = _register(
    DeviceSpec(
        name="ebs_gp3",
        parallelism=16,
        srv_rand_read=200e-6,
        srv_seq_read=200e-6,
        srv_rand_write=250e-6,
        srv_seq_write=250e-6,
        read_bw=125 * MB,
        write_bw=125 * MB,
        sigma=0.3,
        network_rtt=0.5e-3,
        iops_limit=3000,
        nr_slots=256,
    )
)

EBS_IO2 = _register(
    DeviceSpec(
        name="ebs_io2",
        parallelism=64,
        srv_rand_read=150e-6,
        srv_seq_read=150e-6,
        srv_rand_write=180e-6,
        srv_seq_write=180e-6,
        read_bw=1 * GB,
        write_bw=1 * GB,
        sigma=0.25,
        network_rtt=0.3e-3,
        iops_limit=64000,
        nr_slots=1024,
    )
)

GCP_PD_BALANCED = _register(
    DeviceSpec(
        name="gcp_pd_balanced",
        parallelism=32,
        srv_rand_read=300e-6,
        srv_seq_read=300e-6,
        srv_rand_write=350e-6,
        srv_seq_write=350e-6,
        read_bw=240 * MB,
        write_bw=240 * MB,
        sigma=0.3,
        network_rtt=0.8e-3,
        iops_limit=6000,
        nr_slots=256,
    )
)

GCP_PD_SSD = _register(
    DeviceSpec(
        name="gcp_pd_ssd",
        parallelism=48,
        srv_rand_read=200e-6,
        srv_seq_read=200e-6,
        srv_rand_write=220e-6,
        srv_seq_write=220e-6,
        read_bw=480 * MB,
        write_bw=480 * MB,
        sigma=0.25,
        network_rtt=0.4e-3,
        iops_limit=30000,
        nr_slots=512,
    )
)


def get_device_spec(name: str) -> DeviceSpec:
    """Look a device model up by name (raises ``KeyError`` with the roster)."""
    try:
        return DEVICE_CATALOG[name]
    except KeyError:
        roster = ", ".join(sorted(DEVICE_CATALOG))
        raise KeyError(f"unknown device {name!r}; available: {roster}") from None
