"""IO trace recording and replay.

Production IO-control work is trace-driven: you capture what a workload
did (blktrace-style) and replay it against candidate configurations.  This
module provides both halves for the simulated stack:

* :class:`TraceRecorder` — hooks a :class:`~repro.block.layer.BlockLayer`
  and records every completed bio as a :class:`TraceRecord` (submit time,
  cgroup, direction, size, sector, flags, latency).
* :class:`TraceReplayer` — replays records open-loop with their original
  inter-arrival spacing (optionally time-scaled) into any layer, mapping
  cgroup paths through a provided tree.

Traces round-trip through a compact JSON-lines format for storage.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Optional, TextIO

from repro.block.bio import Bio, BioFlags, IOOp
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.sim import Simulator


@dataclass(frozen=True)
class TraceRecord:
    """One completed IO."""

    submit_time: float
    cgroup: str
    op: str               # "read" | "write"
    nbytes: int
    sector: int
    flags: int            # BioFlags bitmask
    latency: float
    #: ioprio class (0 none / 1 RT / 2 BE / 3 idle).  Default None keeps
    #: traces saved before this field existed loadable.
    prio: Optional[int] = None

    def to_json(self) -> str:
        return json.dumps(asdict(self), separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceRecord":
        return cls(**json.loads(line))


class TraceRecorder:
    """Record every completion on a block layer.

    Chains any previously-installed completion hook, so it can wrap a live
    experiment without disturbing it.
    """

    def __init__(self, layer: BlockLayer) -> None:
        self.layer = layer
        self.records: List[TraceRecord] = []
        self._installed = False
        self._prev_hook: Optional[Callable[[Bio], None]] = None

    def install(self) -> "TraceRecorder":
        if self._installed:
            return self
        device = self.layer.device
        self._prev_hook = device.on_complete

        def hook(bio: Bio) -> None:
            if self._prev_hook is not None:
                self._prev_hook(bio)
            self.records.append(
                TraceRecord(
                    submit_time=bio.submit_time,
                    cgroup=bio.cgroup.path,
                    op=bio.op.value,
                    nbytes=bio.nbytes,
                    sector=bio.sector,
                    flags=bio.flags.value,
                    latency=bio.latency,
                    prio=bio.prio,
                )
            )

        device.on_complete = hook
        self._installed = True
        return self

    def save(self, stream: TextIO) -> int:
        """Write records as JSON lines; returns the count."""
        ordered = sorted(self.records, key=lambda record: record.submit_time)
        for record in ordered:
            stream.write(record.to_json() + "\n")
        return len(ordered)


def load_trace(stream: TextIO) -> List[TraceRecord]:
    """Load a JSON-lines trace."""
    return [TraceRecord.from_json(line) for line in stream if line.strip()]


class TraceReplayer:
    """Replay a trace open-loop into a block layer."""

    def __init__(
        self,
        sim: Simulator,
        layer: BlockLayer,
        cgroups: CgroupTree,
        records: Iterable[TraceRecord],
        time_scale: float = 1.0,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.sim = sim
        self.layer = layer
        self.cgroups = cgroups
        self.records = sorted(records, key=lambda record: record.submit_time)
        self.time_scale = time_scale
        self.submitted = 0
        self.completed = 0
        self.latencies: List[float] = []
        self.latencies_by_cgroup: Dict[str, List[float]] = {}

    def start(self) -> "TraceReplayer":
        if not self.records:
            return self
        origin = self.records[0].submit_time
        for record in self.records:
            delay = (record.submit_time - origin) * self.time_scale
            self.sim.schedule(delay, self._submit, record)
        return self

    def _submit(self, record: TraceRecord) -> None:
        group = self.cgroups.get_or_create(record.cgroup)
        bio = Bio(
            IOOp(record.op),
            record.nbytes,
            record.sector,
            group,
            flags=BioFlags(record.flags),
            prio=record.prio,
        )
        self.submitted += 1
        self.layer.submit(bio).wait(self._done)

    def _done(self, bio: Bio) -> None:
        self.completed += 1
        self.latencies.append(bio.latency)
        self.latencies_by_cgroup.setdefault(bio.cgroup.path, []).append(bio.latency)
