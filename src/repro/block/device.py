"""Simulated block storage device.

The device is the hardware substitute for the paper's SSDs, spinning disks,
and cloud volumes.  It reproduces the *observable* behaviour IO control
reacts to:

* bounded internal parallelism (``parallelism`` service channels) — offered
  load beyond it queues inside the device, which is where completion-latency
  inflation under saturation comes from;
* per-request service times by operation class (read/write ×
  physically-sequential/random) plus a size-proportional transfer term, so
  4 KiB random IOPS and sequential bandwidth are independently calibratable;
* lognormal service-time noise with an optional stall tail — the
  "unpredictable SSD behaviours" of §5;
* a write-buffer/garbage-collection model: sustained writes beyond the
  drain rate accumulate *GC debt*; once debt exceeds the buffer, writes (and,
  mildly, reads) slow down until the debt drains — the burst-then-degrade
  behaviour the paper's QoS throttling exists to contain;
* provisioned-rate caps and a network round-trip for remote volumes
  (EBS / GCP-PD).

Service begins in FIFO order per the internal queue; scheduling policy
(reordering, fairness) is the job of the *controller* above the device.
"""

from __future__ import annotations

import hashlib
import math
from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.block.bio import Bio, BioStatus
from repro.obs.trace import TRACE
from repro.sanitize import SANITIZE
from repro.sim import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultPlan


@dataclass(frozen=True)
class DeviceSpec:
    """Calibration parameters for one device model.

    ``srv_*`` are 4 KiB service times at queue depth 1 (seconds); transfer
    beyond 4 KiB is charged at the per-channel share of ``read_bw`` /
    ``write_bw`` (bytes per second, device aggregate).  Peak 4 KiB random
    read IOPS is therefore ``parallelism / srv_rand_read``.
    """

    name: str
    parallelism: int
    srv_rand_read: float
    srv_seq_read: float
    srv_rand_write: float
    srv_seq_write: float
    read_bw: float
    write_bw: float
    sigma: float = 0.2
    tail_prob: float = 0.0
    tail_scale: float = 1.0
    # Write-buffer / garbage-collection model (0 buffer disables it).
    gc_buffer_bytes: int = 0
    gc_drain_bps: float = 0.0
    gc_write_slowdown: float = 4.0
    gc_read_slowdown: float = 1.5
    # Remote-volume model.
    network_rtt: float = 0.0
    iops_limit: float = 0.0  # provisioned IOPS cap, 0 = uncapped
    #: Spinning disk: the internal queue is serviced shortest-seek-first
    #: (NCQ / firmware elevator) instead of read-priority FIFO.
    rotational: bool = False
    # Block-layer request slots available for this device (rq depletion
    # signal for IOCost saturation detection).
    nr_slots: int = 256

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        for attr in ("srv_rand_read", "srv_seq_read", "srv_rand_write", "srv_seq_write"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        if self.read_bw <= 0 or self.write_bw <= 0:
            raise ValueError("bandwidths must be positive")
        if self.nr_slots < 1:
            raise ValueError("nr_slots must be >= 1")

    # -- derived peak rates (used by profiling tests and benchmarks) ------

    @property
    def peak_rand_read_iops(self) -> float:
        return self.parallelism / self.srv_rand_read

    @property
    def peak_seq_read_iops(self) -> float:
        return self.parallelism / self.srv_seq_read

    @property
    def peak_rand_write_iops(self) -> float:
        return self.parallelism / self.srv_rand_write

    @property
    def peak_seq_write_iops(self) -> float:
        return self.parallelism / self.srv_seq_write

    def scaled(self, factor: float) -> "DeviceSpec":
        """A spec uniformly ``factor``× faster (used to down-scale heavy
        benchmarks while preserving relative behaviour)."""
        return replace(
            self,
            name=f"{self.name}-x{factor:g}",
            srv_rand_read=self.srv_rand_read / factor,
            srv_seq_read=self.srv_seq_read / factor,
            srv_rand_write=self.srv_rand_write / factor,
            srv_seq_write=self.srv_seq_write / factor,
            read_bw=self.read_bw * factor,
            write_bw=self.write_bw * factor,
            gc_drain_bps=self.gc_drain_bps * factor,
        )


#: Device id given to devices created outside a :class:`DeviceRegistry`
#: (single-device rigs, unit tests).  Matches the kernel's first SCSI disk.
DEFAULT_DEVNO = "8:0"

#: Service-noise draws pre-computed per refill (docs/PERF.md).  Chunk size
#: is a pure performance knob: numpy array draws consume the bit stream
#: identically to scalar draws, so the sampled sequence is chunk-invariant.
NOISE_CHUNK = 4096


def noise_stream(rng: np.random.Generator, label: str) -> np.random.Generator:
    """A label-keyed child stream of ``rng``'s seed material.

    Mirrors ``Testbed.rng_for``'s SeedSequence labeling: the child's spawn
    key extends the parent's with a hash of ``label``, so sub-streams are a
    pure function of (machine seed, device label, noise label) and never
    consume — or perturb — the parent stream.  Falls back to drawing one
    seed from ``rng`` when it carries no SeedSequence (hand-built
    generators in tests); that consumes parent draws, so catalogue devices
    always take the labeled path.
    """
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    entropy = getattr(seed_seq, "entropy", None)
    if entropy is None:
        return np.random.default_rng(int(rng.integers(0, 2 ** 63)))
    key = int.from_bytes(hashlib.sha256(label.encode()).digest()[:8], "big")
    spawn_key = tuple(getattr(seed_seq, "spawn_key", ())) + (key,)
    child_seq = np.random.SeedSequence(entropy=entropy, spawn_key=spawn_key)
    if SANITIZE.enabled:
        SANITIZE.check_stream(label, child_seq)
    return np.random.default_rng(child_seq)


class Device:
    """Discrete-event model of one block device.

    ``name`` is the machine-local block-device name (``vda``-style; defaults
    to the spec's catalogue name) and ``devno`` the stable ``maj:min`` id
    under which all per-device accounting — io.stat lines, per-cgroup
    :class:`~repro.cgroup.tree.IOStats` records, tracepoint ``dev`` fields —
    is keyed.  Multi-device machines get unique devnos from
    :class:`repro.block.registry.DeviceRegistry`.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: DeviceSpec,
        rng: np.random.Generator,
        *,
        name: Optional[str] = None,
        devno: str = DEFAULT_DEVNO,
        faults: Optional["FaultPlan"] = None,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.rng = rng
        self.name = name if name is not None else spec.name
        self.devno = devno
        # Cached: checked once per submitted bio.
        self._parallelism = spec.parallelism
        # Vectorized service-time noise (docs/PERF.md): scalar per-bio
        # rng.normal()/rng.random() draws are replaced by chunked pre-draws
        # from two label-keyed sub-streams of this device's seed material.
        # Streams are split by *label*, not draw order, so the sigma
        # sequence is identical whether or not the spec has a stall tail
        # (and vice versa), and fault plans — which draw from their own
        # stream — can never shift either.  The multipliers are
        # pre-exponentiated: one float multiply per bio replaces a scalar
        # normal draw plus math.exp.
        self._noise_mult: List[float] = []
        self._noise_i = 0
        self._tail_draws: List[float] = []
        self._tail_i = 0
        self._sigma_rng = noise_stream(rng, "noise:sigma") if spec.sigma > 0 else None
        self._tail_rng = noise_stream(rng, "noise:tail") if spec.tail_prob > 0 else None
        self.on_complete: Optional[Callable[[Bio], None]] = None
        # Internal queues: reads are serviced ahead of queued writes (flash
        # controllers buffer writes and prioritise reads), with a small
        # anti-starvation ratio for writes.
        self._read_queue: Deque[Bio] = deque()
        self._write_queue: Deque[Bio] = deque()
        self._reads_since_write = 0
        self._busy_channels = 0
        self._next_sector = 0  # physical-sequentiality tracker
        # Lazily-drained GC debt in bytes.
        self._gc_debt = 0.0
        self._gc_updated = 0.0
        # Provisioned-IOPS token clock (time the next request may start).
        self._token_time = 0.0
        # Fault injection (repro.faults): requests in service are tracked by
        # bio id so a hung or timed-out request can be aborted; hung bios
        # hold their channel with no completion scheduled.
        self.faults = faults
        self._inservice: Dict[int, Event] = {}
        self._hung: Dict[int, Tuple[Bio, float]] = {}
        # Statistics.
        self.completed_ios = 0
        self.completed_bytes = 0
        self.errored_ios = 0
        self.aborted_ios = 0
        self.gc_slow_ios = 0
        # Cached sanitizer: channel conservation checked at every
        # begin/complete/abort transition (repro.sanitize).
        self._san = SANITIZE
        # Cached tracepoints (single flag check when tracing is disabled).
        self._tp_complete = TRACE.points["bio_complete"]
        self._tp_fault_begin = TRACE.points["dev_fault_begin"]
        self._tp_fault_end = TRACE.points["dev_fault_end"]
        if faults is not None:
            self._schedule_fault_windows(faults)

    # -- public interface ---------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Requests inside the device (being serviced or internally queued)."""
        return self._busy_channels + len(self._read_queue) + len(self._write_queue)

    @property
    def queue_depth(self) -> int:
        return len(self._read_queue) + len(self._write_queue)

    #: Serve one queued write after at most this many priority reads.
    WRITE_STARVATION_LIMIT = 8

    def submit(self, bio: Bio) -> None:
        """Accept a dispatched bio; begins service now or queues internally."""
        if self._busy_channels < self._parallelism:
            self._begin(bio)
        elif bio.is_write:
            self._write_queue.append(bio)
        else:
            self._read_queue.append(bio)

    def _pop_next(self) -> Optional[Bio]:
        if self.spec.rotational:
            return self._pop_shortest_seek()
        reads, writes = self._read_queue, self._write_queue
        take_write = writes and (
            not reads or self._reads_since_write >= self.WRITE_STARVATION_LIMIT
        )
        if take_write:
            self._reads_since_write = 0
            return writes.popleft()
        if reads:
            self._reads_since_write += 1
            return reads.popleft()
        return None

    #: A queued request older than this is serviced regardless of seek
    #: distance (anti-starvation aging, as real firmware elevators do).
    SEEK_AGE_LIMIT = 0.03

    def _pop_shortest_seek(self) -> Optional[Bio]:
        """NCQ-style selection: nearest request wins, bounded by aging."""
        best_queue, best_index, best_distance = None, -1, None
        oldest_queue, oldest_index, oldest_time = None, -1, None
        for queue in (self._read_queue, self._write_queue):
            for index, bio in enumerate(queue):
                distance = abs(bio.sector - self._next_sector)
                if best_distance is None or distance < best_distance:
                    best_queue, best_index, best_distance = queue, index, distance
                issued = bio.issue_time if bio.issue_time is not None else 0.0
                if oldest_time is None or issued < oldest_time:
                    oldest_queue, oldest_index, oldest_time = queue, index, issued
        if best_queue is None:
            return None
        if (
            oldest_time is not None
            and self.sim.now - oldest_time > self.SEEK_AGE_LIMIT
        ):
            bio = oldest_queue[oldest_index]
            del oldest_queue[oldest_index]
            return bio
        bio = best_queue[best_index]
        del best_queue[best_index]
        return bio

    def gc_pressure(self, now: float) -> float:
        """GC debt as a fraction of the buffer (>= 1 means degraded)."""
        if self.spec.gc_buffer_bytes <= 0:
            return 0.0
        self._drain_gc(now)
        return self._gc_debt / self.spec.gc_buffer_bytes

    # -- internals ------------------------------------------------------------

    def _drain_gc(self, now: float) -> None:
        if self.spec.gc_drain_bps > 0:
            elapsed = now - self._gc_updated
            if elapsed > 0:
                self._gc_debt = max(0.0, self._gc_debt - elapsed * self.spec.gc_drain_bps)
        self._gc_updated = now

    def _service_time(self, bio: Bio) -> float:
        spec = self.spec
        if bio.is_write:
            base = spec.srv_seq_write if bio.device_sequential else spec.srv_rand_write
            channel_bw = spec.write_bw / spec.parallelism
        else:
            base = spec.srv_seq_read if bio.device_sequential else spec.srv_rand_read
            channel_bw = spec.read_bw / spec.parallelism
        nbytes = bio.nbytes
        service = base if nbytes <= 4096 else base + (nbytes - 4096) / channel_bw

        # Garbage-collection degradation.
        if spec.gc_buffer_bytes > 0:
            self._drain_gc(self.sim.now)
            if bio.is_write:
                self._gc_debt += bio.nbytes
            if self._gc_debt > spec.gc_buffer_bytes:
                service *= spec.gc_write_slowdown if bio.is_write else spec.gc_read_slowdown
                self.gc_slow_ios += 1

        # Service-time noise with optional stall tail, from the chunked
        # label-keyed sub-streams (see __init__ / docs/PERF.md).
        if self._sigma_rng is not None:
            i = self._noise_i
            if i == len(self._noise_mult):
                self._noise_mult = np.exp(
                    self._sigma_rng.normal(0.0, spec.sigma, NOISE_CHUNK)
                ).tolist()
                i = 0
            self._noise_i = i + 1
            service *= self._noise_mult[i]
        if self._tail_rng is not None:
            i = self._tail_i
            if i == len(self._tail_draws):
                self._tail_draws = self._tail_rng.random(NOISE_CHUNK).tolist()
                i = 0
            self._tail_i = i + 1
            if self._tail_draws[i] < spec.tail_prob:
                service *= spec.tail_scale
        return service + spec.network_rtt

    def _begin(self, bio: Bio) -> None:
        # Physical sequentiality is a property of *service* order (NCQ may
        # reorder queued requests), so it is decided here, not at submit.
        bio.device_sequential = bio.sector == self._next_sector
        self._next_sector = bio.end_sector
        self._busy_channels += 1
        if self._san.enabled:
            self._san.check_channels(self._busy_channels, self._parallelism, self.devno)
        delay = 0.0
        if self.spec.iops_limit > 0:
            interval = 1.0 / self.spec.iops_limit
            start = max(self.sim.now, self._token_time)
            self._token_time = start + interval
            delay = start - self.sim.now
        # The service-time draw happens before the fault decision so the
        # noise stream consumed is identical with and without a fault plan.
        service = self._service_time(bio)
        if self.faults is not None:
            decision = self.faults.decide(self.sim.now, bio)
            service *= decision.latency_mult
            delay += decision.delay
            if decision.error:
                bio.status = BioStatus.EIO
            if decision.hang:
                # Parked: channel held, no completion scheduled.  Resumes at
                # the hang window's end or is reclaimed by abort().
                self._hung[bio.id] = (bio, delay + service)
                return
        self._inservice[bio.id] = self.sim.schedule(delay + service, self._complete, bio)

    def _complete(self, bio: Bio) -> None:
        self._inservice.pop(bio.id, None)
        self._busy_channels -= 1
        if self._san.enabled:
            self._san.check_channels(self._busy_channels, self._parallelism, self.devno)
        if bio.status is BioStatus.OK:
            self.completed_ios += 1
            self.completed_bytes += bio.nbytes
        else:
            self.errored_ios += 1
        if self._read_queue or self._write_queue:
            nxt = self._pop_next()
            if nxt is not None:
                self._begin(nxt)
        if self.on_complete is not None:
            self.on_complete(bio)
        # Emitted after the block layer's completion hook so the bio's
        # complete_time / latency properties are populated.  Failed bios get
        # ``bio_error`` from the block layer instead (after retries).
        if self._tp_complete.enabled and bio.ok and bio.complete_time is not None:
            self._tp_complete.emit(
                self.sim.now,
                dev=self.devno,
                id=bio.id,
                cgroup=bio.cgroup.path,
                op=bio.op.value,
                nbytes=bio.nbytes,
                sector=bio.sector,
                flags=bio.flags.value,
                prio=bio.prio,
                submit_time=bio.submit_time,
                latency=bio.latency,
                device_latency=bio.device_latency,
            )

    # -- fault injection ------------------------------------------------------

    def abort(self, bio: Bio) -> bool:
        """Forget a dispatched bio without completing it (timeout reclaim).

        Covers every place the bio can be: parked in a hang, in service
        (its completion event is cancelled), or still in an internal queue.
        A freed service channel immediately begins the next queued request.
        Returns False when the device does not hold the bio.
        """
        parked = self._hung.pop(bio.id, None)
        if parked is not None:
            self.aborted_ios += 1
            self._free_channel()
            return True
        event = self._inservice.pop(bio.id, None)
        if event is not None:
            event.cancel()
            self.aborted_ios += 1
            self._free_channel()
            return True
        for queue in (self._read_queue, self._write_queue):
            try:
                queue.remove(bio)
            except ValueError:
                continue
            self.aborted_ios += 1
            return True
        return False

    def _free_channel(self) -> None:
        self._busy_channels -= 1
        if self._san.enabled:
            self._san.check_channels(self._busy_channels, self._parallelism, self.devno)
        nxt = self._pop_next()
        if nxt is not None:
            self._begin(nxt)

    def _schedule_fault_windows(self, plan: "FaultPlan") -> None:
        # Boundaries are scheduled unconditionally (not trace-gated) so a
        # finite hang resumes its parked bios whether or not anyone traces.
        # Batched through schedule_bulk: one heap restore for the whole
        # plan instead of one push per window boundary.
        now = self.sim.now
        entries = []
        for index, fault in enumerate(plan.faults):
            entries.append(
                (max(0.0, fault.start - now), self._fault_begin, (index, fault))
            )
            if math.isfinite(fault.end):
                entries.append(
                    (max(0.0, fault.end - now), self._fault_end, (index, fault))
                )
        self.sim.schedule_bulk(entries)

    def _fault_begin(self, index: int, fault: object) -> None:
        if self._tp_fault_begin.enabled:
            end = fault.end  # type: ignore[attr-defined]
            self._tp_fault_begin.emit(
                self.sim.now,
                dev=self.devno,
                kind=fault.kind,  # type: ignore[attr-defined]
                index=index,
                until=end if math.isfinite(end) else -1.0,
            )

    def _fault_end(self, index: int, fault: object) -> None:
        if self._tp_fault_end.enabled:
            self._tp_fault_end.emit(
                self.sim.now,
                dev=self.devno,
                kind=fault.kind,  # type: ignore[attr-defined]
                index=index,
            )
        if fault.kind == "hang":  # type: ignore[attr-defined]
            self._resume_hung()

    def _resume_hung(self) -> None:
        """Un-park hung bios (hang window ended — a controller reset)."""
        if self.faults is not None and self.faults.hang_active(self.sim.now):
            return  # another hang window still covers now
        parked = list(self._hung.values())
        self._hung.clear()
        for bio, remaining in parked:
            self._inservice[bio.id] = self.sim.schedule(remaining, self._complete, bio)
