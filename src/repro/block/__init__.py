"""Block layer substrate: bios, simulated devices, and the dispatch layer."""

from repro.block.bio import Bio, BioFlags, BioStatus, IOOp, SECTOR_SIZE
from repro.block.device import DEFAULT_DEVNO, Device, DeviceSpec
from repro.block.device_models import DEVICE_CATALOG, get_device_spec
from repro.block.layer import BlockLayer
from repro.block.registry import DeviceRegistry, DeviceRegistryError, devno_for_index
from repro.block.trace import TraceRecord, TraceRecorder, TraceReplayer, load_trace

__all__ = [
    "Bio",
    "BioFlags",
    "BioStatus",
    "BlockLayer",
    "DEFAULT_DEVNO",
    "DEVICE_CATALOG",
    "Device",
    "DeviceRegistry",
    "DeviceRegistryError",
    "DeviceSpec",
    "IOOp",
    "SECTOR_SIZE",
    "TraceRecord",
    "TraceRecorder",
    "TraceReplayer",
    "devno_for_index",
    "get_device_spec",
    "load_trace",
]
