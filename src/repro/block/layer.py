"""The block layer: cgroup-attributed bios → controller → device.

Wires a :class:`~repro.block.device.Device` to an
:class:`~repro.controllers.base.IOController` and provides the services the
kernel block layer provides around them:

* bio lifecycle timestamps and completion signalling;
* request-slot accounting (``nr_slots``) — the depletion signal IOCost's
  saturation detection consumes;
* cgroup-relative sequentiality detection (the cost-model feature of §3.2);
* per-device and per-cgroup completion-latency windows (QoS signals);
* the serialized issue-path CPU-cost model for Figure 9 (see
  :mod:`repro.controllers.base`);
* the error/timeout path (docs/FAULTS.md): a dispatched bio that the device
  fails (:mod:`repro.faults`) or that outlives ``io_timeout`` is requeued
  with exponential backoff up to ``max_retries``, then completed with its
  terminal non-OK status.  Every path — success, retry, final error,
  timeout — releases the bio's request slot exactly once, so queue depth
  never leaks; failed bios still feed the per-cgroup latency windows, which
  is how IOCost's QoS loop sees (and reacts to) device degradation.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, Optional

from repro.analysis.stats import LatencyWindow
from repro.block.bio import Bio, BioStatus
from repro.block.device import Device
from repro.cgroup import Cgroup
from repro.obs.prof import PROF
from repro.obs.trace import TRACE
from repro.sanitize import SANITIZE
from repro.sim import Event, Signal, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cgroup import CgroupTree
    from repro.controllers.base import IOController


class BlockLayerError(RuntimeError):
    """Raised on protocol violations (e.g. dispatch with no free slots)."""


class BlockLayer:
    """One device's block layer instance."""

    #: First-retry backoff; retry ``n`` waits ``RETRY_BACKOFF * 2**(n-1)``.
    RETRY_BACKOFF = 1e-3

    def __init__(
        self,
        sim: Simulator,
        device: Device,
        controller: IOController,
        latency_window: float = 1.0,
        io_timeout: Optional[float] = None,
        max_retries: int = 3,
        retry_backoff: Optional[float] = None,
    ) -> None:
        if io_timeout is not None and io_timeout <= 0:
            raise BlockLayerError("io_timeout must be positive (or None)")
        if max_retries < 0:
            raise BlockLayerError("max_retries must be >= 0")
        self.sim = sim
        self.device = device
        self.controller = controller
        #: Stable ``maj:min`` device id all per-device accounting keys on.
        self.dev = device.devno
        #: Cached ``device.spec.nr_slots``: can_dispatch() runs several
        #: times per bio and must not chase three attributes each time.
        self._nr_slots = device.spec.nr_slots
        device.on_complete = self._device_completed
        controller.attach(self)

        #: Abort a dispatched bio that has not completed after this many
        #: simulated seconds (None disables timeout detection).
        self.io_timeout = io_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff if retry_backoff is not None else self.RETRY_BACKOFF
        #: Armed timeout timers by bio id (io_timeout runs only).
        self._timeouts: Dict[int, Event] = {}
        #: Backed-off retries whose slot was not free when the backoff
        #: expired; drained ahead of controller dispatch as slots return.
        self._retryq: Deque[Bio] = deque()

        self.inflight = 0
        self.read_latency = LatencyWindow(latency_window)
        self.write_latency = LatencyWindow(latency_window)
        self.cgroup_latency: Dict[str, LatencyWindow] = {}
        self._latency_window = latency_window

        # CPU-time resource for the controller issue path (Fig 9 model).
        self._cpu_free_at = 0.0

        # Cached tracepoints: one flag check per hot-path site when tracing
        # is disabled (see repro.obs.trace).
        self._tp_submit = TRACE.points["bio_submit"]
        self._tp_issue = TRACE.points["bio_issue"]
        self._tp_error = TRACE.points["bio_error"]
        self._tp_requeue = TRACE.points["bio_requeue"]
        # Cached self-profiler (same zero-cost guard pattern, repro.obs.prof).
        self._prof = PROF
        # Cached sanitizer: slot conservation checked at the acquire and
        # release sites (repro.sanitize).
        self._san = SANITIZE

        # Statistics.  ``completed_ios`` counts every *finished* bio (OK or
        # terminally failed); ``completed_bytes`` and the per-cgroup maps
        # count successes only, so iops_of() stays a success rate.
        self.submitted_ios = 0
        self.completed_ios = 0
        self.completed_bytes = 0
        self.depleted_events = 0
        self.errored_ios = 0
        self.timed_out_ios = 0
        self.requeued_ios = 0
        self.completed_by_cgroup: Dict[str, int] = {}
        self.bytes_by_cgroup: Dict[str, int] = {}
        self.errors_by_cgroup: Dict[str, int] = {}
        self.requeues_by_cgroup: Dict[str, int] = {}

    # -- submission ---------------------------------------------------------

    def submit(
        self, bio: Bio, on_done: Optional[Callable[[Bio], None]] = None
    ) -> Optional[Signal]:
        """Enter a bio into the block layer.

        Without ``on_done`` this returns the bio's completion
        :class:`~repro.sim.Signal` (the Process/Signal protocol).  With
        ``on_done`` — the callback fast path (docs/PERF.md) — no Signal is
        allocated; ``on_done(bio)`` is invoked at the exact point the
        signal would have fired, and the method returns None.  Completion
        order and timing are identical on both paths: Signals fire their
        waiters synchronously, so the fast path only removes the
        allocation and indirection, never reorders events.
        """
        bio.submit_time = self.sim.now
        if on_done is not None:
            bio.on_done = on_done
        else:
            bio.completion = self.sim.signal()
        # Inlined _detect_sequential (hot path).  Keyed by devno, not spec
        # name: two devices of the same model must not share a cgroup's
        # sequentiality tracker.
        last_end = bio.cgroup.last_end_sector.get(self.dev)
        bio.sequential = last_end is not None and bio.sector == last_end
        bio.cgroup.last_end_sector[self.dev] = bio.end_sector
        # Inlined CgroupIOStats.account(is_write, nbytes, dev): the
        # per-device record is the layer's hottest shared-state touch.
        record = bio.cgroup.stats.device(self.dev)
        if bio.is_write:
            record.wbytes += bio.nbytes
            record.wios += 1
        else:
            record.rbytes += bio.nbytes
            record.rios += 1
        self.submitted_ios += 1
        if self._prof.enabled:
            self._prof.bios_submitted += 1
        if self._tp_submit.enabled:
            self._tp_submit.emit(
                self.sim.now,
                dev=self.dev,
                id=bio.id,
                cgroup=bio.cgroup.path,
                op=bio.op.value,
                nbytes=bio.nbytes,
                sector=bio.sector,
                flags=bio.flags.value,
                prio=bio.prio,
            )
        if self.inflight >= self._nr_slots:
            self.depleted_events += 1
        self.controller.enqueue(bio)
        self.controller.pump()
        return bio.completion

    # -- dispatch (controller-facing) ----------------------------------------

    def can_dispatch(self) -> bool:
        """True while request slots remain for this device."""
        return self.inflight < self._nr_slots

    @property
    def slot_utilization(self) -> float:
        """Fraction of request slots in use (saturation signal)."""
        return self.inflight / self._nr_slots

    def dispatch(self, bio: Bio) -> None:
        """Send a bio to the device, charging the controller's CPU cost."""
        if not self.can_dispatch():
            raise BlockLayerError("dispatch with no free request slots")
        self.inflight += 1
        if self._san.enabled:
            self._san.check_slots(self.inflight, self._nr_slots, self.dev)
        overhead = self.controller.issue_overhead
        if overhead > 0:
            start = max(self.sim.now, self._cpu_free_at)
            self._cpu_free_at = start + overhead
            delay = self._cpu_free_at - self.sim.now
            self.sim.schedule(delay, self._issue, bio)
        else:
            self._issue(bio)

    def _issue(self, bio: Bio) -> None:
        bio.issue_time = self.sim.now
        if self._prof.enabled:
            self._prof.bios_issued += 1
        if self._tp_issue.enabled:
            self._tp_issue.emit(
                self.sim.now,
                dev=self.dev,
                id=bio.id,
                cgroup=bio.cgroup.path,
                op=bio.op.value,
                nbytes=bio.nbytes,
                wait=bio.issue_time - bio.submit_time,
            )
        self.device.submit(bio)
        if self.io_timeout is not None:
            self._timeouts[bio.id] = self.sim.schedule(
                self.io_timeout, self._timed_out, bio
            )

    # -- completion / failure --------------------------------------------------

    def _device_completed(self, bio: Bio) -> None:
        if self.io_timeout is not None:
            timer = self._timeouts.pop(bio.id, None)
            if timer is not None:
                timer.cancel()
        self._finish(bio)

    def _timed_out(self, bio: Bio) -> None:
        """Timeout timer fired: reclaim the bio from the device and fail it."""
        self._timeouts.pop(bio.id, None)
        bio.status = BioStatus.TIMEOUT
        self.timed_out_ios += 1
        if not self.device.abort(bio):
            raise BlockLayerError(
                f"timed-out bio #{bio.id} was not held by the device"
            )
        self._finish(bio)

    def _finish(self, bio: Bio) -> None:
        """Single exit for every completion path (success, error, timeout).

        Releases the request slot exactly once per dispatch, then either
        requeues the bio (retryable failure) or completes it for good.
        """
        self.inflight -= 1
        if self._san.enabled:
            self._san.check_slots(self.inflight, self._nr_slots, self.dev)
        if bio.status is not BioStatus.OK and bio.retries < self.max_retries:
            self._requeue(bio)
            if self._retryq:
                self._drain_retries()
            self.controller.pump()
            return

        bio.complete_time = self.sim.now
        self.completed_ios += 1
        if self._prof.enabled:
            self._prof.bios_completed += 1
        path = bio.cgroup.path
        if bio.status is BioStatus.OK:
            self.completed_bytes += bio.nbytes
            self.completed_by_cgroup[path] = self.completed_by_cgroup.get(path, 0) + 1
            self.bytes_by_cgroup[path] = self.bytes_by_cgroup.get(path, 0) + bio.nbytes
        else:
            self.errored_ios += 1
            self.errors_by_cgroup[path] = self.errors_by_cgroup.get(path, 0) + 1
            bio.cgroup.stats.device(self.dev).errors += 1
            if self._tp_error.enabled:
                self._tp_error.emit(
                    self.sim.now,
                    dev=self.dev,
                    id=bio.id,
                    cgroup=path,
                    op=bio.op.value,
                    nbytes=bio.nbytes,
                    status=bio.status.value,
                    retries=bio.retries,
                )
        # io.stat wait accounting: wall time the bio spent above the device,
        # charged to this device's per-cgroup record.
        bio.cgroup.stats.device(self.dev).wait_total += bio.issue_time - bio.submit_time

        # Failed bios feed the latency windows too: a timed-out bio records
        # its full io_timeout, which is exactly the degraded-latency signal
        # the QoS vrate loop must react to (graceful degradation).
        now = self.sim.now
        latency = bio.device_latency
        if bio.is_write:
            self.write_latency.record(now, latency)
        else:
            self.read_latency.record(now, latency)
        # Inlined cgroup_window(): one dict probe on the common path.
        window = self.cgroup_latency.get(path)
        if window is None:
            window = LatencyWindow(self._latency_window)
            self.cgroup_latency[path] = window
        window.record(now, latency)

        self.controller.on_complete(bio)
        if self._retryq:
            self._drain_retries()
        self.controller.pump()
        # Callback fast path first (docs/PERF.md); exactly one of the two
        # completion channels was set by submit().
        if bio.on_done is not None:
            bio.on_done(bio)
        elif bio.completion is not None:
            bio.completion.fire(bio)
        else:
            raise BlockLayerError("bio completed without passing submit()")

    # -- retry ----------------------------------------------------------------

    def _requeue(self, bio: Bio) -> None:
        bio.retries += 1
        self.requeued_ios += 1
        path = bio.cgroup.path
        self.requeues_by_cgroup[path] = self.requeues_by_cgroup.get(path, 0) + 1
        bio.cgroup.stats.device(self.dev).requeues += 1
        backoff = self.retry_backoff * (2 ** (bio.retries - 1))
        if self._tp_requeue.enabled:
            self._tp_requeue.emit(
                self.sim.now,
                dev=self.dev,
                id=bio.id,
                cgroup=path,
                op=bio.op.value,
                nbytes=bio.nbytes,
                status=bio.status.value,
                retries=bio.retries,
                backoff=backoff,
            )
        self.sim.schedule(backoff, self._retry_ready, bio)

    def _retry_ready(self, bio: Bio) -> None:
        if self.can_dispatch():
            self._redispatch(bio)
        else:
            self._retryq.append(bio)

    def _redispatch(self, bio: Bio) -> None:
        # The status resets per attempt; a terminal status is whatever the
        # *last* attempt left behind.
        bio.status = BioStatus.OK
        self.dispatch(bio)

    def _drain_retries(self) -> None:
        # Requeued bios take slot priority over fresh controller dispatches
        # (the kernel requeues to the front of the dispatch list).
        while self._retryq and self.can_dispatch():
            self._redispatch(self._retryq.popleft())

    def cgroup_window(self, path: str) -> LatencyWindow:
        """Per-cgroup completion-latency window (created on first use)."""
        window = self.cgroup_latency.get(path)
        if window is None:
            window = LatencyWindow(self._latency_window)
            self.cgroup_latency[path] = window
        return window

    # -- cgroup lifetime ---------------------------------------------------------

    def observe_tree(self, tree: "CgroupTree") -> "BlockLayer":
        """Follow cgroup removals on ``tree`` so per-cgroup state is pruned.

        Without this, ``completed_by_cgroup`` / ``bytes_by_cgroup`` /
        ``cgroup_latency`` keep entries for removed cgroups for the life of
        the layer.  On removal the completion counters fold into the parent
        (mirroring :class:`repro.obs.iostat.IOStat`'s rstat semantics, so
        machine-wide totals never regress) and the latency window — a
        sliding measurement, not a cumulative counter — is dropped.
        """
        tree.add_remove_hook(self._on_cgroup_removed)
        return self

    def _on_cgroup_removed(self, cgroup: Cgroup) -> None:
        if cgroup.parent is None:  # the root cannot be removed
            raise BlockLayerError("removal hook fired for the root cgroup")
        path, parent = cgroup.path, cgroup.parent.path
        count = self.completed_by_cgroup.pop(path, 0)
        if count:
            self.completed_by_cgroup[parent] = (
                self.completed_by_cgroup.get(parent, 0) + count
            )
        nbytes = self.bytes_by_cgroup.pop(path, 0)
        if nbytes:
            self.bytes_by_cgroup[parent] = self.bytes_by_cgroup.get(parent, 0) + nbytes
        for counters in (self.errors_by_cgroup, self.requeues_by_cgroup):
            count = counters.pop(path, 0)
            if count:
                counters[parent] = counters.get(parent, 0) + count
        self.cgroup_latency.pop(path, None)

    # -- convenience -------------------------------------------------------------

    def iops_of(self, cgroup: Cgroup, since_counts: Optional[Dict[str, int]] = None) -> int:
        """Completed IO count for a cgroup, optionally minus a snapshot."""
        done = self.completed_by_cgroup.get(cgroup.path, 0)
        if since_counts is not None:
            done -= since_counts.get(cgroup.path, 0)
        return done

    def snapshot_counts(self) -> Dict[str, int]:
        """Copy of per-cgroup completion counts (for rate-over-interval math)."""
        return dict(self.completed_by_cgroup)
