"""The ``bio`` — the unit of block IO (paper §2.2).

Carries the request type, size, target offset, the issuing cgroup, and
origin flags (swap-out, filesystem journal, metadata) that the IOCost debt
mechanism keys on.  Timestamps are filled in as the bio moves through the
layer: ``submit_time`` (entered the block layer), ``issue_time`` (dispatched
to the device after any controller throttling), ``complete_time``.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cgroup import Cgroup
    from repro.sim import Signal

SECTOR_SIZE = 512

_bio_ids = itertools.count()


def reset_bio_ids() -> None:
    """Restart the global bio id counter from zero.

    Bio ids appear in traces; a long-lived process that runs several
    simulations back to back (the ``repro.exp`` worker pool, test suites)
    would otherwise carry the counter across runs, making trace bytes
    depend on pool scheduling.  :class:`repro.testbed.Testbed` calls this
    on construction so every simulated machine starts from bio #0.
    """
    global _bio_ids
    _bio_ids = itertools.count()


class IOOp(enum.Enum):
    """Request direction."""

    READ = "read"
    WRITE = "write"


class BioStatus(enum.Enum):
    """Completion status (``blk_status_t`` analogue).

    ``OK`` is the initial and success state.  ``EIO`` marks a device media
    error (fault-injected, see :mod:`repro.faults`); ``TIMEOUT`` marks a
    block-layer timeout (the request was aborted after ``io_timeout``).
    Non-``OK`` bios are retried by the block layer up to ``max_retries``
    with exponential backoff; the status on a *completed* bio is its final
    outcome after all retries.
    """

    OK = "ok"
    EIO = "eio"
    TIMEOUT = "timeout"


class BioFlags(enum.Flag):
    """Origin flags consumed by controllers.

    SWAP marks reclaim-generated swap-out writes / swap-in reads; JOURNAL
    marks shared filesystem journaling IO.  Both are the priority-inversion
    sources handled by the debt mechanism (§3.5).  META marks filesystem
    metadata (used by the container-cleanup fleet model).
    """

    NONE = 0
    SWAP = enum.auto()
    JOURNAL = enum.auto()
    META = enum.auto()


class Bio:
    """One block IO request."""

    __slots__ = (
        "id",
        "op",
        "is_write",
        "nbytes",
        "sector",
        "cgroup",
        "flags",
        "prio",
        "submit_time",
        "issue_time",
        "complete_time",
        "completion",
        "on_done",
        "sequential",
        "device_sequential",
        "abs_cost",
        "status",
        "retries",
    )

    def __init__(
        self,
        op: IOOp,
        nbytes: int,
        sector: int,
        cgroup: "Cgroup",
        flags: BioFlags = BioFlags.NONE,
        prio: Optional[int] = None,
    ) -> None:
        if nbytes <= 0:
            raise ValueError("bio size must be positive")
        if sector < 0:
            raise ValueError("bio sector must be non-negative")
        self.id = next(_bio_ids)
        self.op = op
        # Plain attribute, not a property: read several times per bio on
        # the hot path (cost model, device queues, completion accounting).
        self.is_write = op is IOOp.WRITE
        self.nbytes = nbytes
        self.sector = sector
        self.cgroup = cgroup
        self.flags = flags
        # ioprio class (0 none / 1 RT / 2 BE / 3 idle), None when the
        # submitter set no scheduling class.  Carried through traces so
        # replays preserve it.
        self.prio = prio
        self.submit_time: Optional[float] = None
        self.issue_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        # Fired (with this bio) when the device completes the request.
        self.completion: Optional["Signal"] = None
        # Callback fast path (docs/PERF.md): set by submit(bio, on_done=...)
        # instead of allocating a completion Signal.  Exactly one of
        # ``completion`` / ``on_done`` is set by the block layer.
        self.on_done: Optional[Callable[["Bio"], None]] = None
        # Sequential relative to the issuing cgroup's previous IO on the
        # device (the cost-model feature, §3.2); set by the block layer.
        self.sequential: bool = False
        # Sequential relative to the device's last serviced request (the
        # physical feature, relevant for the spinning-disk seek model).
        self.device_sequential: bool = False
        # Absolute occupancy cost assigned by the controller's cost model.
        self.abs_cost: float = 0.0
        # Completion status; non-OK set by fault injection / timeout paths.
        self.status: BioStatus = BioStatus.OK
        # Times the block layer requeued this bio after an error/timeout.
        self.retries: int = 0

    @property
    def ok(self) -> bool:
        return self.status is BioStatus.OK

    @property
    def end_sector(self) -> int:
        return self.sector + (self.nbytes + SECTOR_SIZE - 1) // SECTOR_SIZE

    @property
    def latency(self) -> float:
        """End-to-end latency (submit -> complete); raises if not complete."""
        if self.submit_time is None or self.complete_time is None:
            raise ValueError("bio has not completed")
        return self.complete_time - self.submit_time

    @property
    def device_latency(self) -> float:
        """Device-side latency (issue -> complete); raises if not complete."""
        if self.issue_time is None or self.complete_time is None:
            raise ValueError("bio has not completed")
        return self.complete_time - self.issue_time

    @property
    def wait_time(self) -> float:
        """Time spent throttled/queued above the device."""
        if self.submit_time is None or self.issue_time is None:
            raise ValueError("bio has not been issued")
        return self.issue_time - self.submit_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        group = self.cgroup.path or "/"
        return f"Bio(#{self.id} {self.op.value} {self.nbytes}B @{self.sector} {group})"
