"""A one-machine experiment testbed — the library's convenience facade.

Bundles a simulator, a catalogued device, a controller, the Figure 1 cgroup
hierarchy, and (optionally) the memory-management substrate, with helpers
to attach workloads and measure per-cgroup throughput over run windows.
Examples and the benchmark harness are written against this API.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.block.device_models import get_device_spec
from repro.cgroup import Cgroup, CgroupTree, make_meta_hierarchy
from repro.controllers.base import IOController
from repro.controllers.bfq import BFQController
from repro.controllers.blk_throttle import BlkThrottleController
from repro.controllers.iolatency import IOLatencyController
from repro.controllers.kyber import KyberController
from repro.controllers.mq_deadline import MQDeadlineController
from repro.controllers.noop import NoopController
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.qos import QoSParams
from repro.mm.memory import MemoryManager
from repro.sim import Simulator
from repro.workloads.synthetic import (
    ClosedLoopWorkload,
    LatencyGovernedWorkload,
    PacedWorkload,
    ThinkTimeWorkload,
)

GB = 1024 ** 3


def make_controller(
    name: str,
    spec: DeviceSpec,
    qos: Optional[QoSParams] = None,
    model_params: Optional[ModelParams] = None,
    **kwargs,
) -> IOController:
    """Build a controller by Table 1 name.

    For ``iocost`` the cost model defaults to the oracle parameters of the
    simulated device (production flows would use
    :func:`repro.core.profiler.profile_device` instead) and ``qos``
    defaults to :class:`~repro.core.qos.QoSParams`'s defaults.
    """
    if name == "iocost":
        params = model_params or ModelParams.from_device_spec(spec)
        return IOCost(LinearCostModel(params), qos=qos or QoSParams(), **kwargs)
    simple = {
        "none": NoopController,
        "mq-deadline": MQDeadlineController,
        "kyber": KyberController,
        "blk-throttle": BlkThrottleController,
        "bfq": BFQController,
        "iolatency": IOLatencyController,
    }
    if name not in simple:
        raise ValueError(f"unknown controller {name!r}")
    return simple[name](**kwargs)


class Testbed:
    """One simulated machine: device + controller + cgroups (+ memory)."""

    __test__ = False  # not a pytest collection target despite the name

    def __init__(
        self,
        device: Union[str, DeviceSpec] = "ssd_new",
        controller: Union[str, IOController] = "iocost",
        seed: int = 0,
        mem_bytes: Optional[int] = None,
        swap_bytes: Optional[int] = None,
        qos: Optional[QoSParams] = None,
        model_params: Optional[ModelParams] = None,
        protected: Optional[Dict[str, int]] = None,
        **controller_kwargs,
    ):
        self.sim = Simulator()
        self.spec = device if isinstance(device, DeviceSpec) else get_device_spec(device)
        self.device = Device(self.sim, self.spec, np.random.default_rng(seed))
        if isinstance(controller, IOController):
            self.controller = controller
        else:
            self.controller = make_controller(
                controller, self.spec, qos=qos, model_params=model_params,
                **controller_kwargs,
            )
        self.layer = BlockLayer(self.sim, self.device, self.controller)
        self.cgroups: CgroupTree = make_meta_hierarchy()
        self.mm: Optional[MemoryManager] = None
        if mem_bytes is not None:
            self.mm = MemoryManager(
                self.sim,
                self.layer,
                total_bytes=mem_bytes,
                swap_bytes=swap_bytes if swap_bytes is not None else 16 * mem_bytes,
                protected=protected,
            )
        self._seed = seed
        self._seed_counter = seed + 1
        self._window_start = 0.0
        self._window_snapshot: Dict[str, int] = {}

    # -- cgroups ------------------------------------------------------------

    def add_cgroup(self, path: str, weight: int = 100) -> Cgroup:
        return self.cgroups.get_or_create(path, weight=weight)

    def set_weight(self, cgroup: Cgroup, weight: int) -> None:
        if isinstance(self.controller, IOCost):
            self.controller.set_weight(cgroup, weight)
        else:
            cgroup.weight = weight

    # -- workload attachment ----------------------------------------------------

    def _next_seed(self) -> int:
        self._seed_counter += 1
        return self._seed_counter

    def saturate(self, cgroup: Cgroup, **kwargs) -> ClosedLoopWorkload:
        kwargs.setdefault("seed", self._next_seed())
        return ClosedLoopWorkload(self.sim, self.layer, cgroup, **kwargs).start()

    def paced(self, cgroup: Cgroup, rate: float, **kwargs) -> PacedWorkload:
        kwargs.setdefault("seed", self._next_seed())
        return PacedWorkload(self.sim, self.layer, cgroup, rate, **kwargs).start()

    def think_time(self, cgroup: Cgroup, **kwargs) -> ThinkTimeWorkload:
        kwargs.setdefault("seed", self._next_seed())
        return ThinkTimeWorkload(self.sim, self.layer, cgroup, **kwargs).start()

    def latency_governed(self, cgroup: Cgroup, **kwargs) -> LatencyGovernedWorkload:
        kwargs.setdefault("seed", self._next_seed())
        return LatencyGovernedWorkload(self.sim, self.layer, cgroup, **kwargs).start()

    # -- execution & measurement ---------------------------------------------------

    def run(self, duration: float) -> None:
        """Advance the simulation; starts a fresh measurement window."""
        self._window_start = self.sim.now
        self._window_snapshot = self.layer.snapshot_counts()
        self.sim.run(until=self.sim.now + duration)

    @property
    def window_duration(self) -> float:
        return self.sim.now - self._window_start

    def iops(self, cgroup: Cgroup) -> float:
        """Completed IO/s for the cgroup over the last ``run`` window."""
        duration = self.window_duration
        if duration <= 0:
            raise ValueError("no completed run window")
        done = self.layer.iops_of(cgroup, since_counts=self._window_snapshot)
        return done / duration

    def latency_percentile(self, cgroup: Cgroup, pct: float) -> Optional[float]:
        return self.layer.cgroup_window(cgroup.path).percentile(self.sim.now, pct)

    def detach(self) -> None:
        """Tear down controller timers (end of experiment)."""
        self.controller.detach()
