"""A one-machine experiment testbed — the library's convenience facade.

Bundles a simulator, one **or several** catalogued devices (each with its
own block layer and controller instance), the Figure 1 cgroup hierarchy,
and (optionally) the memory-management substrate, with helpers to attach
workloads and measure per-cgroup throughput over run windows.  Examples and
the benchmark harness are written against this API.

Single-device construction is unchanged::

    bed = Testbed(device="ssd_new", controller="iocost")

Multi-device machines name their devices (``vda``-style) and may mix
controllers, reproducing the kernel's per-device iocost instantiation::

    bed = Testbed(
        devices={"vda": "ssd_new", "vdb": "ebs_gp3"},
        controllers={"vda": "iocost", "vdb": "iocost"},
        mem_bytes=1 << 30,
        swap_device="vdb",          # swap IO targets the cloud volume
    )
    bed.saturate(group, device="vda")

All devices share one cgroup tree and one simulator clock; every per-device
RNG stream is derived from the machine seed by component label, so adding a
device never perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Union

import numpy as np

from repro.block.bio import reset_bio_ids
from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.block.device_models import get_device_spec
from repro.block.registry import DeviceRegistry
from repro.cgroup import Cgroup, CgroupTree, make_meta_hierarchy
from repro.controllers.base import IOController
from repro.controllers.bfq import BFQController
from repro.controllers.blk_throttle import BlkThrottleController
from repro.controllers.iolatency import IOLatencyController
from repro.controllers.kyber import KyberController
from repro.controllers.mq_deadline import MQDeadlineController
from repro.controllers.noop import NoopController
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.qos import QoSParams
from repro.faults import FaultPlan
from repro.mm.memory import MemoryManager
from repro.sanitize import SANITIZE
from repro.sim import Simulator
from repro.workloads.synthetic import (
    ClosedLoopWorkload,
    LatencyGovernedWorkload,
    PacedWorkload,
    ThinkTimeWorkload,
)

GB = 1024 ** 3

#: Name given to the device of single-device constructions.
DEFAULT_DEVICE_NAME = "vda"


def make_controller(
    name: str,
    spec: DeviceSpec,
    qos: Optional[QoSParams] = None,
    model_params: Optional[ModelParams] = None,
    **kwargs,
) -> IOController:
    """Build a controller by Table 1 name.

    For ``iocost`` the cost model defaults to the oracle parameters of the
    simulated device (production flows would use
    :func:`repro.core.profiler.profile_device` instead) and ``qos``
    defaults to :class:`~repro.core.qos.QoSParams`'s defaults.
    """
    if name == "iocost":
        params = model_params or ModelParams.from_device_spec(spec)
        return IOCost(LinearCostModel(params), qos=qos or QoSParams(), **kwargs)
    simple = {
        "none": NoopController,
        "mq-deadline": MQDeadlineController,
        "kyber": KyberController,
        "blk-throttle": BlkThrottleController,
        "bfq": BFQController,
        "iolatency": IOLatencyController,
    }
    if name not in simple:
        raise ValueError(f"unknown controller {name!r}")
    return simple[name](**kwargs)


class Testbed:
    """One simulated machine: device(s) + controller(s) + cgroups (+ memory)."""

    __test__ = False  # not a pytest collection target despite the name

    def __init__(
        self,
        device: Union[str, DeviceSpec] = "ssd_new",
        controller: Union[str, IOController] = "iocost",
        seed: int = 0,
        mem_bytes: Optional[int] = None,
        swap_bytes: Optional[int] = None,
        qos: Optional[QoSParams] = None,
        model_params: Optional[ModelParams] = None,
        protected: Optional[Dict[str, int]] = None,
        devices: Optional[Dict[str, Union[str, DeviceSpec]]] = None,
        controllers: Optional[Dict[str, Union[str, IOController]]] = None,
        swap_device: Optional[str] = None,
        faults: Optional[Union[FaultPlan, Dict[str, FaultPlan]]] = None,
        io_timeout: Optional[float] = None,
        max_retries: int = 3,
        **controller_kwargs,
    ):
        # Fresh bio ids per machine: trace bytes must not depend on what
        # else ran earlier in this process (see repro.block.bio).
        reset_bio_ids()
        self.sim = Simulator()
        self._seed = seed
        self._workload_count = 0
        self.cgroups: CgroupTree = make_meta_hierarchy()
        self.devices = DeviceRegistry()

        if devices is None:
            devices = {DEFAULT_DEVICE_NAME: device}
            if controllers is None:
                controllers = {DEFAULT_DEVICE_NAME: controller}
        if controllers is None:
            controllers = {}
        if isinstance(controller, IOController) and len(devices) > 1:
            missing = [name for name in devices if name not in controllers]
            if missing:
                raise ValueError(
                    "a shared IOController instance cannot serve several "
                    f"devices ({missing}); pass per-device instances via "
                    "controllers={...}"
                )

        # Per-device fault plans (repro.faults).  A bare FaultPlan is the
        # single-device shorthand for {first device name: plan}.
        if isinstance(faults, FaultPlan):
            faults = {next(iter(devices)): faults}
        fault_plans: Dict[str, FaultPlan] = dict(faults or {})
        unknown_fault_devs = set(fault_plans) - set(devices)
        if unknown_fault_devs:
            raise ValueError(
                f"faults name unknown device(s) {sorted(unknown_fault_devs)}"
            )

        for name, spec_like in devices.items():
            spec = spec_like if isinstance(spec_like, DeviceSpec) else get_device_spec(spec_like)
            ctl_like = controllers.get(name, controller)
            if isinstance(ctl_like, IOController):
                ctl = ctl_like
            else:
                ctl = make_controller(
                    ctl_like, spec, qos=qos, model_params=model_params,
                    **controller_kwargs,
                )
            plan = fault_plans.get(name)
            if plan is not None:
                # Error draws get their own label-keyed stream, so a fault
                # plan never perturbs the device's service-noise sequence.
                plan.bind(self.rng_for(f"faults:{name}"))
            dev = Device(
                self.sim, spec, self.rng_for(f"device:{name}"),
                name=name, devno=self.devices.next_devno(), faults=plan,
            )
            layer = BlockLayer(
                self.sim, dev, ctl,
                io_timeout=io_timeout, max_retries=max_retries,
            ).observe_tree(self.cgroups)
            self.devices.add(name, layer)

        # Single-device aliases: the machine's first (data) device.
        self.layer = self.devices.default
        self.device = self.layer.device
        self.controller = self.layer.controller
        self.spec = self.device.spec

        self.mm: Optional[MemoryManager] = None
        if mem_bytes is not None:
            swap_layer = (
                self.devices.layer(swap_device) if swap_device is not None else self.layer
            )
            self.mm = MemoryManager(
                self.sim,
                self.layer,
                total_bytes=mem_bytes,
                swap_bytes=swap_bytes if swap_bytes is not None else 16 * mem_bytes,
                protected=protected,
                swap_layer=swap_layer,
            )
        elif swap_device is not None:
            raise ValueError("swap_device requires mem_bytes")
        self._window_start = 0.0
        self._window_snapshot: Dict[str, Dict[str, int]] = {}

    # -- RNG streams ---------------------------------------------------------

    def rng_for(self, label: str) -> np.random.Generator:
        """A dedicated RNG stream for one named component.

        Streams are children of one ``SeedSequence`` rooted at the machine
        seed, keyed by a hash of ``label`` — not by spawn order — so the
        stream for ``device:vda`` is identical whether or not ``vdb``
        exists (determinism across topology changes).
        """
        key = int.from_bytes(hashlib.sha256(label.encode()).digest()[:8], "big")
        seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(key,))
        if SANITIZE.enabled:
            SANITIZE.check_stream(label, seq)
        return np.random.default_rng(seq)

    def _next_seed(self) -> np.random.SeedSequence:
        """Seed material for the next attached workload (stable per ordinal)."""
        self._workload_count += 1
        key = int.from_bytes(
            hashlib.sha256(f"workload:{self._workload_count}".encode()).digest()[:8],
            "big",
        )
        return np.random.SeedSequence(entropy=self._seed, spawn_key=(key,))

    # -- device lookup -------------------------------------------------------

    def layer_of(self, device: Optional[str] = None) -> BlockLayer:
        """The block layer of a named device (default: the data device)."""
        if device is None:
            return self.layer
        return self.devices.layer(device)

    def controller_of(self, device: Optional[str] = None) -> IOController:
        return self.layer_of(device).controller

    def spec_of(self, device: Optional[str] = None) -> DeviceSpec:
        return self.layer_of(device).device.spec

    # -- cgroups ------------------------------------------------------------

    def add_cgroup(self, path: str, weight: int = 100) -> Cgroup:
        return self.cgroups.get_or_create(path, weight=weight)

    def set_weight(self, cgroup: Cgroup, weight: int) -> None:
        cgroup.weight = weight
        for layer in self.devices.layers():
            if isinstance(layer.controller, IOCost):
                layer.controller.set_weight(cgroup, weight)

    # -- workload attachment ----------------------------------------------------

    def saturate(
        self, cgroup: Cgroup, device: Optional[str] = None, **kwargs
    ) -> ClosedLoopWorkload:
        kwargs.setdefault("seed", self._next_seed())
        return ClosedLoopWorkload(
            self.sim, self.layer_of(device), cgroup, **kwargs
        ).start()

    def paced(
        self, cgroup: Cgroup, rate: float, device: Optional[str] = None, **kwargs
    ) -> PacedWorkload:
        kwargs.setdefault("seed", self._next_seed())
        return PacedWorkload(
            self.sim, self.layer_of(device), cgroup, rate, **kwargs
        ).start()

    def think_time(
        self, cgroup: Cgroup, device: Optional[str] = None, **kwargs
    ) -> ThinkTimeWorkload:
        kwargs.setdefault("seed", self._next_seed())
        return ThinkTimeWorkload(
            self.sim, self.layer_of(device), cgroup, **kwargs
        ).start()

    def latency_governed(
        self, cgroup: Cgroup, device: Optional[str] = None, **kwargs
    ) -> LatencyGovernedWorkload:
        kwargs.setdefault("seed", self._next_seed())
        return LatencyGovernedWorkload(
            self.sim, self.layer_of(device), cgroup, **kwargs
        ).start()

    # -- execution & measurement ---------------------------------------------------

    def run(self, duration: float) -> None:
        """Advance the simulation; starts a fresh measurement window."""
        self._window_start = self.sim.now
        self._window_snapshot = {
            name: layer.snapshot_counts() for name, layer in self.devices.items()
        }
        self.sim.run(until=self.sim.now + duration)

    @property
    def window_duration(self) -> float:
        return self.sim.now - self._window_start

    def iops(self, cgroup: Cgroup, device: Optional[str] = None) -> float:
        """Completed IO/s for the cgroup over the last ``run`` window.

        Sums over every device unless ``device`` names one.
        """
        duration = self.window_duration
        if duration <= 0:
            raise ValueError("no completed run window")
        names = [device] if device is not None else list(self.devices)
        done = 0
        for name in names:
            layer = self.devices.layer(name)
            done += layer.iops_of(
                cgroup, since_counts=self._window_snapshot.get(name)
            )
        return done / duration

    def latency_percentile(
        self, cgroup: Cgroup, pct: float, device: Optional[str] = None
    ) -> Optional[float]:
        return self.layer_of(device).cgroup_window(cgroup.path).percentile(
            self.sim.now, pct
        )

    def detach(self) -> None:
        """Tear down every controller's timers (end of experiment)."""
        for layer in self.devices.layers():
            layer.controller.detach()
