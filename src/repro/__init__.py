"""repro — a reproduction of *IOCost: Block IO Control for Containers in
Datacenters* (Heo et al., ASPLOS 2022).

The package implements the IOCost controller (device cost model, vtime
throttling, budget donation, QoS/vrate adjustment, debt handling), the
Linux-block-layer and memory-management substrates it needs — as
discrete-event simulations — and the baseline controllers and workloads of
the paper's evaluation.

Quickstart::

    from repro.testbed import Testbed

    tb = Testbed(device="ssd_new", controller="iocost")
    high = tb.add_cgroup("workload.slice/high", weight=200)
    low = tb.add_cgroup("workload.slice/low", weight=100)
    tb.saturate(high)
    tb.saturate(low)
    tb.run(1.0)
    print(tb.iops(high), tb.iops(low))   # ~2:1

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
regeneration harness of every table and figure in the paper.
"""

from repro.core import (
    IOCost,
    LinearCostModel,
    ModelParams,
    QoSParams,
    SwapChargeMode,
    profile_device,
    tune_qos,
)
from repro.testbed import Testbed, make_controller

__version__ = "1.0.0"

__all__ = [
    "IOCost",
    "LinearCostModel",
    "ModelParams",
    "QoSParams",
    "SwapChargeMode",
    "Testbed",
    "make_controller",
    "profile_device",
    "tune_qos",
]
