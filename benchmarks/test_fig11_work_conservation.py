"""Figure 11 — Work conservation.

Same configuration as Figure 10, but the high-priority workload issues a
4 KiB random read only after 100 us of think time past each completion, so
it uses far less than its 2/3 entitlement.  The low-priority workload
should soak up all remaining capacity.

Paper shape: bfq lets the low-priority workload complete the most IO but at
the cost of the high-priority workload's latency (250 us mean, ~1 ms
stdev); blk-throttle pins the low-priority workload at its configured limit
(non-work-conserving); iolatency and iocost both conserve while holding the
high-priority latency.
"""

import numpy as np
import pytest

from repro.analysis.report import Table, format_si
from repro.block.device_models import SSD_OLD
from repro.controllers.blk_throttle import ThrottleLimits
from repro.core.qos import QoSParams
from repro.testbed import Testbed

from benchmarks.conftest import run_experiment

DURATION = 4.0

QOS = QoSParams(
    read_lat_target=180e-6, read_pct=90, vrate_min=0.25, vrate_max=1.5, period=0.025
)


def run_one(name):
    kwargs = {}
    if name == "blk-throttle":
        kwargs["limits"] = {
            "workload.slice/high": ThrottleLimits(riops=40_000),
            "workload.slice/low": ThrottleLimits(riops=20_000),
        }
    elif name == "iolatency":
        kwargs["targets"] = {
            "workload.slice/high": 200e-6,
            "workload.slice/low": 400e-6,
        }
    testbed = Testbed(device=SSD_OLD, controller=name, qos=QOS, seed=11, **kwargs)
    high = testbed.add_cgroup("workload.slice/high", weight=200)
    low = testbed.add_cgroup("workload.slice/low", weight=100)
    wl_high = testbed.think_time(high, think_time=100e-6, stop_at=DURATION)
    wl_low = testbed.latency_governed(low, latency_target=200e-6, stop_at=DURATION)
    testbed.run(DURATION)
    testbed.detach()
    high_lat = np.array(wl_high.latencies)
    return {
        "high_iops": wl_high.completed / DURATION,
        "low_iops": wl_low.completed / DURATION,
        "high_mean": float(high_lat.mean()),
        "high_std": float(high_lat.std()),
    }


def run_all():
    return {
        name: run_one(name)
        for name in ("bfq", "blk-throttle", "iolatency", "iocost")
    }


def test_fig11_work_conservation(benchmark):
    results = run_experiment(benchmark, run_all)

    table = Table(
        "Figure 11: work conservation (high-prio has 100us think time)",
        ["mechanism", "high IOPS", "low IOPS", "high mean lat", "high lat stdev"],
    )
    for name, row in results.items():
        table.add_row(
            name,
            format_si(row["high_iops"]),
            format_si(row["low_iops"]),
            f"{row['high_mean'] * 1e6:.0f}us",
            f"{row['high_std'] * 1e6:.0f}us",
        )
    table.print()

    # blk-throttle is not work conserving: the low-priority workload stays
    # pinned at its configured 20K limit.
    assert results["blk-throttle"]["low_iops"] < 25_000
    # iocost and iolatency let the low-priority workload soak up the slack:
    # well beyond the non-work-conserving cap.
    assert results["iocost"]["low_iops"] > 1.5 * results["blk-throttle"]["low_iops"]
    assert results["iolatency"]["low_iops"] > 1.5 * results["blk-throttle"]["low_iops"]
    # ...while holding the high-priority workload's latency tight.
    for name in ("iocost", "iolatency", "blk-throttle"):
        assert results[name]["high_mean"] < 250e-6, name
    # bfq conserves weakly here (its idling dynamics under-serve the
    # backlogged queue relative to the paper's bfq, where it completed the
    # most IO), but the headline bfq result reproduces exactly: wide
    # latency swings on the high-priority workload — stdev far above
    # everyone else (paper: ~1ms stdev vs ~200us for the rest).
    assert results["bfq"]["low_iops"] > results["blk-throttle"]["low_iops"]
    assert results["bfq"]["high_std"] > 5 * results["iocost"]["high_std"]
    assert results["bfq"]["high_std"] > 1e-3
