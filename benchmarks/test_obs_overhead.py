"""Tracing-disabled overhead of the observability layer.

Kernel tracepoints sell themselves on being free when nobody listens: a
compiled-in call site costs one predictable branch.  The simulator's
equivalents must hold the same bar, or every benchmark in this directory
silently pays for instrumentation it never asked for.

Measurement, on a fixed 50K-bio deterministic run:

* wall-clock the run with tracing disabled (best of 3);
* count the tracepoint guard checks the run performs — equal to the
  emission count of the identical run with every point enabled, since each
  enabled site emits exactly once per passed guard;
* microbenchmark the per-check cost of the disabled ``if point.enabled:``
  guard in isolation;
* assert checks x per-check cost stays under 5% of the run's wall time.
"""

from collections import deque

import numpy as np

from repro.analysis.report import Table, format_si
from repro.block.bio import Bio, IOOp
from repro.block.device import Device
from repro.block.device_models import SSD_NEW
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.obs.overhead import (
    OverheadReport,
    count_emissions,
    disabled_check_cost,
    disabled_prof_check_cost,
    wall_time,
)
from repro.obs.prof import PROF
from repro.obs.spans import SPAN_EVENTS
from repro.obs.trace import TRACE
from repro.sim import Simulator
from repro.testbed import make_controller

from benchmarks.conftest import run_experiment

TARGET_BIOS = 50_000
DEPTH = 64
#: Hard ceiling on the disabled-tracing overhead fraction.
OVERHEAD_LIMIT = 0.05


def run_fixed(spec=SSD_NEW) -> int:
    """Exactly 50K 4KiB random reads, closed-loop at depth 64, under iocost."""
    sim = Simulator()
    device = Device(sim, spec, np.random.default_rng(0))
    controller = make_controller("iocost", spec)
    layer = BlockLayer(sim, device, controller)
    group = CgroupTree().create("fio")
    rng = np.random.default_rng(1)

    def worker():
        issued = 0
        signals = deque()
        while issued < TARGET_BIOS or signals:
            while issued < TARGET_BIOS and len(signals) < DEPTH:
                sector = int(rng.integers(0, 1 << 30)) * 8
                signals.append(layer.submit(Bio(IOOp.READ, 4096, sector, group)))
                issued += 1
            signal = signals.popleft()
            if not signal.fired:
                yield signal
        # Stop the controller's self-rescheduling plan timer so the event
        # heap drains and sim.run() terminates.
        controller.detach()

    sim.process(worker(), name="fixed-load")
    sim.run()
    assert layer.completed_ios == TARGET_BIOS
    return sim.events_processed


def measure() -> OverheadReport:
    TRACE.reset()
    events_processed = run_fixed()          # warm caches / count sim events
    wall = wall_time(run_fixed, repeat=3)   # tracing disabled
    checks = count_emissions(run_fixed)     # tracing enabled, same run
    cost = disabled_check_cost()
    return OverheadReport(
        wall_sec=wall,
        events_processed=events_processed,
        trace_checks=checks,
        check_cost=cost,
    )


def test_obs_disabled_overhead(benchmark):
    report = run_experiment(benchmark, measure)

    table = Table(
        f"Observability overhead on a fixed {format_si(TARGET_BIOS)}-bio run "
        "(tracing disabled)",
        ["metric", "value"],
    )
    table.add_row("wall time", f"{report.wall_sec * 1e3:.1f} ms")
    table.add_row("sim events", format_si(report.events_processed))
    table.add_row("guard checks", format_si(report.trace_checks))
    table.add_row("checks / sim event", f"{report.checks_per_event:.2f}")
    table.add_row("per-check cost", f"{report.check_cost * 1e9:.1f} ns")
    table.add_row("overhead", f"{report.overhead_fraction:.4%}")
    table.print()

    benchmark.extra_info.update(
        wall_ms=round(report.wall_sec * 1e3, 2),
        guard_checks=report.trace_checks,
        check_cost_ns=round(report.check_cost * 1e9, 2),
        overhead_fraction=round(report.overhead_fraction, 6),
    )

    # Sanity: the run really is instrumented (one check per submit, issue,
    # and complete at minimum), and really is traced when enabled.
    assert report.trace_checks >= 3 * TARGET_BIOS
    # The headline claim: disabled tracing costs < 5% of the run.
    assert report.overhead_fraction < OVERHEAD_LIMIT, report.describe()


def measure_span_tracking() -> OverheadReport:
    """Span tracking rides entirely on the bio-lifecycle tracepoints, so an
    unattached SpanTracker costs exactly the guard checks of those events."""
    TRACE.reset()
    events_processed = run_fixed()          # warm caches / count sim events
    wall = wall_time(run_fixed, repeat=3)   # nothing attached

    counter = {"n": 0}

    def count(_event) -> None:
        counter["n"] += 1

    subscription = TRACE.subscribe(count, events=SPAN_EVENTS)
    try:
        run_fixed()
    finally:
        subscription.close()

    return OverheadReport(
        wall_sec=wall,
        events_processed=events_processed,
        trace_checks=counter["n"],
        check_cost=disabled_check_cost(),
    )


def test_span_tracking_disabled_overhead(benchmark):
    report = run_experiment(benchmark, measure_span_tracking)

    benchmark.extra_info.update(
        wall_ms=round(report.wall_sec * 1e3, 2),
        span_guard_checks=report.trace_checks,
        overhead_fraction=round(report.overhead_fraction, 6),
    )

    # Every bio passes its submit, issue, and complete guards.
    assert report.trace_checks >= 3 * TARGET_BIOS
    assert report.overhead_fraction < OVERHEAD_LIMIT, report.describe()


def measure_self_profiler() -> OverheadReport:
    """The self-profiler's disabled cost: one flag check per counter site.

    ``PROF.total_checks`` of an enabled run counts exactly the guard
    passes the identical disabled run performs (each instrumented site
    increments exactly one plain counter per pass).
    """
    TRACE.reset()
    events_processed = run_fixed()          # warm caches / count sim events
    PROF.disable().reset()
    wall = wall_time(run_fixed, repeat=3)   # profiler disabled

    with PROF:
        run_fixed()
    checks = PROF.total_checks
    PROF.disable().reset()

    return OverheadReport(
        wall_sec=wall,
        events_processed=events_processed,
        trace_checks=checks,
        check_cost=disabled_prof_check_cost(),
    )


def test_self_profiler_disabled_overhead(benchmark):
    report = run_experiment(benchmark, measure_self_profiler)

    benchmark.extra_info.update(
        wall_ms=round(report.wall_sec * 1e3, 2),
        prof_guard_checks=report.trace_checks,
        overhead_fraction=round(report.overhead_fraction, 6),
    )

    # Every bio passes its submitted/issued/completed counter guards, and
    # the engine its dispatch/heap guards.
    assert report.trace_checks >= 3 * TARGET_BIOS
    assert report.overhead_fraction < OVERHEAD_LIMIT, report.describe()
