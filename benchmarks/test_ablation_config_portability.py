"""Ablation — configuration portability across heterogeneous devices (§2.3).

The paper's core configuration argument: per-workload limits (IOPS/bytes)
must be re-derived for every device a workload lands on, which "is often
too brittle and intractable to be used in production at scale", while
IOCost separates device configuration (cost model + QoS, derived per
device offline) from workload configuration (weights, device-independent).

We tune blk-throttle limits for a perfect 2:1 split *on the slow fleet
device*, then move the exact same workload configuration to the fast fleet
device:

* blk-throttle: still 2:1, but the limits now strand most of the fast
  device — utilisation collapses;
* iocost: the same weights (200:100) carry over unchanged; each device
  uses its own offline-derived cost model, and utilisation stays high on
  both.
"""

import pytest

from repro.analysis.report import Table, format_si
from repro.block.device_models import get_device_spec
from repro.controllers.blk_throttle import ThrottleLimits
from repro.core.qos import QoSParams
from repro.testbed import Testbed

from benchmarks.conftest import run_experiment

DURATION = 1.0
SLOW = get_device_spec("fleet_e")   # 60K IOPS
FAST = get_device_spec("fleet_h")   # 600K IOPS

QOS = QoSParams(
    read_lat_target=None, write_lat_target=None,
    vrate_min=0.9, vrate_max=0.9, period=0.025,
)

# blk-throttle limits hand-tuned for the SLOW device (2:1 within ~54K).
TUNED_FOR_SLOW = {
    "workload.slice/high": ThrottleLimits(riops=36_000),
    "workload.slice/low": ThrottleLimits(riops=18_000),
}


def run_one(spec, controller_name):
    kwargs = {"limits": dict(TUNED_FOR_SLOW)} if controller_name == "blk-throttle" else {}
    testbed = Testbed(device=spec, controller=controller_name, qos=QOS, seed=9, **kwargs)
    high = testbed.add_cgroup("workload.slice/high", weight=200)
    low = testbed.add_cgroup("workload.slice/low", weight=100)
    testbed.saturate(high, depth=64, stop_at=DURATION)
    testbed.saturate(low, depth=64, stop_at=DURATION)
    testbed.run(DURATION)
    high_iops, low_iops = testbed.iops(high), testbed.iops(low)
    testbed.detach()
    total = high_iops + low_iops
    return {
        "ratio": high_iops / max(low_iops, 1.0),
        "utilisation": total / spec.peak_rand_read_iops,
        "total": total,
    }


def run_all():
    return {
        (name, spec.name): run_one(spec, name)
        for name in ("blk-throttle", "iocost")
        for spec in (SLOW, FAST)
    }


def test_ablation_config_portability(benchmark):
    results = run_experiment(benchmark, run_all)

    table = Table(
        "Ablation: workload config tuned on fleet_e, moved to fleet_h",
        ["mechanism", "device", "total IOPS", "utilisation", "ratio"],
    )
    for (name, device), row in results.items():
        table.add_row(
            name, device, format_si(row["total"]),
            f"{row['utilisation']:.0%}", f"{row['ratio']:.2f}",
        )
    table.print()

    # On the device the limits were tuned for, both do fine.
    assert results[("blk-throttle", "fleet_e")]["ratio"] == pytest.approx(2.0, rel=0.2)
    assert results[("iocost", "fleet_e")]["ratio"] == pytest.approx(2.0, rel=0.2)
    # Moved to the 10x-faster device, the per-workload limits strand it...
    assert results[("blk-throttle", "fleet_h")]["utilisation"] < 0.25
    # ...while the unchanged weights keep the fast device busy at 2:1.
    assert results[("iocost", "fleet_h")]["utilisation"] > 0.6
    assert results[("iocost", "fleet_h")]["ratio"] == pytest.approx(2.0, rel=0.25)
