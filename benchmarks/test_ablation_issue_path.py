"""Ablation — issue-path hweight caching (DESIGN.md §4).

IOCost keeps tree walks off the hot path by caching each group's hweight
against the weight-tree generation number.  This microbenchmark measures
the real Python cost of the issue-path hweight lookup with the cache warm
versus with the generation bumped before every lookup (forcing the
recursive recomputation a naive design would pay per IO), on a deep
hierarchy.
"""

import pytest

from repro.cgroup import CgroupTree
from repro.core.hierarchy import WeightTree


def build_deep_tree(depth=6, fanout=4):
    cgroups = CgroupTree()
    tree = WeightTree()
    path = ""
    # One deep chain with `fanout` siblings at each level.
    for level in range(depth):
        for sibling in range(fanout):
            sibling_path = f"{path}n{level}s{sibling}" if not path else f"{path}/n{level}s{sibling}"
            group = cgroups.get_or_create(sibling_path, weight=100)
            state = tree.state_of(group)
            if not state.children:
                tree.activate(state)
        path = f"{path}n{level}s0" if not path else f"{path}/n{level}s0"
    leaf = tree.state_of(cgroups.lookup(path))
    tree.activate(leaf)
    return tree, leaf


@pytest.fixture(scope="module")
def deep_tree():
    return build_deep_tree()


def test_ablation_cached_hweight(benchmark, deep_tree):
    tree, leaf = deep_tree
    tree.hweight(leaf)  # warm the cache

    result = benchmark(tree.hweight, leaf)
    assert 0 < result <= 1


def test_ablation_uncached_hweight(benchmark, deep_tree):
    tree, leaf = deep_tree

    def uncached():
        tree.bump()  # invalidate: forces the full recursive recomputation
        return tree.hweight(leaf)

    result = benchmark(uncached)
    assert 0 < result <= 1
