"""Figure 13 — Vrate adjustment due to model inaccuracy.

A workload saturates the newer-generation commercial SSD with 4 KiB random
reads under a p90 read-latency QoS target.  Mid-run the cost-model
parameters are updated online:

* phase 1 — accurate parameters: vrate hovers near 100%;
* phase 2 — parameters halved (device claimed half as capable): the issue
  rate drops, then vrate climbs to ~200% to restore it while holding QoS;
* phase 3 — parameters doubled versus the original: the device briefly
  over-saturates (latency spike), then vrate drops to ~50%.
"""

import numpy as np
import pytest

from repro.analysis.report import Table
from repro.block.device import Device
from repro.block.device_models import SSD_NEW
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.qos import QoSParams
from repro.sim import Simulator
from repro.workloads.synthetic import ClosedLoopWorkload

from benchmarks.conftest import run_experiment

# 1/10-speed ssd_new keeps the event count tractable; relative behaviour
# (model error vs vrate) is scale-free.
SPEC = SSD_NEW.scaled(0.1)
PHASE = 4.0  # seconds per phase
LATENCY_TARGET = 2.5e-3  # p90 read target, scaled like the device


def run_phases():
    sim = Simulator()
    device = Device(sim, SPEC, np.random.default_rng(2))
    accurate = ModelParams.from_device_spec(SPEC)
    model = LinearCostModel(accurate)
    qos = QoSParams(
        read_lat_target=LATENCY_TARGET,
        read_pct=90,
        write_lat_target=None,
        vrate_min=0.1,
        vrate_max=4.0,
        period=0.05,
    )
    controller = IOCost(model, qos=qos)
    layer = BlockLayer(sim, device, controller)
    group = CgroupTree().create("fio")
    ClosedLoopWorkload(sim, layer, group, depth=64, stop_at=3 * PHASE, seed=1).start()

    sim.run(until=PHASE)
    model.replace_params(accurate.scaled(0.5))  # claim half the capability
    sim.run(until=2 * PHASE)
    model.replace_params(accurate.scaled(2.0))  # claim double the original
    sim.run(until=3 * PHASE)
    controller.detach()

    series = controller.vrate_ctl.vrate_series
    lat_series = controller.vrate_ctl.read_lat_series

    def tail_mean(series, start, end):
        values = series.slice(start, end)
        tail = values[len(values) // 2 :]
        return sum(tail) / len(tail)

    return {
        "vrate_phase1": tail_mean(series, 0, PHASE),
        "vrate_phase2": tail_mean(series, PHASE, 2 * PHASE),
        "vrate_phase3": tail_mean(series, 2 * PHASE, 3 * PHASE),
        "p90_phase1": tail_mean(lat_series, 0, PHASE),
        "p90_phase2": tail_mean(lat_series, PHASE, 2 * PHASE),
        "p90_phase3": tail_mean(lat_series, 2 * PHASE, 3 * PHASE),
    }


def test_fig13_vrate_adjustment(benchmark):
    result = run_experiment(benchmark, run_phases)

    table = Table(
        "Figure 13: vrate adjustment under online model updates",
        ["phase", "model params", "steady vrate", "steady read p90"],
    )
    table.add_row("1", "accurate", f"{result['vrate_phase1']:.2f}",
                  f"{result['p90_phase1'] * 1e3:.2f}ms")
    table.add_row("2", "halved", f"{result['vrate_phase2']:.2f}",
                  f"{result['p90_phase2'] * 1e3:.2f}ms")
    table.add_row("3", "doubled", f"{result['vrate_phase3']:.2f}",
                  f"{result['p90_phase3'] * 1e3:.2f}ms")
    table.print()

    # Phase 1: near 100%.
    assert result["vrate_phase1"] == pytest.approx(1.0, rel=0.3)
    # Phase 2: roughly double phase 1 (compensating halved parameters).
    assert result["vrate_phase2"] == pytest.approx(2 * result["vrate_phase1"], rel=0.3)
    # Phase 3: roughly half phase 1 (compensating doubled parameters).
    assert result["vrate_phase3"] == pytest.approx(0.5 * result["vrate_phase1"], rel=0.35)
    # QoS is maintained in steady state in every phase.
    for phase in ("p90_phase1", "p90_phase2", "p90_phase3"):
        assert result[phase] < 1.5 * LATENCY_TARGET, phase
