"""Figure 13 — Vrate adjustment due to model inaccuracy.

A workload saturates the newer-generation commercial SSD with 4 KiB random
reads under a p90 read-latency QoS target.  Mid-run the cost-model
parameters are updated online:

* phase 1 — accurate parameters: vrate hovers near 100%;
* phase 2 — parameters halved (device claimed half as capable): the issue
  rate drops, then vrate climbs to ~200% to restore it while holding QoS;
* phase 3 — parameters doubled versus the original: the device briefly
  over-saturates (latency spike), then vrate drops to ~50%.

The scenario is declared as a ``vrate_phases`` spec and executed through
the :mod:`repro.exp` runner, so the phase configuration fans out the same
way a multi-point QoS sweep would (and lands in an artifact store).
"""

import tempfile

import pytest

from repro.analysis.report import Table
from repro.exp import ArtifactStore, ExperimentSpec, run_sweep

from benchmarks.conftest import run_experiment

# 1/10-speed ssd_new keeps the event count tractable; relative behaviour
# (model error vs vrate) is scale-free.
PHASE = 4.0  # seconds per phase
LATENCY_TARGET = 2.5e-3  # p90 read target, scaled like the device


def run_phases():
    spec = ExperimentSpec(
        name="fig13-vrate-adjustment",
        kind="vrate_phases",
        base={
            "device": "ssd_new",
            "device_scale": 0.1,
            "phase_sec": PHASE,
            "model_scales": [1.0, 0.5, 2.0],
            "read_lat_target": LATENCY_TARGET,
            "read_pct": 90,
            "vrate_min": 0.1,
            "vrate_max": 4.0,
            "period": 0.05,
            "depth": 64,
        },
    )
    with tempfile.TemporaryDirectory() as root:
        report = run_sweep(spec, ArtifactStore(root), workers=1)
    outcome = report.outcomes[0]
    if not outcome.ok:
        raise RuntimeError(f"vrate_phases failed: {outcome.error}")
    phases = outcome.result["phases"]
    return {
        "vrate_phase1": phases[0]["vrate"],
        "vrate_phase2": phases[1]["vrate"],
        "vrate_phase3": phases[2]["vrate"],
        "p90_phase1": phases[0]["read_lat"],
        "p90_phase2": phases[1]["read_lat"],
        "p90_phase3": phases[2]["read_lat"],
    }


def test_fig13_vrate_adjustment(benchmark):
    result = run_experiment(benchmark, run_phases)

    table = Table(
        "Figure 13: vrate adjustment under online model updates",
        ["phase", "model params", "steady vrate", "steady read p90"],
    )
    table.add_row("1", "accurate", f"{result['vrate_phase1']:.2f}",
                  f"{result['p90_phase1'] * 1e3:.2f}ms")
    table.add_row("2", "halved", f"{result['vrate_phase2']:.2f}",
                  f"{result['p90_phase2'] * 1e3:.2f}ms")
    table.add_row("3", "doubled", f"{result['vrate_phase3']:.2f}",
                  f"{result['p90_phase3'] * 1e3:.2f}ms")
    table.print()

    # Phase 1: near 100%.
    assert result["vrate_phase1"] == pytest.approx(1.0, rel=0.3)
    # Phase 2: roughly double phase 1 (compensating halved parameters).
    assert result["vrate_phase2"] == pytest.approx(2 * result["vrate_phase1"], rel=0.3)
    # Phase 3: roughly half phase 1 (compensating doubled parameters).
    assert result["vrate_phase3"] == pytest.approx(0.5 * result["vrate_phase1"], rel=0.35)
    # QoS is maintained in steady state in every phase.
    for phase in ("p90_phase1", "p90_phase2", "p90_phase3"):
        assert result[phase] < 1.5 * LATENCY_TARGET, phase
