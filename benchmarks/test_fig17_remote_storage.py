"""Figure 17 — Remote storage and VM environments.

Repeats the memory-leak protection experiment with ResourceControlBench on
the four public-cloud volume models (AWS EBS gp3/io2, Google Cloud PD
balanced/SSD), reporting the fraction of leak-free RPS retained with IOCost
as the guest's controller.

Paper shape: despite the different latency profiles, IOCost effectively
isolates the latency-sensitive workload on every configuration, local or
remotely attached.
"""

import pytest

from repro.analysis.report import Table
from repro.core.qos import QoSParams
from repro.testbed import Testbed
from repro.workloads.memleak import MemoryLeaker
from repro.workloads.rcbench import ResourceControlBench

from benchmarks.conftest import run_experiment

MB = 1024 * 1024
DURATION = 20.0
MEASURE_FROM = 8.0

VOLUMES = ("ebs_gp3", "ebs_io2", "gcp_pd_balanced", "gcp_pd_ssd")

# Latency targets sized to each volume's service profile (QoS parameters
# are per-device, §3.4).
TARGETS = {
    "ebs_gp3": 30e-3,
    "ebs_io2": 10e-3,
    "gcp_pd_balanced": 30e-3,
    "gcp_pd_ssd": 15e-3,
}


def run_once(volume, with_leak):
    qos = QoSParams(
        read_lat_target=TARGETS[volume], read_pct=90,
        vrate_min=0.4, vrate_max=2.0, period=0.05,
    )
    testbed = Testbed(
        device=volume,
        controller="iocost",
        qos=qos,
        mem_bytes=1024 * MB,
        swap_bytes=8192 * MB,
        protected={"workload.slice/rcbench": 320 * MB},
        seed=13,
    )
    bench_group = testbed.add_cgroup("workload.slice/rcbench", weight=500)
    bench = ResourceControlBench(
        testbed.sim, testbed.layer, testbed.mm, bench_group,
        peak_rps=300, load=0.8, workers=8,
        working_set=640 * MB, touch_per_request=256 * 1024,
        io_reads_per_request=1, io_read_size=8 * 1024,
        queue_timeout=0.5,
        stop_at=DURATION,
    ).start()
    if with_leak:
        for index in range(2):
            MemoryLeaker(
                testbed.sim, testbed.layer, testbed.mm,
                testbed.cgroups.lookup("system.slice"),
                rate_bps=512 * MB, chunk=8 * MB,
                stop_at=DURATION, seed=100 + index,
            ).start()
    testbed.run(DURATION)
    testbed.detach()
    return bench.rps_series.mean(MEASURE_FROM, DURATION)


def run_all():
    protection = {}
    for volume in VOLUMES:
        baseline = run_once(volume, with_leak=False)
        with_leak = run_once(volume, with_leak=True)
        protection[volume] = with_leak / baseline
    return protection


def test_fig17_remote_storage(benchmark):
    protection = run_experiment(benchmark, run_all)

    table = Table(
        "Figure 17: RCBench RPS retained under a memory leak (IOCost in-guest)",
        ["volume", "retained"],
    )
    for volume in VOLUMES:
        table.add_row(volume, f"{protection[volume]:.0%}")
    table.print()

    # IOCost protects effectively on every volume type (some variance from
    # the different latency profiles, as in the paper).
    for volume in VOLUMES:
        assert protection[volume] > 0.7, volume
