"""§3.4 — QoS parameter tuning with ResourceControlBench.

Not a numbered figure, but a core piece of the paper's methodology: the
two-scenario sweep that bounds vrate for each device model.  Regenerates
the sweep table for a mid-range device and checks the bound derivation.
"""

import pytest

from repro.analysis.report import Table
from repro.block.device import DeviceSpec
from repro.core.qos_tuning import tune_qos

from benchmarks.conftest import run_experiment

MB = 1024 * 1024

TUNE_SPEC = DeviceSpec(
    name="tunedev",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=400e6,
    write_bw=400e6,
    sigma=0.1,
    nr_slots=64,
)


def run_tuning():
    return tune_qos(
        TUNE_SPEC,
        candidates=(0.25, 0.5, 1.0, 2.0),
        duration=6.0,
        total_mem=64 * MB,
    )


def test_qos_tuning_sweep(benchmark):
    result = run_experiment(benchmark, run_tuning)

    table = Table(
        "SS3.4: ResourceControlBench vrate sweep",
        ["vrate", "solo RPS (paging-bound)", "p95 vs memory leak"],
    )
    for vrate in result.candidates:
        table.add_row(
            f"{vrate:.2f}",
            f"{result.solo_rps[vrate]:.0f}",
            f"{result.protected_p95[vrate] * 1e3:.1f}ms",
        )
    table.print()
    print(f"derived bounds: vrate in [{result.vrate_min}, {result.vrate_max}]")

    assert result.vrate_min <= result.vrate_max
    # Throughput is (weakly) increasing in vrate when paging-bound.
    assert result.solo_rps[2.0] >= 0.9 * result.solo_rps[0.25]
    # The QoS params derived from the sweep are usable as-is.
    qos = result.to_qos()
    assert qos.vrate_min == result.vrate_min
    assert qos.vrate_max == result.vrate_max
