"""Figure 9 — IO control overhead.

The paper saturates a 750K-IOPS enterprise SSD with 4 KiB random reads and
measures the maximum achievable IOPS under each mechanism, with no actual
throttling configured, so only the issue-path software overhead shows.

Two measurements here:

* the simulated max IOPS per mechanism, with each controller's serialized
  per-IO CPU cost modelled on the block layer's CPU resource (calibrated to
  the paper's *relative* overheads — a pure-Python reproduction cannot hit
  750K IOPS natively);
* a real wall-clock microbenchmark of the IOCost issue fast path
  (cost -> cached hweight -> budget check), the paper's key claim that the
  issue/planning split keeps the hot path cheap.
"""

import numpy as np
import pytest

from repro.analysis.report import Table, format_si
from repro.block.bio import Bio, IOOp
from repro.block.device import Device
from repro.block.device_models import SSD_ENTERPRISE
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.qos import QoSParams
from repro.sim import Simulator
from repro.testbed import make_controller
from repro.workloads.synthetic import ClosedLoopWorkload

from benchmarks.conftest import run_experiment

MECHANISMS = ["none", "mq-deadline", "kyber", "bfq", "blk-throttle", "iolatency", "iocost"]
WINDOW = 0.05  # simulated seconds of saturation per mechanism


def max_iops(name: str) -> float:
    sim = Simulator()
    device = Device(sim, SSD_ENTERPRISE, np.random.default_rng(0))
    # QoS disabled for the overhead measurement, as in the paper.
    qos = QoSParams(
        read_lat_target=None, write_lat_target=None,
        vrate_min=1.0, vrate_max=8.0, period=0.01,
    )
    controller = make_controller(name, SSD_ENTERPRISE, qos=qos)
    layer = BlockLayer(sim, device, controller)
    group = CgroupTree().create("fio")
    ClosedLoopWorkload(
        sim, layer, group, depth=512, stop_at=2 * WINDOW, seed=1
    ).start()
    sim.run(until=2 * WINDOW)
    controller.detach()
    return layer.completed_by_cgroup.get("fio", 0) / (2 * WINDOW)


def measure_all():
    return {name: max_iops(name) for name in MECHANISMS}


def test_fig9_simulated_overhead(benchmark):
    results = run_experiment(benchmark, measure_all)

    table = Table(
        "Figure 9: max 4KiB random-read IOPS with control enabled (no throttling)",
        ["mechanism", "IOPS", "vs none"],
    )
    baseline = results["none"]
    for name in MECHANISMS:
        table.add_row(name, format_si(results[name]), f"{results[name] / baseline:.0%}")
    table.print()

    # Shape: none ~= kyber at device peak; mq-deadline moderately lower;
    # bfq severely degraded; the controllers add no significant overhead.
    assert baseline == pytest.approx(750_000, rel=0.1)
    assert results["kyber"] == pytest.approx(baseline, rel=0.03)
    assert 0.7 * baseline < results["mq-deadline"] < 0.95 * baseline
    assert results["bfq"] < 0.35 * baseline
    for name in ("blk-throttle", "iolatency", "iocost"):
        assert results[name] > 0.9 * baseline, name


def test_fig9_issue_path_microbenchmark(benchmark):
    """Real wall-clock cost of the IOCost issue fast path per bio."""
    sim = Simulator()
    device = Device(sim, SSD_ENTERPRISE, np.random.default_rng(0))
    qos = QoSParams(read_lat_target=None, write_lat_target=None,
                    vrate_min=1.0, vrate_max=1.0)
    controller = IOCost(
        LinearCostModel(ModelParams.from_device_spec(SSD_ENTERPRISE)), qos=qos
    )
    layer = BlockLayer(sim, device, controller)
    group = CgroupTree().create("hot")
    state = controller.tree.state_of(group)
    controller._activate(state)
    bios = [Bio(IOOp.READ, 4096, index * 8, group) for index in range(4096)]
    counter = {"i": 0}

    def issue_one():
        bio = bios[counter["i"] % 4096]
        counter["i"] += 1
        bio.abs_cost = controller.model.cost(bio)
        hweight = controller.tree.hweight(state)
        relative = bio.abs_cost / hweight
        budget = controller.clock.now() - state.local_vtime
        if budget >= relative:
            state.local_vtime += relative
        return relative

    result = benchmark(issue_one)
    assert result > 0
