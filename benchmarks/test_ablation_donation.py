"""Ablation — budget donation (DESIGN.md §4).

The §3.6 donation algorithm is what makes IOCost work-conserving without
touching the issue path.  This ablation runs the same two-group scenario
(one saturating, one barely active) with donation enabled and disabled:

* disabled: the busy group is capped near its 50% hweight — unused budget
  evaporates;
* enabled: the light group's unused share flows to the busy group, which
  recovers nearly the whole device.
"""

import numpy as np
import pytest

from repro.analysis.report import Table, format_si
from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.qos import QoSParams
from repro.sim import Simulator
from repro.workloads.synthetic import ClosedLoopWorkload, PacedWorkload

from benchmarks.conftest import run_experiment

SPEC = DeviceSpec(
    name="abldev",
    parallelism=8,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=1e9,
    write_bw=1e9,
    sigma=0.0,
    nr_slots=128,
)
PEAK = SPEC.peak_rand_read_iops  # 80K
DURATION = 2.0

# vrate pinned so budgets bind and the donation effect is unconfounded.
QOS = QoSParams(
    read_lat_target=None, write_lat_target=None,
    vrate_min=1.0, vrate_max=1.0, period=0.025,
)


def run_one(donation_enabled):
    sim = Simulator()
    device = Device(sim, SPEC, np.random.default_rng(0))
    controller = IOCost(
        LinearCostModel(ModelParams.from_device_spec(SPEC)),
        qos=QOS,
        donation_enabled=donation_enabled,
    )
    layer = BlockLayer(sim, device, controller)
    tree = CgroupTree()
    busy = tree.create("busy", weight=100)
    light = tree.create("light", weight=100)
    wl_busy = ClosedLoopWorkload(sim, layer, busy, depth=32, stop_at=DURATION, seed=1).start()
    PacedWorkload(sim, layer, light, rate=2000, stop_at=DURATION, seed=2).start()
    sim.run(until=DURATION)
    controller.detach()
    return wl_busy.completed / DURATION


def run_both():
    return {
        "donation disabled": run_one(False),
        "donation enabled": run_one(True),
    }


def test_ablation_donation(benchmark):
    results = run_experiment(benchmark, run_both)

    table = Table(
        "Ablation: budget donation (busy group vs 2K-IOPS light neighbour)",
        ["configuration", "busy IOPS", "of device peak"],
    )
    for name, value in results.items():
        table.add_row(name, format_si(value), f"{value / PEAK:.0%}")
    table.print()

    # Disabled: capped around the 50% hweight.
    assert results["donation disabled"] < 0.6 * PEAK
    # Enabled: recovers nearly all unused capacity.
    assert results["donation enabled"] > 0.85 * (PEAK - 2000)
    assert results["donation enabled"] > 1.5 * results["donation disabled"]
