"""Table 1 — Linux IO control mechanisms and features.

Regenerates the paper's feature matrix from each controller's declared
capability flags and cross-checks the two rows that differ from common
intuition behaviourally elsewhere in the suite (blk-throttle's partial
overhead, iolatency's partial work conservation).
"""

from repro.analysis.report import Table
from repro.controllers import CONTROLLER_CLASSES, TABLE1_CONTROLLERS

from benchmarks.conftest import run_experiment

MARKS = {"yes": "yes", "no": "no", "partial": "~"}


def build_table():
    table = Table(
        "Table 1: Linux IO control mechanisms and features",
        [
            "Mechanism",
            "Low Overhead",
            "Work Conserving",
            "MM-aware",
            "Proportional",
            "cgroup Control",
        ],
    )
    rows = {}
    for cls in TABLE1_CONTROLLERS:
        feats = cls.features
        row = (
            MARKS[feats.low_overhead],
            MARKS[feats.work_conserving],
            MARKS[feats.memory_management_aware],
            MARKS[feats.proportional_fairness],
            MARKS[feats.cgroup_control],
        )
        rows[cls.name] = row
        table.add_row(cls.name, *row)
    return table, rows


def test_table1_feature_matrix(benchmark):
    table, rows = run_experiment(benchmark, build_table)
    table.print()

    # The paper's rows, verbatim.
    assert rows["kyber"] == ("yes", "yes", "no", "no", "no")
    assert rows["mq-deadline"] == ("yes", "yes", "no", "no", "no")
    assert rows["blk-throttle"] == ("~", "no", "no", "no", "yes")
    assert rows["bfq"] == ("no", "yes", "no", "yes", "yes")
    assert rows["iolatency"] == ("yes", "~", "yes", "no", "yes")
    assert rows["iocost"] == ("yes", "yes", "yes", "yes", "yes")

    # Only IOCost checks every box.
    full_rows = [name for name, row in rows.items() if set(row) == {"yes"}]
    assert full_rows == ["iocost"]
