"""Shared helpers for the paper-regeneration benchmark harness.

Every module in this directory regenerates one table or figure from the
paper: it runs the (scaled-down) experiment inside the pytest-benchmark
fixture, prints the same rows/series the paper reports, and asserts the
qualitative *shape* — who wins, by roughly what factor — rather than
absolute numbers (the substrate is a simulator, not Meta's testbed).

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def run_experiment(benchmark, fn):
    """Run ``fn`` once under pytest-benchmark and return its result.

    The experiments are deterministic simulations; a single round both
    times the harness and produces the figure data.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
