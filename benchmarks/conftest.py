"""Shared helpers for the paper-regeneration benchmark harness.

Every module in this directory regenerates one table or figure from the
paper: it runs the (scaled-down) experiment inside the pytest-benchmark
fixture, prints the same rows/series the paper reports, and asserts the
qualitative *shape* — who wins, by roughly what factor — rather than
absolute numbers (the substrate is a simulator, not Meta's testbed).

Besides timing, :func:`run_experiment` now persists the figure data each
experiment returns as a JSON artifact under ``.benchmarks/figures/`` —
next to pytest-benchmark's own storage — so the regenerated numbers
survive non-interactive runs instead of living only in captured stdout.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

#: Figure-data artifacts land beside pytest-benchmark's .benchmarks store.
ARTIFACT_DIR = Path(".benchmarks") / "figures"


def _jsonable(value):
    """Best-effort conversion of experiment results to JSON-able data.

    Handles the shapes our experiments actually return — dataclasses
    (e.g. ``DeviceProfile``), numpy scalars/arrays, mappings, sequences —
    and falls back to ``repr`` so an exotic value can never break the
    benchmark that produced it.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value) if not isinstance(value, (set, frozenset)) else sorted(value, key=repr)
        return [_jsonable(item) for item in items]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item") and callable(value.item):  # numpy scalar
        try:
            return _jsonable(value.item())
        except (TypeError, ValueError):
            pass
    if hasattr(value, "tolist") and callable(value.tolist):  # numpy array
        try:
            return _jsonable(value.tolist())
        except (TypeError, ValueError):
            pass
    return repr(value)


def save_figure_artifact(name: str, result) -> Path:
    """Write one experiment's returned figure data as a JSON artifact."""
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / f"{name}.json"
    path.write_text(json.dumps(_jsonable(result), indent=2, sort_keys=True) + "\n")
    return path


def run_experiment(benchmark, fn):
    """Run ``fn`` once under pytest-benchmark and return its result.

    The experiments are deterministic simulations; a single round both
    times the harness and produces the figure data.  The returned data is
    also recorded under ``.benchmarks/figures/<test>.json``.
    """
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    save_figure_artifact(getattr(benchmark, "name", fn.__name__), result)
    return result
