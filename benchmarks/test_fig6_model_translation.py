"""Figure 6 — Example IOCost configuration and its internal translation.

Regenerates the paper's worked example: the six-parameter configuration
line, the derived size-cost rates and base costs, and the cost of the
random-read example bio.
"""

from repro.analysis.report import Table
from repro.block.bio import Bio, IOOp
from repro.cgroup import CgroupTree
from repro.core.cost_model import LinearCostModel, ModelParams

from benchmarks.conftest import run_experiment

FIG6 = ModelParams(
    rbps=488636629,
    rseqiops=8932,
    rrandiops=8518,
    wbps=427891549,
    wseqiops=28755,
    wrandiops=21940,
)


def translate():
    model = LinearCostModel(FIG6)
    group = CgroupTree().create("example")
    example = Bio(IOOp.READ, 32 * 4096, 0, group)  # the paper's "32KB" = 32 pages
    example.sequential = False
    return {
        "r_size_rate": FIG6.r_size_rate,
        "r_seq_base": FIG6.r_seq_base,
        "r_rand_base": FIG6.r_rand_base,
        "example_cost": model.cost(example),
    }


def test_fig6_model_translation(benchmark):
    derived = run_experiment(benchmark, translate)

    print(
        "\nconfig: rbps=488636629 rseqiops=8932 rrandiops=8518 "
        "wbps=427891549 wseqiops=28755 wrandiops=21940"
    )
    table = Table("Figure 6: derived linear-model parameters", ["parameter", "value"])
    table.add_row("read size_cost_rate", f"{derived['r_size_rate'] * 1e9:.2f} ns/B")
    table.add_row("read sequential base", f"{derived['r_seq_base'] * 1e6:.0f} us")
    table.add_row("read random base", f"{derived['r_rand_base'] * 1e6:.0f} us")
    table.add_row("32-page random read cost", f"{derived['example_cost'] * 1e6:.0f} us")
    table.add_row("such IOs serviceable/sec", f"{1 / derived['example_cost']:.0f}")
    table.print()

    # Paper: 2.05 ns/B, 104 us sequential base, 109 us random base.
    assert abs(derived["r_size_rate"] - 2.05e-9) / 2.05e-9 < 0.01
    assert abs(derived["r_seq_base"] - 104e-6) / 104e-6 < 0.01
    assert abs(derived["r_rand_base"] - 109e-6) / 109e-6 < 0.01
    # The formula's value for the example (the paper's printed 352us does
    # not match its own formula; the formula gives ~377us).
    assert abs(derived["example_cost"] - 377e-6) / 377e-6 < 0.02
