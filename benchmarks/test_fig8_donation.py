"""Figure 8 — Budget donation worked example.

Rebuilds a hierarchy realising the figure's hweights (B 0.25, G 0.35,
D 0.40 with children E 0.16, F 0.04, H 0.20), lets B and H donate down to
0.10 each (0.25 total), and reports the post-donation hweights: the freed
budget must flow to E, F, G proportionally to their original hweights —
gains of 0.07, 0.02, and 0.16.
"""

from repro.analysis.report import Table
from repro.cgroup import CgroupTree
from repro.core.donation import compute_donations
from repro.core.hierarchy import WeightTree

from benchmarks.conftest import run_experiment


def run_donation():
    cgroups = CgroupTree()
    tree = WeightTree()
    weights = {"B": 25, "G": 35, "D": 40, "D/E": 16, "D/F": 4, "D/H": 20}
    states = {}
    for path, weight in weights.items():
        group = cgroups.get_or_create(path, weight=weight)
        group.weight = weight
        states[path] = tree.state_of(group)
    for path, state in states.items():
        if not state.children:
            tree.activate(state)

    before = {path: tree.hweight(states[path]) for path in states}
    result = compute_donations(tree, {states["B"]: 0.10, states["D/H"]: 0.10})
    after = {path: tree.hweight(states[path]) for path in states}
    return before, after, result


def test_fig8_donation_example(benchmark):
    before, after, result = run_experiment(benchmark, run_donation)

    table = Table(
        "Figure 8: B and H donate portions of their budget",
        ["node", "h before", "h after", "delta"],
    )
    for path in ("B", "G", "D", "D/E", "D/F", "D/H"):
        table.add_row(
            path,
            f"{before[path]:.3f}",
            f"{after[path]:.3f}",
            f"{after[path] - before[path]:+.3f}",
        )
    table.print()

    assert abs(result.donated_total - 0.25) < 1e-9
    # Donors land exactly on their targets.
    assert abs(after["B"] - 0.10) < 1e-9
    assert abs(after["D/H"] - 0.10) < 1e-9
    # Paper: "a donation of 0.07, 0.02, and 0.16 to E, F, and G".
    assert abs((after["D/E"] - before["D/E"]) - 0.0727) < 2e-3
    assert abs((after["D/F"] - before["D/F"]) - 0.0182) < 2e-3
    assert abs((after["G"] - before["G"]) - 0.1591) < 2e-3
    # Conservation.
    leaves = ("B", "G", "D/E", "D/F", "D/H")
    assert abs(sum(after[p] for p in leaves) - 1.0) < 1e-9
