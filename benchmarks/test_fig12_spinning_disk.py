"""Figure 12 — Fairness with random and sequential workloads on a spinning
disk.

Two workloads (weights 2:1) issue 4 KiB reads on the HDD model in three
scenarios: rand/rand, rand/seq (high-priority random), seq/seq.  Throughput
is normalised to each pattern's standalone peak.

Paper shape: mq-deadline ignores weights entirely; BFQ holds 2:1 for
seq/seq but misallocates when random IO is involved; IOCost holds the 2:1
occupancy ratio in every scenario because its cost model prices seeks.
"""

import pytest

from repro.analysis.report import Table
from repro.block.device_models import HDD
from repro.core.qos import QoSParams
from repro.testbed import Testbed

from benchmarks.conftest import run_experiment

DURATION = 20.0

# Standalone 4 KiB peaks of the HDD model.
RAND_PEAK = 1 / HDD.srv_rand_read          # ~143 IOPS
SEQ_PEAK = 1 / HDD.srv_seq_read            # ~43K IOPS

# vrate pinned at the QoS-tuned operating point for this disk.  The
# linear model cannot price the *detour* seeks a random stream inflicts on
# a sequential one, so the tuned vrate sits well under 1.0 — exactly the
# role the paper assigns to QoS tuning (SS3.4).
QOS = QoSParams(
    read_lat_target=None, write_lat_target=None,
    vrate_min=0.45, vrate_max=0.45, period=0.1,
)

SCENARIOS = {
    "rand/rand": (False, False),
    "rand/seq": (False, True),
    "seq/seq": (True, True),
}


def normalised(iops, sequential):
    return iops / (SEQ_PEAK if sequential else RAND_PEAK)


def run_one(controller, high_seq, low_seq):
    testbed = Testbed(device=HDD, controller=controller, qos=QOS, seed=5)
    high = testbed.add_cgroup("workload.slice/high", weight=200)
    low = testbed.add_cgroup("workload.slice/low", weight=100)
    wl_high = testbed.saturate(high, sequential=high_seq, depth=16, stop_at=DURATION)
    wl_low = testbed.saturate(low, sequential=low_seq, depth=16, stop_at=DURATION)
    testbed.run(DURATION)
    testbed.detach()
    return (
        normalised(wl_high.completed / DURATION, high_seq),
        normalised(wl_low.completed / DURATION, low_seq),
    )


def run_all():
    results = {}
    for controller in ("mq-deadline", "bfq", "iocost"):
        for scenario, (high_seq, low_seq) in SCENARIOS.items():
            results[(controller, scenario)] = run_one(controller, high_seq, low_seq)
    return results


def test_fig12_spinning_disk_fairness(benchmark):
    results = run_experiment(benchmark, run_all)

    table = Table(
        "Figure 12: spinning-disk fairness (weights 2:1, normalised throughput)",
        ["mechanism", "scenario", "high (norm)", "low (norm)", "norm ratio"],
    )
    for (controller, scenario), (high, low) in results.items():
        table.add_row(
            controller, scenario, f"{high:.3f}", f"{low:.3f}",
            f"{high / max(low, 1e-9):.2f}",
        )
    table.print()

    def ratio(controller, scenario):
        high, low = results[(controller, scenario)]
        return high / max(low, 1e-9)

    # IOCost holds roughly 2:1 occupancy in every scenario (the residual
    # drift in rand/seq comes from the detour seeks the linear model
    # cannot price; vrate absorbs them globally, not per-group).
    for scenario in SCENARIOS:
        assert 1.5 < ratio("iocost", scenario) < 3.3, scenario

    # mq-deadline cannot provide the 2:1 ratio in any scenario: equal
    # split for same-pattern pairs, collapse of the sequential stream in
    # the mixed case.
    for scenario in SCENARIOS:
        assert abs(ratio("mq-deadline", scenario) - 2.0) > 0.5, scenario

    # BFQ: close to 2:1 for seq/seq, under-serves the weighted group in
    # rand/rand, and over-allocates occupancy to the random workload in
    # the mixed case (ratio well beyond the 2:1 target).
    assert ratio("bfq", "seq/seq") == pytest.approx(2.0, rel=0.35)
    assert ratio("bfq", "rand/rand") < 1.9
    assert ratio("bfq", "rand/seq") > 2.4
