"""Figure 19 — Container-cleanup failures across a region migration.

Same scheduler-driven migration as Figure 18, for the btrfs
container-cleanup task: metadata IO from ``hostcritical.slice`` under a
saturating main workload, counted as a failure when it takes longer than
5 seconds.

Paper shape: an immediate ~3x reduction in cleanup stalls as the region
moves to IOCost.
"""

import tempfile

import pytest

from repro.fleet.runner import run_staged_migration
from repro.workloads.fleet import CONTAINER_CLEANUP

from benchmarks.conftest import run_experiment
from benchmarks.test_fig18_package_fetch import (
    print_migration_table,
    region_spec,
)


def run_migration():
    spec = region_spec("fig19-region", "container_cleanup", seed=43)
    store = tempfile.mkdtemp(prefix="fig19-")
    return run_staged_migration(spec, store, workers=4)


def test_fig19_container_cleanup_failures(benchmark):
    report = run_experiment(benchmark, run_migration)

    print_migration_table(
        "Figure 19: container-cleanup failures (>5s) during the migration",
        report,
    )

    first, last = report.weeks[0], report.weeks[-1]
    assert report.task == CONTAINER_CLEANUP.name
    assert first.failures > 0
    # Paper: roughly a 3x reduction in stalls.
    assert last.failures < first.failures / 2.5
    rates = [week.failure_rate for week in report.weeks]
    assert all(b <= a * 1.25 for a, b in zip(rates, rates[1:]))
