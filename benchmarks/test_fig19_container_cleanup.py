"""Figure 19 — Container-cleanup failures across a region migration.

Same migration model as Figure 18, for the btrfs container-cleanup task:
metadata IO from ``hostcritical.slice`` under a saturating main workload,
counted as a failure when it takes longer than 5 seconds.

Paper shape: an immediate ~3x reduction in cleanup stalls as the region
moves to IOCost.
"""

import pytest

from repro.analysis.report import Table
from repro.workloads.fleet import (
    CONTAINER_CLEANUP,
    FleetMigration,
    measure_task_durations,
)

from benchmarks.conftest import run_experiment
from benchmarks.test_fig18_package_fetch import (
    FLEET_SPEC,
    MIGRATION_SCHEDULE,
    iocost_factory,
    iolatency_factory,
)


def run_migration():
    old = measure_task_durations(
        FLEET_SPEC, iolatency_factory, CONTAINER_CLEANUP, samples=10, seed=2
    )
    new = measure_task_durations(
        FLEET_SPEC, iocost_factory, CONTAINER_CLEANUP, samples=10, seed=2
    )
    fleet = FleetMigration(
        old, new, deadline=CONTAINER_CLEANUP.deadline,
        machines=3000, tasks_per_machine_week=10, seed=43,
    )
    return fleet.run(MIGRATION_SCHEDULE), old, new


def test_fig19_container_cleanup_failures(benchmark):
    reports, old, new = run_experiment(benchmark, run_migration)

    table = Table(
        "Figure 19: container-cleanup failures (>5s) during the migration",
        ["week", "on iocost", "attempts", "failures", "rate"],
    )
    for report in reports:
        table.add_row(
            report.week,
            f"{report.migrated_fraction:.0%}",
            report.attempts,
            report.failures,
            f"{report.failure_rate:.2%}",
        )
    table.print()
    print(
        f"task duration medians: iolatency={sorted(old)[len(old) // 2]:.2f}s "
        f"iocost={sorted(new)[len(new) // 2]:.2f}s (deadline {CONTAINER_CLEANUP.deadline}s)"
    )

    first, last = reports[0], reports[-1]
    assert first.failures > 0
    # Paper: roughly a 3x reduction in stalls.
    assert last.failures < first.failures / 2.5
    rates = [report.failure_rate for report in reports]
    assert all(b <= a * 1.25 for a, b in zip(rates, rates[1:]))
