"""Figure 10 — Proportional control.

Two latency-sensitive workloads continuously issue 4 KiB random reads while
their observed p50 stays below 200 us (load-shedding online services), on
the older-generation SSD.  The high-priority workload is entitled to double
the IO of the low-priority one.

Paper shape: bfq and iolatency give the high-priority workload >10:1 (the
low-priority workload sheds itself into starvation); blk-throttle (with
hand-set limits) and iocost hold the 2:1 target.
"""

import pytest

from repro.analysis.report import Table, format_ratio, format_si
from repro.block.device_models import SSD_OLD
from repro.controllers.blk_throttle import ThrottleLimits
from repro.core.qos import QoSParams
from repro.testbed import Testbed

from benchmarks.conftest import run_experiment

DURATION = 4.0
LATENCY_TARGET = 200e-6

# Tight enough that vrate holds the device where weight budgets bind.
QOS = QoSParams(
    read_lat_target=180e-6, read_pct=90, vrate_min=0.25, vrate_max=1.5, period=0.025
)


def run_one(name):
    kwargs = {}
    if name == "blk-throttle":
        # Hand-set limits preserving 2:1 within device capability (~90K).
        kwargs["limits"] = {
            "workload.slice/high": ThrottleLimits(riops=40_000),
            "workload.slice/low": ThrottleLimits(riops=20_000),
        }
    elif name == "iolatency":
        # The paper's "best configuration" attempt: staggered targets.
        kwargs["targets"] = {
            "workload.slice/high": 200e-6,
            "workload.slice/low": 400e-6,
        }
    testbed = Testbed(device=SSD_OLD, controller=name, qos=QOS, seed=11, **kwargs)
    high = testbed.add_cgroup("workload.slice/high", weight=200)
    low = testbed.add_cgroup("workload.slice/low", weight=100)
    wl_high = testbed.latency_governed(high, latency_target=LATENCY_TARGET, stop_at=DURATION)
    wl_low = testbed.latency_governed(low, latency_target=LATENCY_TARGET, stop_at=DURATION)
    testbed.run(DURATION)
    testbed.detach()
    return {
        "high_iops": wl_high.completed / DURATION,
        "low_iops": wl_low.completed / DURATION,
        "high_p50": wl_high.recent_percentile(50, last=1000),
        "low_p50": wl_low.recent_percentile(50, last=1000),
    }


def run_all():
    return {name: run_one(name) for name in ("bfq", "blk-throttle", "iolatency", "iocost")}


def test_fig10_proportional_control(benchmark):
    results = run_experiment(benchmark, run_all)

    table = Table(
        "Figure 10: proportional control (target high:low = 2:1)",
        ["mechanism", "high IOPS", "low IOPS", "ratio", "high p50", "low p50"],
    )
    for name, row in results.items():
        table.add_row(
            name,
            format_si(row["high_iops"]),
            format_si(row["low_iops"]),
            format_ratio(row["high_iops"], row["low_iops"]),
            f"{row['high_p50'] * 1e6:.0f}us",
            f"{row['low_p50'] * 1e6:.0f}us",
        )
    table.print()

    ratios = {
        name: row["high_iops"] / max(row["low_iops"], 1.0)
        for name, row in results.items()
    }
    # IOCost precisely matches the 2:1 target.
    assert ratios["iocost"] == pytest.approx(2.0, rel=0.15)
    # blk-throttle's hand-set limits also hold the ratio.
    assert ratios["blk-throttle"] == pytest.approx(2.0, rel=0.2)
    # iolatency grossly over-serves the high-priority workload (paper:
    # >10:1; our best-tuned staggered targets land near that).
    assert ratios["iolatency"] > 4.0
    # DEVIATION from the paper: real BFQ starves the low-priority workload
    # into a >10:1 split via its latency swings; our BFQ abstraction
    # reaches a gentler slice equilibrium and holds near the weight ratio.
    # Recorded in EXPERIMENTS.md.
    assert ratios["bfq"] > 1.5
