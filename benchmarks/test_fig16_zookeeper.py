"""Figure 16 — Impact of IO control on stacked ZooKeeper SLO violations.

Twelve five-participant ensembles over five machines, eleven well-behaved
(100 KB payloads), one noisy neighbour (300 KB payloads, 3x snapshots).
Counts violations of the one-second P99 SLO for the well-behaved ensembles
under each controller.  Scaled from the paper's 6-hour run on enterprise
SSDs to minutes on a 1/40-speed device with proportional snapshot cadence.

Paper shape: blk-throttle shows the most violations (78, some tens of
seconds), iolatency 31, bfq 13 (2-5 s), iocost only two marginal ones.
"""

import pytest

from repro.analysis.report import Table
from repro.block.device_models import get_device_spec
from repro.controllers.bfq import BFQController
from repro.controllers.blk_throttle import BlkThrottleController, ThrottleLimits
from repro.controllers.iolatency import IOLatencyController
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.qos import QoSParams
from repro.sim import Simulator
from repro.workloads.zookeeper import Machine, ZooKeeperEnsemble

from benchmarks.conftest import run_experiment

KB = 1024
DURATION = 240.0
N_ENSEMBLES = 12
SPEC = get_device_spec("ssd_enterprise").scaled(0.025)


def controller_factory(name):
    if name == "iocost":
        return lambda: IOCost(
            LinearCostModel(ModelParams.from_device_spec(SPEC)),
            qos=QoSParams(
                read_lat_target=25e-3, read_pct=90,
                write_lat_target=250e-3, write_pct=90,
                vrate_min=0.5, vrate_max=1.2, period=0.05,
            ),
        )
    if name == "bfq":
        return BFQController
    if name == "iolatency":
        return lambda: IOLatencyController(
            {
                f"workload.slice/ens{i}": (80e-3 if i < 6 else 160e-3)
                for i in range(N_ENSEMBLES)
            }
        )
    if name == "blk-throttle":
        return lambda: BlkThrottleController(
            {
                f"workload.slice/ens{i}": ThrottleLimits(wbps=4e6)
                for i in range(N_ENSEMBLES)
            }
        )
    raise ValueError(name)


def run_one(name):
    sim = Simulator()
    machines = [
        Machine(sim, SPEC, controller_factory(name), name=f"m{i}", seed=i)
        for i in range(5)
    ]
    ensembles = []
    for index in range(N_ENSEMBLES):
        noisy = index == N_ENSEMBLES - 1
        ensembles.append(
            ZooKeeperEnsemble(
                sim, machines, f"ens{index}",
                read_rps=50, write_rps=8,
                payload=(300 if noisy else 100) * KB,
                snapshot_every=400,
                snapshot_bytes=(72 if noisy else 24) * 1024 * KB,
                snapshot_chunk=64 * KB,
                stop_at=DURATION, seed=1000 + index,
            ).start()
        )
    sim.run(until=DURATION)
    for machine in machines:
        machine.controller.detach()
    violations = []
    for ensemble in ensembles[:-1]:
        violations.extend(ensemble.slo_violations(slo=1.0))
    longest = max((duration for _, duration, _ in violations), default=0.0)
    peak = max((p for _, _, p in violations), default=0.0)
    return {"count": len(violations), "longest": longest, "peak": peak}


def run_all():
    return {
        name: run_one(name)
        for name in ("blk-throttle", "bfq", "iolatency", "iocost")
    }


def test_fig16_zookeeper_slo(benchmark):
    results = run_experiment(benchmark, run_all)

    table = Table(
        "Figure 16: 1s-SLO violations of the 11 well-behaved ensembles",
        ["mechanism", "violations", "longest (s)", "peak p99 (s)"],
    )
    for name, row in results.items():
        table.add_row(name, row["count"], f"{row['longest']:.1f}", f"{row['peak']:.2f}")
    table.print()

    # IOCost shows the fewest violations, and they are marginal (p99 barely
    # above the SLO, vs multi-second overshoots elsewhere).
    for name in ("blk-throttle", "bfq", "iolatency"):
        assert results["iocost"]["count"] < results[name]["count"], name
        assert results["iocost"]["peak"] < results[name]["peak"], name
    assert results["iocost"]["peak"] < 1.6
    # blk-throttle violates the most, with long stalls.
    assert results["blk-throttle"]["count"] == max(
        row["count"] for row in results.values()
    )
    assert results["blk-throttle"]["longest"] > 5.0
