"""Figure 3 — Device heterogeneity across the fleet.

Profiles the eight catalogued fleet SSDs (A-H) with the fio-style
saturating sweeps and reports the figure's series: random/sequential
read/write IOPS (left axis) and read/write latency (right axis).

The per-device fan-out runs through the :mod:`repro.exp` orchestrator —
one ``profile_device`` sweep cell per SSD across a 2-worker pool — so
this benchmark doubles as an end-to-end exercise of the spec ->
expand -> schedule -> collect pipeline.

Shape anchors from the paper's text: SSD H achieves high IOPS at a low
latency, SSD G offers low IOPS and a relatively low latency, SSD A provides
moderate IOPS with a higher latency.
"""

import tempfile

from repro.analysis.report import Table, format_si
from repro.exp import ArtifactStore, ExperimentSpec, run_sweep

from benchmarks.conftest import run_experiment

FLEET = [f"fleet_{letter}" for letter in "abcdefgh"]


def profile_fleet():
    # Short sweeps keep the bench quick; IOPS converge fast.
    spec = ExperimentSpec(
        name="fig3-device-heterogeneity",
        kind="profile_device",
        base={"read_duration": 0.08, "write_duration": 0.3},
        grid={"device": FLEET},
    )
    with tempfile.TemporaryDirectory() as root:
        report = run_sweep(spec, ArtifactStore(root), workers=2)
    if report.failures:
        raise RuntimeError(f"{report.failures} profiling cells failed")
    return {
        outcome.run.axes["device"]: outcome.result
        for outcome in report.outcomes
    }


def test_fig3_device_heterogeneity(benchmark):
    profiles = run_experiment(benchmark, profile_fleet)

    table = Table(
        "Figure 3: Device heterogeneity across the fleet",
        ["device", "rand rd IOPS", "seq rd IOPS", "rand wr IOPS", "rd lat p50", "wr lat p50"],
    )
    for name in FLEET:
        profile = profiles[name]
        table.add_row(
            name.replace("fleet_", "SSD ").upper(),
            format_si(profile["rrandiops"]),
            format_si(profile["rseqiops"]),
            format_si(profile["wrandiops"]),
            f"{profile['read_lat_p50'] * 1e6:.0f}us",
            f"{profile['write_lat_p50'] * 1e6:.0f}us",
        )
    table.print()

    iops = {name: profiles[name]["rrandiops"] for name in FLEET}
    lat = {name: profiles[name]["read_lat_p50"] for name in FLEET}
    # H: highest IOPS; G: lowest IOPS; A: moderate IOPS with higher latency.
    assert iops["fleet_h"] == max(iops.values())
    assert iops["fleet_g"] == min(iops.values())
    assert lat["fleet_h"] == min(lat.values())
    median_iops = sorted(iops.values())[len(iops) // 2]
    assert 0.3 * median_iops < iops["fleet_a"] < 3 * median_iops
    assert lat["fleet_a"] > 1.5 * lat["fleet_h"]
    # Wide heterogeneity overall: an order of magnitude across the fleet.
    assert max(iops.values()) > 8 * min(iops.values())
