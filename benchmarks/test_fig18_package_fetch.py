"""Figure 18 — Package-fetching failures across a region migration.

A 3000-host region migrates from IOLatency to IOCost over eight weeks,
driven through the fleet scheduler (`docs/FLEET.md`): per-controller task
durations are measured by sharded, content-addressed machine simulations
(`repro.fleet.experiments.run_fleet_task_durations`), the scheduler's
label-keyed migration order decides *which* hosts flip each week, and the
weekly failure Monte Carlo draws every (week, cohort) from its own
labeled substream.  Package fetches (a sequential package write plus
metadata reads in ``system.slice``, under a saturating main workload)
fail when they exceed their deadline.

Paper shape: roughly 10x fewer package-fetching errors once the region is
fully on IOCost.
"""

import tempfile

import pytest

from repro.analysis.report import Table
from repro.fleet.runner import run_staged_migration
from repro.fleet.spec import FleetSpec
from repro.workloads.fleet import PACKAGE_FETCH

from benchmarks.conftest import run_experiment

#: The fleet device as an inline spec table, so it rides through the
#: content-addressed duration cells like any other parameter.
FLEETDEV = {
    "parallelism": 4,
    "srv_rand_read": 100e-6,
    "srv_seq_read": 100e-6,
    "srv_rand_write": 100e-6,
    "srv_seq_write": 100e-6,
    "read_bw": 500e6,
    "write_bw": 500e6,
    "sigma": 0.1,
    "nr_slots": 64,
}

# Fraction of the region on IOCost per week (two-month staged rollout).
MIGRATION_SCHEDULE = [0.0, 0.05, 0.15, 0.3, 0.5, 0.7, 0.9, 1.0]


def region_spec(name, task, seed):
    """A one-group 3000-host region with the staged rollout attached."""
    return FleetSpec.from_dict({
        "name": name,
        "seed": seed,
        "capacity": "rated",
        "hosts": {"region": {"count": 3000, "device": dict(FLEETDEV)}},
        "workloads": [],
        "migration": {
            "schedule": list(MIGRATION_SCHEDULE),
            "task": task,
            "samples": 10,
            "tasks_per_host_week": 10,
            "settle": 0.5,
        },
    })


def print_migration_table(title, report):
    table = Table(
        title, ["week", "on iocost", "attempts", "failures", "rate"],
    )
    for week in report.weeks:
        table.add_row(
            week.week,
            f"{week.scheduled_fraction:.0%}",
            week.attempts,
            week.failures,
            f"{week.failure_rate:.2%}",
        )
    table.print()
    old = sorted(report.durations[f"region:{report.from_controller}"])
    new = sorted(report.durations[f"region:{report.to_controller}"])
    print(
        f"task duration medians: {report.from_controller}={old[len(old) // 2]:.1f}s "
        f"{report.to_controller}={new[len(new) // 2]:.1f}s "
        f"(deadline {report.deadline:g}s)"
    )


def run_migration():
    spec = region_spec("fig18-region", "package_fetch", seed=42)
    store = tempfile.mkdtemp(prefix="fig18-")
    return run_staged_migration(spec, store, workers=4)


def test_fig18_package_fetch_failures(benchmark):
    report = run_experiment(benchmark, run_migration)

    print_migration_table(
        "Figure 18: package-fetching failures during IOLatency -> IOCost migration",
        report,
    )

    first, last = report.weeks[0], report.weeks[-1]
    assert report.task == PACKAGE_FETCH.name
    assert first.failures > 0
    # Roughly an order of magnitude fewer failures after full migration.
    assert last.failures < first.failures / 5
    # Monotone-ish decline as the migration ramps.
    rates = [week.failure_rate for week in report.weeks]
    assert all(b <= a * 1.25 for a, b in zip(rates, rates[1:]))
