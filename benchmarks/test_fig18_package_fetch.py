"""Figure 18 — Package-fetching failures across a region migration.

A region of machines migrates from IOLatency to IOCost over eight weeks.
Package fetches (a sequential package write plus metadata reads in
``system.slice``, under a saturating main workload) fail when they exceed
their deadline.  Per-machine task durations are *simulated* per controller;
the region Monte Carlo then samples weekly failures as the migration ramps.

Paper shape: roughly 10x fewer package-fetching errors once the region is
fully on IOCost.
"""

import pytest

from repro.analysis.report import Table
from repro.block.device import DeviceSpec
from repro.controllers.iolatency import IOLatencyController
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.qos import QoSParams
from repro.workloads.fleet import (
    PACKAGE_FETCH,
    FleetMigration,
    measure_task_durations,
)

from benchmarks.conftest import run_experiment

FLEET_SPEC = DeviceSpec(
    name="fleetdev",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=500e6,
    write_bw=500e6,
    sigma=0.1,
    nr_slots=64,
)

# Fraction of the region on IOCost per week (two-month staged rollout).
MIGRATION_SCHEDULE = [0.0, 0.05, 0.15, 0.3, 0.5, 0.7, 0.9, 1.0]


def iocost_factory():
    return IOCost(
        LinearCostModel(ModelParams.from_device_spec(FLEET_SPEC)),
        qos=QoSParams(read_lat_target=5e-3, read_pct=90, period=0.05),
    )


def iolatency_factory():
    # Production-tuned for the main workload; system slice unprotected.
    return IOLatencyController({"workload.slice/main": 0.5e-3})


def run_migration():
    old = measure_task_durations(
        FLEET_SPEC, iolatency_factory, PACKAGE_FETCH, samples=10, seed=1
    )
    new = measure_task_durations(
        FLEET_SPEC, iocost_factory, PACKAGE_FETCH, samples=10, seed=1
    )
    fleet = FleetMigration(
        old, new, deadline=PACKAGE_FETCH.deadline,
        machines=3000, tasks_per_machine_week=10, seed=42,
    )
    return fleet.run(MIGRATION_SCHEDULE), old, new


def test_fig18_package_fetch_failures(benchmark):
    reports, old, new = run_experiment(benchmark, run_migration)

    table = Table(
        "Figure 18: package-fetching failures during IOLatency -> IOCost migration",
        ["week", "on iocost", "attempts", "failures", "rate"],
    )
    for report in reports:
        table.add_row(
            report.week,
            f"{report.migrated_fraction:.0%}",
            report.attempts,
            report.failures,
            f"{report.failure_rate:.2%}",
        )
    table.print()
    print(
        f"task duration medians: iolatency={sorted(old)[len(old) // 2]:.1f}s "
        f"iocost={sorted(new)[len(new) // 2]:.1f}s (deadline {PACKAGE_FETCH.deadline}s)"
    )

    first, last = reports[0], reports[-1]
    assert first.failures > 0
    # Roughly an order of magnitude fewer failures after full migration.
    assert last.failures < first.failures / 5
    # Monotone-ish decline as the migration ramps.
    rates = [report.failure_rate for report in reports]
    assert all(b <= a * 1.25 for a, b in zip(rates, rates[1:]))
