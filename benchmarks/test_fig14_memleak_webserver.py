"""Figure 14 — Web-server RPS while stacked with a memory-leak workload.

A production-style web server fills most of memory (partially protected by
memory.low, as in Meta's deployment) while system services leak memory
aggressively.  Reclaim pushes pages to swap through the shared SSD and the
web server's fault path competes with the storm.  Reported per controller
and per SSD generation: steady-state RPS relative to the leak-free
baseline.

Paper shape: bfq and mq-deadline suffer badly, iolatency holds moderately,
iocost keeps the web server above 80% of baseline.
"""

import pytest

from repro.analysis.report import Table
from repro.core.qos import QoSParams
from repro.testbed import Testbed
from repro.workloads.memleak import MemoryLeaker
from repro.workloads.rcbench import WebServer

from benchmarks.conftest import run_experiment

MB = 1024 * 1024
DURATION = 20.0
MEASURE_FROM = 8.0

CONFIGS = [
    ("mq-deadline", {}),
    ("bfq", {}),
    ("iolatency", {"targets": {"workload.slice/web": 10e-3}}),
    ("iocost", {}),
]


def run_once(device, controller_name, with_leak, **controller_kwargs):
    qos = QoSParams(
        read_lat_target=5e-3, read_pct=90, vrate_min=0.4, vrate_max=2.0, period=0.05
    )
    testbed = Testbed(
        device=device,
        controller=controller_name,
        qos=qos,
        mem_bytes=1024 * MB,
        swap_bytes=8192 * MB,
        protected={"workload.slice/web": 320 * MB},
        seed=7,
        **controller_kwargs,
    )
    web_group = testbed.add_cgroup("workload.slice/web", weight=500)
    web = WebServer(
        testbed.sim, testbed.layer, testbed.mm, web_group,
        working_set=640 * MB, load=0.9, workers=8,
        touch_per_request=512 * 1024, stop_at=DURATION,
    ).start()
    if with_leak:
        for index in range(3):
            MemoryLeaker(
                testbed.sim, testbed.layer, testbed.mm,
                testbed.cgroups.lookup("system.slice"),
                rate_bps=1024 * MB, chunk=8 * MB,
                stop_at=DURATION, seed=100 + index,
            ).start()
    testbed.run(DURATION)
    testbed.detach()
    return web.rps_series.mean(MEASURE_FROM, DURATION)


def run_device(device):
    baseline = run_once(device, "iocost", with_leak=False)
    retained = {}
    for name, kwargs in CONFIGS:
        rps = run_once(device, name, with_leak=True, **kwargs)
        retained[name] = rps / baseline
    return retained


def run_all():
    return {device: run_device(device) for device in ("ssd_old", "ssd_new")}


def test_fig14_memleak_webserver(benchmark):
    results = run_experiment(benchmark, run_all)

    table = Table(
        "Figure 14: web-server RPS retained under a memory leak",
        ["controller", "ssd_old", "ssd_new"],
    )
    for name, _ in CONFIGS:
        table.add_row(
            name,
            f"{results['ssd_old'][name]:.0%}",
            f"{results['ssd_new'][name]:.0%}",
        )
    table.print()

    for device in ("ssd_old", "ssd_new"):
        retained = results[device]
        # IOCost keeps the web server above 80% of baseline and at least
        # matches every other mechanism.
        assert retained["iocost"] >= 0.8, device
        for name in ("mq-deadline", "bfq", "iolatency"):
            assert retained["iocost"] >= retained[name] - 0.02, (device, name)
        # BFQ performs worst, with a near-total loss of throughput.
        assert retained["bfq"] < 0.5, device
        assert retained["bfq"] == min(retained.values()), device
    # The old (slow, GC-fragile) SSD is where the unaware mechanisms bleed.
    assert results["ssd_old"]["mq-deadline"] < 0.8
    assert results["ssd_old"]["iolatency"] < 0.8
    # The higher-end SSD softens the pain (more headroom), as in the paper.
    assert results["ssd_new"]["mq-deadline"] >= results["ssd_old"]["mq-deadline"]
