"""Ablation — memory control alone vs memory + IO control (paper §5).

"One initial motivation was to address isolation failures from system
service memory leaks.  Memory control alone was insufficient as memory
limits still resulted in reclaim which interfered with latency-sensitive
applications through IO.  We could achieve comprehensive isolation only by
doing both memory and IO controls together."

The leaker here *is* capped with a memory.max limit, so it can never
displace the web server's memory — yet its cap-induced local-reclaim swap
churn hammers the shared device.  Without IO control the web server's
latency collapses anyway; with IOCost it is protected.
"""

import pytest

from repro.analysis.report import Table
from repro.core.qos import QoSParams
from repro.testbed import Testbed
from repro.workloads.memleak import MemoryLeaker
from repro.workloads.rcbench import WebServer

from benchmarks.conftest import run_experiment

MB = 1024 * 1024
DURATION = 15.0


def run_once(controller_name, with_leak):
    qos = QoSParams(
        read_lat_target=5e-3, read_pct=90, vrate_min=0.4, vrate_max=2.0, period=0.05
    )
    testbed = Testbed(
        device="ssd_old",
        controller=controller_name,
        qos=qos,
        mem_bytes=1024 * MB,
        swap_bytes=8192 * MB,
        seed=31,
    )
    # Memory control IS configured: the leaker is hard-capped.
    testbed.mm.limits["system.slice"] = 128 * MB
    web_group = testbed.add_cgroup("workload.slice/web", weight=500)
    # An IO-heavy latency-sensitive server: several storage reads per
    # request, so device-level interference shows directly in p95/RPS.
    web = WebServer(
        testbed.sim, testbed.layer, testbed.mm, web_group,
        working_set=256 * MB, load=0.9, workers=4,
        touch_per_request=64 * 1024,
        io_reads_per_request=6, io_read_size=32 * 1024,
        stop_at=DURATION,
    ).start()
    if with_leak:
        for index in range(3):
            MemoryLeaker(
                testbed.sim, testbed.layer, testbed.mm,
                testbed.cgroups.lookup("system.slice"),
                rate_bps=1024 * MB, chunk=8 * MB,
                stop_at=DURATION, seed=200 + index,
            ).start()
    testbed.run(DURATION)
    testbed.detach()
    p95 = web.request_percentile(95, last=500)
    return web.rps_series.mean(DURATION / 2, DURATION), p95


def run_all():
    baseline_rps, baseline_p95 = run_once("iocost", with_leak=False)
    results = {"baseline (no leak)": {"retained": 1.0, "p95": baseline_p95}}
    for name in ("none", "iocost"):
        rps, p95 = run_once(name, with_leak=True)
        results[name] = {"retained": rps / baseline_rps, "p95": p95}
    return results


def test_ablation_memory_control_alone(benchmark):
    results = run_experiment(benchmark, run_all)

    table = Table(
        "Ablation: memory.max on the leaker, with and without IO control",
        ["IO control", "web RPS retained", "web p95"],
    )
    for name, row in results.items():
        table.add_row(name, f"{row['retained']:.0%}", f"{row['p95'] * 1e3:.1f}ms")
    table.print()

    # Memory control alone: the capped leaker's reclaim IO still blows up
    # the latency-sensitive service's tail (an order of magnitude over the
    # leak-free baseline).
    assert results["none"]["p95"] > 5 * results["baseline (no leak)"]["p95"]
    # Adding IO control (iocost) cuts the interference tail sharply.
    assert results["none"]["p95"] > 2 * results["iocost"]["p95"]
    assert results["iocost"]["retained"] > 0.9
