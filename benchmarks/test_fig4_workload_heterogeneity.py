"""Figure 4 — IO workload heterogeneity.

Replays the catalogued service profiles (Web A/B, Serverless, Cache A/B,
non-storage) against a fast device and reports the figure's axes: per-second
read vs write bytes and random vs sequential bytes.

Shape anchors: web workloads mix reads/writes about equally random vs
sequential; caches are sequential-heavy; non-storage services do relatively
little explicit IO.
"""

from repro.analysis.report import Table, format_si
from repro.block.device_models import SSD_ENTERPRISE
from repro.testbed import Testbed
from repro.workloads.profiles import MixedWorkload, WORKLOAD_PROFILES

from benchmarks.conftest import run_experiment

DURATION = 2.0


def characterise():
    results = {}
    for name, profile in WORKLOAD_PROFILES.items():
        testbed = Testbed(device=SSD_ENTERPRISE, controller="none", seed=3)
        group = testbed.add_cgroup(f"workload.slice/{name}")
        workload = MixedWorkload(
            testbed.sim, testbed.layer, group, profile, stop_at=DURATION
        ).start()
        testbed.run(DURATION + 0.1)
        reads = sum(
            count for (is_w, _), count in workload.bytes_by_class.items() if not is_w
        )
        writes = sum(
            count for (is_w, _), count in workload.bytes_by_class.items() if is_w
        )
        rand = sum(
            count for (_, seq), count in workload.bytes_by_class.items() if not seq
        )
        seq = sum(
            count for (_, seq), count in workload.bytes_by_class.items() if seq
        )
        results[name] = {
            "read_bps": reads / DURATION,
            "write_bps": writes / DURATION,
            "rand_bps": rand / DURATION,
            "seq_bps": seq / DURATION,
        }
    return results


def test_fig4_workload_heterogeneity(benchmark):
    results = run_experiment(benchmark, characterise)

    table = Table(
        "Figure 4: IO workload heterogeneity (P50 per-second demand)",
        ["workload", "reads", "writes", "random", "sequential"],
    )
    for name, row in results.items():
        table.add_row(
            name,
            format_si(row["read_bps"], "B/s"),
            format_si(row["write_bps"], "B/s"),
            format_si(row["rand_bps"], "B/s"),
            format_si(row["seq_bps"], "B/s"),
        )
    table.print()

    web = results["web_a"]
    cache = results["cache_a"]
    nonstorage = results["nonstorage_a"]
    # Web: random and sequential bytes roughly balanced.
    assert 0.6 < web["rand_bps"] / web["seq_bps"] < 1.6
    # Caches: heavily sequential.
    assert cache["seq_bps"] > 4 * cache["rand_bps"]
    # Non-storage: at least an order of magnitude less total IO than web.
    web_total = web["read_bps"] + web["write_bps"]
    ns_total = nonstorage["read_bps"] + nonstorage["write_bps"]
    assert ns_total < 0.12 * web_total
