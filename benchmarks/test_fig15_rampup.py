"""Figure 15 — Ramp-up time in an overcommitted environment.

ResourceControlBench is PID-ramped from 40% to 80% of its peak load while
keeping p95 request latency under the target; as its load grows, its
resident-memory demand grows and the collocated ``stress`` consumer's
memory must be paged out.  We measure the time to complete the ramp under:

* bfq and iocost without stress (baselines);
* bfq and iocost with stress;
* the paper's own ablation of the §3.5 debt mechanism: swap IO charged to
  the root cgroup (never throttled) and swap IO throttled at the origin
  (priority inversion), both expected slower than production iocost.

Paper shape: iocost ramps ~2x faster than bfq unloaded and ~5x faster with
stress; both broken swap configurations are worse than production iocost.
"""

import pytest

from repro.analysis.report import Table
from repro.core.debt import SwapChargeMode
from repro.core.qos import QoSParams
from repro.testbed import Testbed
from repro.workloads.memleak import StressWorkload
from repro.workloads.pid import LoadRamp
from repro.workloads.rcbench import ResourceControlBench

from benchmarks.conftest import run_experiment

MB = 1024 * 1024
TIMEOUT = 120.0
LATENCY_TARGET = 75e-3


def run_ramp(controller_name, with_stress, swap_mode=SwapChargeMode.DEBT):
    qos = QoSParams(
        read_lat_target=5e-3, read_pct=90, vrate_min=0.4, vrate_max=2.0, period=0.05
    )
    kwargs = {}
    if controller_name == "iocost":
        kwargs["swap_mode"] = swap_mode
    testbed = Testbed(
        device="ssd_old",
        controller=controller_name,
        qos=qos,
        mem_bytes=768 * MB,
        swap_bytes=8192 * MB,
        seed=21,
        **kwargs,
    )
    bench_group = testbed.add_cgroup("workload.slice/rcbench", weight=500)
    # Paging-bound by construction (SS3.4: RCBench "adjusts its working
    # set size until ... paging and swap operations begins to limit
    # performance"): the working set exceeds machine memory.
    bench = ResourceControlBench(
        testbed.sim, testbed.layer, testbed.mm, bench_group,
        peak_rps=600, workers=12,
        working_set=896 * MB, touch_per_request=384 * 1024,
        stop_at=TIMEOUT,
    ).start()
    if with_stress:
        StressWorkload(
            testbed.sim, testbed.layer, testbed.mm,
            testbed.cgroups.lookup("system.slice"),
            working_set=512 * MB, touch_chunk=16 * MB, touch_interval=0.02,
            stop_at=TIMEOUT, seed=22,
        ).start()
    ramp = LoadRamp(
        testbed.sim, bench,
        start_load=0.4, end_load=0.8,
        latency_target=LATENCY_TARGET, interval=0.5,
    ).start()
    testbed.run(TIMEOUT)
    testbed.detach()
    return ramp.ramp_time if ramp.ramp_time is not None else TIMEOUT


def run_all():
    return {
        "iocost (no stress)": run_ramp("iocost", with_stress=False),
        "bfq (no stress)": run_ramp("bfq", with_stress=False),
        "iocost + stress": run_ramp("iocost", with_stress=True),
        "bfq + stress": run_ramp("bfq", with_stress=True),
        "iocost(root-charged) + stress": run_ramp(
            "iocost", with_stress=True, swap_mode=SwapChargeMode.ROOT
        ),
        "iocost(origin-throttled) + stress": run_ramp(
            "iocost", with_stress=True, swap_mode=SwapChargeMode.ORIGIN_THROTTLE
        ),
    }


def test_fig15_rampup(benchmark):
    results = run_experiment(benchmark, run_all)

    table = Table(
        "Figure 15: time to ramp RCBench load 40% -> 80% (p95 < 75ms)",
        ["configuration", "ramp time (s)"],
    )
    for name, value in results.items():
        table.add_row(name, f"{value:.1f}")
    table.print()

    # IOCost ramps faster than bfq, with and without stress.
    assert results["iocost (no stress)"] < results["bfq (no stress)"]
    assert results["iocost + stress"] < results["bfq + stress"]
    # The stress overcommit gap widens the advantage.
    iocost_slowdown = results["iocost + stress"] / results["iocost (no stress)"]
    bfq_slowdown = results["bfq + stress"] / results["bfq (no stress)"]
    assert bfq_slowdown > iocost_slowdown
    # Both broken swap-charging configurations are slower than production.
    assert results["iocost(root-charged) + stress"] > results["iocost + stress"]
    assert results["iocost(origin-throttled) + stress"] > results["iocost + stress"]
