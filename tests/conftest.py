"""Suite-wide pytest wiring: the ``--sanitize`` opt-in.

``pytest --sanitize`` (or ``REPRO_SANITIZE=1``, picked up at import by
:mod:`repro.sanitize`) runs every test with the runtime invariant
checkers on — the sanitizer build of the suite, which is how the CI
sanitize job runs tier-1.

While sanitizing, each test starts from fresh ledgers: the sanitizer
keys its cost/vtime ledgers by ``id(controller)``, and CPython reuses
ids of collected objects, so stale entries from a previous test could
otherwise alias a new controller.
"""

import pytest

from repro.sanitize import SANITIZE


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="enable the repro.sanitize runtime invariant checkers for every test",
    )


def pytest_configure(config):
    if config.getoption("--sanitize"):
        SANITIZE.enable()


@pytest.fixture(autouse=True)
def _sanitize_fresh_ledgers():
    if SANITIZE.enabled:
        SANITIZE.reset()
    yield
