"""Every runtime sanitizer catches its planted violation, and the hooks
in the engine/layer/device/controller actually fire under load."""

import numpy as np
import pytest

from repro.block.bio import Bio, IOOp, reset_bio_ids
from repro.block.device import Device, noise_stream
from repro.block.device_models import SSD_NEW
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.obs.spans import SpanTracker
from repro.obs.trace import TraceRegistry
from repro.sanitize import FINGERPRINT_DRAWS, SANITIZE, SanitizeError, Sanitizer
from repro.sim import Simulator
from repro.testbed import Testbed, make_controller


@pytest.fixture(autouse=True)
def fresh_sanitizer():
    """Each test drives the module singleton from a known-clean state."""
    SANITIZE.reset()
    was = SANITIZE.enabled
    yield
    SANITIZE.enabled = was
    SANITIZE.reset()


class TestLifecycle:
    def test_enable_disable_reset(self):
        san = Sanitizer()
        assert not san.enabled
        san.enable()
        assert san.enabled
        san.check_monotonic(0.0, 1.0)
        assert san.checks["time_monotonic"] == 1
        san.reset()
        assert san.checks["time_monotonic"] == 0 and san.enabled

    def test_context_manager(self):
        san = Sanitizer()
        with san:
            assert san.enabled
        assert not san.enabled

    def test_suspended(self):
        san = Sanitizer().enable()
        with san.suspended():
            assert not san.enabled
        assert san.enabled

    def test_describe_lists_every_check(self):
        san = Sanitizer()
        text = san.describe()
        for name in Sanitizer.CHECKS:
            assert name in text

    def test_snapshot_is_a_copy(self):
        san = Sanitizer()
        snap = san.snapshot()
        snap["time_monotonic"] = 99
        assert san.checks["time_monotonic"] == 0


class TestTimeAndHeap:
    def test_backwards_dispatch_raises(self):
        san = Sanitizer().enable()
        with pytest.raises(SanitizeError, match="time went backwards"):
            san.check_monotonic(now=2.0, event_time=1.0)

    def test_forward_dispatch_passes(self):
        Sanitizer().enable().check_monotonic(now=1.0, event_time=1.0)

    def test_nan_heap_time_raises(self):
        san = Sanitizer().enable()
        with pytest.raises(SanitizeError, match="has time"):
            san.check_heap([(float("nan"), 1, None)], now=0.0)

    def test_past_heap_entry_raises(self):
        san = Sanitizer().enable()
        with pytest.raises(SanitizeError, match="in the past"):
            san.check_heap([(1.0, 1, None)], now=5.0)

    def test_duplicate_seq_raises(self):
        san = Sanitizer().enable()
        with pytest.raises(SanitizeError, match="duplicate heap sequence"):
            san.check_heap([(1.0, 7, None), (2.0, 7, None)], now=0.0)

    def test_broken_heap_shape_raises(self):
        san = Sanitizer().enable()
        with pytest.raises(SanitizeError, match="heap invariant broken"):
            san.check_heap([(5.0, 1, None), (1.0, 2, None)], now=0.0)

    def test_valid_heap_passes(self):
        san = Sanitizer().enable()
        san.check_heap([(1.0, 1, None), (2.0, 2, None), (2.0, 3, None)], now=0.5)

    def test_engine_counts_monotonic_checks(self):
        SANITIZE.enable()
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert SANITIZE.checks["time_monotonic"] == 2

    def test_schedule_bulk_validates_the_heap(self):
        SANITIZE.enable()
        sim = Simulator()
        sim.schedule_bulk([(1.0, lambda: None, ()), (2.0, lambda: None, ())])
        assert SANITIZE.checks["heap_integrity"] == 1

    def test_sanitize_forces_the_step_loop(self):
        # With the sanitizer on, run() must take the checked slow path.
        SANITIZE.enable()
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "a")
        sim.schedule(1.0, order.append, "b")
        sim.run(until=2.0)
        assert order == ["a", "b"] and sim.now == 2.0
        assert SANITIZE.checks["time_monotonic"] == 2


class TestSlotsAndChannels:
    def test_double_release_raises(self):
        san = Sanitizer().enable()
        with pytest.raises(SanitizeError, match="released twice"):
            san.check_slots(-1, 64, "8:0")

    def test_slot_leak_raises(self):
        san = Sanitizer().enable()
        with pytest.raises(SanitizeError, match="slot leak"):
            san.check_slots(65, 64, "8:0")

    def test_channel_double_free_raises(self):
        san = Sanitizer().enable()
        with pytest.raises(SanitizeError, match="freed twice"):
            san.check_channels(-1, 8, "8:0")

    def test_channel_leak_raises(self):
        san = Sanitizer().enable()
        with pytest.raises(SanitizeError, match="channel leak"):
            san.check_channels(9, 8, "8:0")

    def test_layer_and_device_hooks_fire_under_load(self):
        SANITIZE.enable()
        reset_bio_ids()
        sim = Simulator()
        device = Device(sim, SSD_NEW, np.random.default_rng(0))
        layer = BlockLayer(sim, device, make_controller("iocost", SSD_NEW))
        group = CgroupTree().create("t")
        done = []
        for i in range(32):
            layer.submit(Bio(IOOp.READ, 4096, 8 * i, group), on_done=done.append)
        sim.run(until=1.0)
        layer.controller.detach()
        assert len(done) == 32
        # One check per acquire and one per release on both levels.
        assert SANITIZE.checks["slot_conservation"] == 64
        assert SANITIZE.checks["channel_conservation"] == 64


class TestCostConservation:
    def test_balanced_ledger_passes(self):
        san = Sanitizer().enable()
        san.note_incurred(1, 10.0)
        san.note_charged(1, 4.0)
        san.check_conservation(1, pending=6.0, dev="8:0")

    def test_unaccounted_cost_raises(self):
        san = Sanitizer().enable()
        san.note_incurred(1, 10.0)
        san.note_charged(1, 4.0)
        with pytest.raises(SanitizeError, match="cost conservation"):
            san.check_conservation(1, pending=0.0, dev="8:0")

    def test_double_charge_raises(self):
        san = Sanitizer().enable()
        san.note_incurred(1, 10.0)
        san.note_charged(1, 10.0)
        san.note_charged(1, 10.0)
        with pytest.raises(SanitizeError, match="cost conservation"):
            san.check_conservation(1, pending=0.0, dev="8:0")

    def test_controllers_are_ledgered_independently(self):
        san = Sanitizer().enable()
        san.note_incurred(1, 10.0)
        san.note_charged(1, 10.0)
        san.note_incurred(2, 5.0)
        san.check_conservation(1, pending=0.0, dev="8:0")
        with pytest.raises(SanitizeError):
            san.check_conservation(2, pending=0.0, dev="8:16")

    def test_controller_audit_passes_on_real_workload(self):
        SANITIZE.enable()
        bed = Testbed(seed=7)
        ws = bed.add_cgroup("/ws", weight=100)
        bed.paced(ws, rate=2000)
        bed.run(0.5)  # several planning periods
        assert SANITIZE.checks["cost_conservation"] > 0
        assert SANITIZE.checks["vtime_monotonic"] > 0

    def test_planted_leak_is_caught_at_the_next_plan_tick(self):
        SANITIZE.enable()
        bed = Testbed(seed=7)
        ws = bed.add_cgroup("/ws", weight=100)
        bed.paced(ws, rate=1000)
        bed.run(0.2)
        # Plant: cost enters the system but is never charged or queued.
        SANITIZE.note_incurred(id(bed.controller), 123.0)
        with pytest.raises(SanitizeError, match="cost conservation"):
            bed.run(0.2)


class TestVtimeMonotonic:
    def test_decreasing_vtime_raises(self):
        san = Sanitizer().enable()
        san.check_vtime(1, "/ws", 10.0)
        with pytest.raises(SanitizeError, match="moved backwards"):
            san.check_vtime(1, "/ws", 9.0)

    def test_monotone_vtime_passes(self):
        san = Sanitizer().enable()
        san.check_vtime(1, "/ws", 10.0)
        san.check_vtime(1, "/ws", 10.0)
        san.check_vtime(1, "/ws", 11.0)

    def test_groups_are_tracked_independently(self):
        san = Sanitizer().enable()
        san.check_vtime(1, "/a", 10.0)
        san.check_vtime(1, "/b", 5.0)


class TestSpanLeak:
    def test_eviction_is_fail_stop(self):
        registry = TraceRegistry()
        tracker = SpanTracker(max_pending=1).attach(registry)
        SANITIZE.enable()
        submit = registry.point("bio_submit")
        fields = dict(cgroup="/ws", op="read", nbytes=4096, sector=0, flags=0, prio=0)
        submit.emit(0.0, dev="8:0", id=1, **fields)
        with pytest.raises(SanitizeError, match="span leak"):
            submit.emit(1e-6, dev="8:0", id=2, **fields)
        tracker.detach()

    def test_check_spans_flags_evictions(self):
        registry = TraceRegistry()
        tracker = SpanTracker(max_pending=1).attach(registry)
        fields = dict(cgroup="/ws", op="read", nbytes=4096, sector=0, flags=0, prio=0)
        submit = registry.point("bio_submit")
        with SANITIZE.suspended():  # let the eviction happen silently
            submit.emit(0.0, dev="8:0", id=1, **fields)
            submit.emit(1e-6, dev="8:0", id=2, **fields)
        tracker.detach()
        san = Sanitizer().enable()
        with pytest.raises(SanitizeError, match="span leak"):
            san.check_spans(tracker)

    def test_check_spans_require_drained(self):
        registry = TraceRegistry()
        tracker = SpanTracker().attach(registry)
        fields = dict(cgroup="/ws", op="read", nbytes=4096, sector=0, flags=0, prio=0)
        registry.point("bio_submit").emit(0.0, dev="8:0", id=1, **fields)
        tracker.detach()
        san = Sanitizer().enable()
        san.check_spans(tracker)  # open spans fine without the flag
        with pytest.raises(SanitizeError, match="still open"):
            san.check_spans(tracker, require_drained=True)


class TestRngAliasing:
    def test_aliased_labels_raise(self):
        san = Sanitizer().enable()
        seq = np.random.SeedSequence(entropy=1, spawn_key=(2,))
        san.check_stream("device:vda", seq)
        with pytest.raises(SanitizeError, match="aliasing"):
            san.check_stream("device:vdb", seq)

    def test_same_label_recreated_passes(self):
        # Determinism tests re-create the same stream legitimately.
        san = Sanitizer().enable()
        seq = np.random.SeedSequence(entropy=1, spawn_key=(2,))
        san.check_stream("device:vda", seq)
        san.check_stream("device:vda", np.random.SeedSequence(entropy=1, spawn_key=(2,)))

    def test_probe_does_not_consume_the_stream(self):
        san = Sanitizer().enable()
        seq = np.random.SeedSequence(entropy=42, spawn_key=(7,))
        baseline = np.random.default_rng(
            np.random.SeedSequence(entropy=42, spawn_key=(7,))
        ).integers(0, 1 << 32, size=FINGERPRINT_DRAWS)
        san.check_stream("x", seq)
        after = np.random.default_rng(seq).integers(0, 1 << 32, size=FINGERPRINT_DRAWS)
        assert (baseline == after).all()

    def test_testbed_streams_are_distinct(self):
        SANITIZE.enable()
        bed = Testbed(seed=3)
        # Construction already fingerprints the device noise streams.
        before = SANITIZE.checks["rng_fingerprint"]
        bed.rng_for("device:vda")  # re-requested below - simlint: disable=rng-stream-labels
        bed.rng_for("device:vdb")
        bed.rng_for("device:vda")  # same label again: fine
        assert SANITIZE.checks["rng_fingerprint"] == before + 3

    def test_noise_stream_labels_checked(self):
        SANITIZE.enable()
        rng = np.random.default_rng(0)
        noise_stream(rng, "gc_stall")
        noise_stream(rng, "thermal")
        assert SANITIZE.checks["rng_fingerprint"] == 2


class TestZeroCostWhenDisabled:
    def test_disabled_hooks_count_nothing(self):
        # suspended() covers the ambient REPRO_SANITIZE=1 run too.
        with SANITIZE.suspended():
            sim = Simulator()
            sim.schedule(1.0, lambda: None)
            sim.schedule_bulk([(2.0, lambda: None, ())])
            sim.run()
            bed = Testbed(seed=1)
            bed.rng_for("device:vda")
            assert all(count == 0 for count in SANITIZE.snapshot().values())

    def test_components_cache_the_singleton(self):
        sim = Simulator()
        assert sim._san is SANITIZE
        device = Device(sim, SSD_NEW, np.random.default_rng(0))
        layer = BlockLayer(sim, device, make_controller("iocost", SSD_NEW))
        assert device._san is SANITIZE and layer._san is SANITIZE
        assert layer.controller._san is SANITIZE
