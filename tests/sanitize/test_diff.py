"""The differential harness: fast and slow paths must byte-match, and a
divergence must be localized to its first differing trace line."""

import pytest

from repro.sanitize import SANITIZE
from repro.sanitize.__main__ import main
from repro.sanitize.diff import first_divergence, run_diff, run_traced


@pytest.fixture(autouse=True)
def fresh_sanitizer():
    SANITIZE.reset()
    was = SANITIZE.enabled
    yield
    SANITIZE.enabled = was
    SANITIZE.reset()


class TestFirstDivergence:
    def test_identical_is_none(self):
        assert first_divergence("a\nb\n", "a\nb\n") is None

    def test_first_differing_line(self):
        line, fast, slow = first_divergence("a\nb\nc\n", "a\nX\nc\n")
        assert line == 2 and fast == "b" and slow == "X"

    def test_length_mismatch(self):
        line, fast, slow = first_divergence("a\n", "a\nb\n")
        assert line == 2 and fast is None and slow == "b"


class TestRunTraced:
    def test_traces_are_byte_identical(self):
        fast = run_traced(bios=400, depth=16, slow=False)
        slow = run_traced(bios=400, depth=16, slow=True)
        assert fast == slow and fast.count("\n") > 400

    def test_slow_run_counts_sanitize_checks(self):
        run_traced(bios=200, depth=8, slow=True)
        assert SANITIZE.checks["time_monotonic"] > 0
        assert SANITIZE.checks["slot_conservation"] == 400

    def test_fast_run_leaves_instrumentation_off(self):
        # Even when the ambient process is sanitized (REPRO_SANITIZE=1),
        # the fast run must suspend the checkers for its duration — and
        # restore the ambient flag afterwards.
        ambient = SANITIZE.enabled
        run_traced(bios=200, depth=8, slow=False)
        assert all(count == 0 for count in SANITIZE.snapshot().values())
        assert SANITIZE.enabled == ambient

    def test_runs_are_reproducible(self):
        assert run_traced(300, 8, slow=False) == run_traced(300, 8, slow=False)


class TestRunDiff:
    def test_report_shape(self):
        report = run_diff(bios=300, depth=8)
        assert report["identical"] is True
        assert report["bios"] == 300
        assert report["events"] == report["fast_trace"].count("\n")
        assert "divergence" not in report


class TestCli:
    def test_identical_exits_zero(self, capsys):
        assert main(["diff", "--bios", "200", "--depth", "8"]) == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out

    def test_out_writes_traces(self, tmp_path, capsys):
        code = main(
            ["diff", "--bios", "100", "--depth", "8", "--out", str(tmp_path)]
        )
        assert code == 0
        fast = (tmp_path / "fast.jsonl").read_text()
        slow = (tmp_path / "slow.jsonl").read_text()
        assert fast == slow and fast.startswith("{")
