"""Tests for BFQ's slice dynamics: adaptive budgets, time quanta, idling."""

import pytest

from repro.block.bio import Bio, IOOp
from repro.block.device import DeviceSpec
from repro.controllers.bfq import BFQController

from tests.controllers.conftest import ClosedLoop, build_layer

FAST = DeviceSpec(
    name="bfqfast",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=1e9,
    write_bw=1e9,
    sigma=0.0,
    nr_slots=64,
)


class TestAdaptiveBudgets:
    def test_fast_queue_budget_ramps_up(self):
        controller = BFQController()
        sim, layer, tree = build_layer(controller, spec=FAST)
        a = tree.create("a", weight=100)
        b = tree.create("b", weight=100)
        ClosedLoop(sim, layer, a, depth=16, stop_at=2.0, seed=1).start()
        ClosedLoop(sim, layer, b, depth=16, stop_at=2.0, seed=2).start()
        sim.run(until=2.0)
        initial = 100 * BFQController.SECTORS_PER_WEIGHT
        ramped = [q.next_budget for q in controller._queues.values()]
        assert any(budget > initial for budget in ramped)

    def test_budget_capped_at_max(self):
        controller = BFQController()
        sim, layer, tree = build_layer(controller, spec=FAST)
        a = tree.create("a", weight=100)
        ClosedLoop(sim, layer, a, depth=32, stop_at=3.0, seed=1).start()
        sim.run(until=3.0)
        cap = 100 * BFQController.MAX_SECTORS_PER_WEIGHT
        assert controller._queues["a"].next_budget <= cap

    def test_slow_queue_budget_stays_small(self):
        controller = BFQController()
        sim, layer, tree = build_layer(controller, spec=FAST)
        slow = tree.create("slow", weight=100)
        fast = tree.create("fast", weight=100)
        # Slow queue trickles (never exhausts a slice's budget).
        ClosedLoop(sim, layer, slow, depth=1, stop_at=2.0, seed=1).start()
        ClosedLoop(sim, layer, fast, depth=32, stop_at=2.0, seed=2).start()
        sim.run(until=2.0)
        assert (
            controller._queues["slow"].next_budget
            < controller._queues["fast"].next_budget
        )


class TestTimeQuantum:
    def test_slice_deadline_scales_with_weight(self):
        controller = BFQController()
        sim, layer, tree = build_layer(controller, spec=FAST)
        heavy = tree.create("heavy", weight=400)
        light = tree.create("light", weight=100)
        layer.submit(Bio(IOOp.READ, 4096, 1, heavy))
        layer.submit(Bio(IOOp.READ, 4096, 2, light))
        heavy_q = controller._queues["heavy"]
        light_q = controller._queues["light"]
        controller._grant_slice(heavy_q)
        heavy_deadline = heavy_q.slice_deadline - sim.now
        controller._grant_slice(light_q)
        light_deadline = light_q.slice_deadline - sim.now
        assert heavy_deadline == pytest.approx(4 * light_deadline)


class TestIdling:
    def test_idle_window_holds_device_for_active_queue(self):
        controller = BFQController()
        sim, layer, tree = build_layer(controller, spec=FAST)
        a = tree.create("a", weight=100)
        b = tree.create("b", weight=100)
        done = []
        layer.submit(Bio(IOOp.READ, 4096, 1, a)).wait(lambda bio: done.append("a"))
        # b's bio arrives while a's single IO is in flight.
        layer.submit(Bio(IOOp.READ, 4096, 99999, b)).wait(lambda bio: done.append("b"))
        sim.run(until=50e-6)
        # a completes at ~100us; idle window then holds the device for a.
        sim.run(until=150e-6)
        assert done == ["a"]
        assert controller._idle_timer is not None
        # After the idle window expires, b finally runs.
        sim.run(until=0.01)
        assert done == ["a", "b"]

    def test_arrival_during_idle_continues_slice(self):
        controller = BFQController()
        sim, layer, tree = build_layer(controller, spec=FAST)
        a = tree.create("a", weight=100)
        first_done = []
        layer.submit(Bio(IOOp.READ, 4096, 1, a)).wait(first_done.append)
        sim.run(until=110e-6)  # a completed; idle armed
        assert controller._idle_timer is not None
        second_done = []
        layer.submit(Bio(IOOp.READ, 4096, 9, a)).wait(second_done.append)
        assert controller._idle_timer is None  # idle cancelled by arrival
        sim.run(until=300e-6)
        assert second_done
