"""Behavioural tests for the baseline controllers."""

import pytest

from repro.block.bio import Bio, IOOp
from repro.block.device import DeviceSpec
from repro.controllers import (
    BFQController,
    BlkThrottleController,
    IOLatencyController,
    KyberController,
    MQDeadlineController,
    ThrottleLimits,
)

from tests.controllers.conftest import ClosedLoop, build_layer

HDD_LIKE = DeviceSpec(
    name="hddlike",
    parallelism=1,
    srv_rand_read=5e-3,
    srv_seq_read=50e-6,
    srv_rand_write=5e-3,
    srv_seq_write=50e-6,
    read_bw=200e6,
    write_bw=200e6,
    sigma=0.0,
    nr_slots=32,
)


class TestMQDeadline:
    def test_passthrough_throughput(self):
        sim, layer, tree = build_layer(MQDeadlineController())
        group = tree.create("a")
        ClosedLoop(sim, layer, group, stop_at=0.2).start()
        sim.run(until=0.25)
        assert layer.iops_of(group) / 0.2 == pytest.approx(40_000, rel=0.1)

    def test_reads_preferred_over_writes(self):
        sim, layer, tree = build_layer(MQDeadlineController(), spec=HDD_LIKE)
        group = tree.create("a")
        reader = ClosedLoop(sim, layer, group, op=IOOp.READ, depth=8, stop_at=1.0, seed=1).start()
        writer = ClosedLoop(sim, layer, group, op=IOOp.WRITE, depth=8, stop_at=1.0, seed=2).start()
        sim.run(until=1.0)
        # Reads win roughly 2:1 (WRITES_STARVED batching), not total.
        assert reader.completed > writer.completed
        assert writer.completed > 0

    def test_expired_write_jumps_queue(self):
        sim, layer, tree = build_layer(MQDeadlineController(), spec=HDD_LIKE)
        group = tree.create("a")
        # One write sits while a steady read stream arrives.
        write_done = []
        layer.submit(Bio(IOOp.WRITE, 4096, 1, group)).wait(write_done.append)
        ClosedLoop(sim, layer, group, op=IOOp.READ, depth=4, stop_at=7.0, seed=1).start()
        sim.run(until=6.5)
        assert write_done  # dispatched within WRITE_EXPIRE + service slack

    def test_no_cgroup_fairness(self):
        sim, layer, tree = build_layer(MQDeadlineController())
        a = tree.create("a", weight=200)
        b = tree.create("b", weight=100)
        la = ClosedLoop(sim, layer, a, depth=16, stop_at=0.3, seed=1).start()
        lb = ClosedLoop(sim, layer, b, depth=16, stop_at=0.3, seed=2).start()
        sim.run(until=0.3)
        # Weights are ignored: equal queue depths get ~equal service.
        assert la.completed / lb.completed == pytest.approx(1.0, rel=0.15)


class TestKyber:
    def test_near_zero_overhead_throughput(self):
        sim, layer, tree = build_layer(KyberController())
        group = tree.create("a")
        ClosedLoop(sim, layer, group, stop_at=0.2).start()
        sim.run(until=0.25)
        assert layer.iops_of(group) / 0.2 == pytest.approx(40_000, rel=0.05)

    def test_write_depth_shrinks_under_read_latency_pressure(self):
        # Saturate a slow device with writes; read p99 violations shrink
        # the write domain's depth.
        spec = DeviceSpec(
            name="slow",
            parallelism=2,
            srv_rand_read=2e-3,
            srv_seq_read=2e-3,
            srv_rand_write=2e-3,
            srv_seq_write=2e-3,
            read_bw=1e9,
            write_bw=1e9,
            sigma=0.0,
            nr_slots=64,
        )
        controller = KyberController()
        sim, layer, tree = build_layer(controller, spec=spec)
        group = tree.create("a")
        ClosedLoop(sim, layer, group, op=IOOp.READ, depth=32, stop_at=2.0, seed=1).start()
        ClosedLoop(sim, layer, group, op=IOOp.WRITE, depth=32, stop_at=2.0, seed=2).start()
        initial_write_depth = spec.nr_slots // 4
        sim.run(until=2.0)
        assert controller._write_depth < initial_write_depth


class TestBlkThrottle:
    def test_iops_limit_enforced(self):
        controller = BlkThrottleController({"a": ThrottleLimits(riops=5000)})
        sim, layer, tree = build_layer(controller)
        group = tree.create("a")
        ClosedLoop(sim, layer, group, stop_at=0.5).start()
        sim.run(until=0.55)
        achieved = layer.iops_of(group) / 0.5
        assert achieved == pytest.approx(5000, rel=0.1)

    def test_bps_limit_enforced(self):
        controller = BlkThrottleController({"a": ThrottleLimits(wbps=10e6)})
        sim, layer, tree = build_layer(controller)
        group = tree.create("a")
        ClosedLoop(sim, layer, group, op=IOOp.WRITE, size=65536, stop_at=0.5).start()
        sim.run(until=0.55)
        achieved_bps = layer.bytes_by_cgroup["a"] / 0.5
        assert achieved_bps == pytest.approx(10e6, rel=0.15)

    def test_unlimited_group_passes_through(self):
        controller = BlkThrottleController()
        sim, layer, tree = build_layer(controller)
        group = tree.create("free")
        ClosedLoop(sim, layer, group, stop_at=0.2).start()
        sim.run(until=0.25)
        assert layer.iops_of(group) / 0.2 == pytest.approx(40_000, rel=0.1)

    def test_not_work_conserving(self):
        # One group limited to 2K IOPS; a second limited group stays at its
        # own limit even though the device has spare capacity.
        controller = BlkThrottleController(
            {"a": ThrottleLimits(riops=2000), "b": ThrottleLimits(riops=4000)}
        )
        sim, layer, tree = build_layer(controller)
        a = tree.create("a")
        b = tree.create("b")
        ClosedLoop(sim, layer, a, stop_at=0.5, seed=1).start()
        ClosedLoop(sim, layer, b, stop_at=0.5, seed=2).start()
        sim.run(until=0.55)
        # Device can do 40K; the groups stay pinned at 2K and 4K.
        assert layer.iops_of(a) / 0.5 == pytest.approx(2000, rel=0.1)
        assert layer.iops_of(b) / 0.5 == pytest.approx(4000, rel=0.1)

    def test_set_limits_online(self):
        controller = BlkThrottleController()
        sim, layer, tree = build_layer(controller)
        group = tree.create("a")
        controller.set_limits("a", ThrottleLimits(riops=1000))
        ClosedLoop(sim, layer, group, stop_at=0.5).start()
        sim.run(until=0.55)
        assert layer.iops_of(group) / 0.5 == pytest.approx(1000, rel=0.15)


class TestBFQ:
    def test_sector_proportional_sequential(self):
        # Both sequential: 2:1 weights give ~2:1 throughput (Fig 12 seq/seq).
        sim, layer, tree = build_layer(BFQController(), spec=HDD_LIKE)
        high = tree.create("high", weight=200)
        low = tree.create("low", weight=100)
        lh = ClosedLoop(sim, layer, high, sequential=True, depth=8, stop_at=5.0, seed=1).start()
        ll = ClosedLoop(sim, layer, low, sequential=True, depth=8, stop_at=5.0, seed=2).start()
        sim.run(until=5.0)
        assert lh.completed / ll.completed == pytest.approx(2.0, rel=0.2)

    def test_random_over_allocated_vs_sequential(self):
        # Fig 12 rand/seq: sector fairness hands the random workload far
        # more device *time* on a seek-bound disk.  With 2:1 weights for
        # the random group, the sequential group gets a tiny fraction of
        # its standalone throughput.
        sim, layer, tree = build_layer(BFQController(), spec=HDD_LIKE)
        rand = tree.create("rand", weight=200)
        seq = tree.create("seq", weight=100)
        ClosedLoop(sim, layer, rand, sequential=False, depth=8, stop_at=10.0, seed=1).start()
        lseq = ClosedLoop(sim, layer, seq, sequential=True, depth=8, stop_at=10.0, seed=2).start()
        sim.run(until=10.0)
        seq_alone_rate = 1 / 50e-6  # 20K IOPS standalone
        seq_share = (lseq.completed / 10.0) / seq_alone_rate
        # The sequential group holds only a third of the device *time*
        # (weights 2:1 favour the random group), so it delivers well under
        # its standalone throughput while the random group burns most of
        # the disk's time on seeks.
        assert seq_share < 0.35

    def test_exclusive_slices_inflate_other_groups_latency(self):
        sim, layer, tree = build_layer(BFQController(), spec=HDD_LIKE)
        a = tree.create("a", weight=100)
        b = tree.create("b", weight=100)
        la = ClosedLoop(sim, layer, a, sequential=True, depth=4, stop_at=5.0, seed=1).start()
        lb = ClosedLoop(sim, layer, b, sequential=True, depth=4, stop_at=5.0, seed=2).start()
        sim.run(until=5.0)
        # Whole-slice waits show up as a huge latency tail: while b's
        # multi-MB slice runs, a's requests sit for many milliseconds.
        assert max(la.latencies) > 100 * 50e-6
        lat = sorted(la.latencies)
        p50 = lat[len(lat) // 2]
        assert max(la.latencies) > 20 * p50  # wide swings, not uniform slowness

    def test_work_conserving_when_one_queue_empties(self):
        sim, layer, tree = build_layer(BFQController())
        a = tree.create("a", weight=100)
        tree.create("b", weight=100)
        la = ClosedLoop(sim, layer, a, depth=16, stop_at=0.3, seed=1).start()
        sim.run(until=0.35)
        assert la.completed / 0.3 == pytest.approx(40_000, rel=0.15)


class TestIOLatency:
    def test_protected_group_throttles_unprotected(self):
        spec = DeviceSpec(
            name="mid",
            parallelism=2,
            srv_rand_read=200e-6,
            srv_seq_read=200e-6,
            srv_rand_write=200e-6,
            srv_seq_write=200e-6,
            read_bw=1e9,
            write_bw=1e9,
            sigma=0.0,
            nr_slots=64,
        )
        controller = IOLatencyController({"prot": 1e-3})
        sim, layer, tree = build_layer(controller, spec=spec)
        prot = tree.create("prot")
        noisy = tree.create("noisy")
        lp = ClosedLoop(sim, layer, prot, depth=2, stop_at=3.0, seed=1).start()
        ln = ClosedLoop(sim, layer, noisy, depth=32, stop_at=3.0, seed=2).start()
        sim.run(until=3.0)
        # The noisy group's depth must have been scaled down.
        assert controller._groups["noisy"].depth < 32
        # And the protected group gets decent service despite depth-32 noise.
        assert lp.completed > 0.25 * ln.completed

    def test_no_proportional_control_for_equal_targets(self):
        # Two groups with equal targets: nothing arbitrates between them
        # (the Figure 10 failure) — they share roughly equally regardless
        # of any intended 2:1 split.
        controller = IOLatencyController({"a": 5e-3, "b": 5e-3})
        sim, layer, tree = build_layer(controller)
        a = tree.create("a", weight=200)
        b = tree.create("b", weight=100)
        la = ClosedLoop(sim, layer, a, depth=16, stop_at=0.5, seed=1).start()
        lb = ClosedLoop(sim, layer, b, depth=16, stop_at=0.5, seed=2).start()
        sim.run(until=0.5)
        assert la.completed / lb.completed == pytest.approx(1.0, rel=0.2)

    def test_depths_recover_when_pressure_ends(self):
        controller = IOLatencyController({"prot": 1e-3})
        sim, layer, tree = build_layer(controller)
        prot = tree.create("prot")
        noisy = tree.create("noisy")
        ClosedLoop(sim, layer, prot, depth=8, stop_at=0.2, seed=1).start()
        ClosedLoop(sim, layer, noisy, depth=8, stop_at=0.2, seed=2).start()
        sim.run(until=1.0)  # long quiet tail
        assert controller._groups["noisy"].depth == layer.device.spec.nr_slots


class TestBlkThrottleLargeBios:
    def test_bios_larger_than_burst_flow_at_limit(self):
        # 1 MiB bios under a 10 MB/s cap: the bucket must carry negative
        # tokens rather than deadlock on a bio bigger than its burst.
        controller = BlkThrottleController({"a": ThrottleLimits(wbps=10e6)})
        sim, layer, tree = build_layer(controller)
        group = tree.create("a")
        ClosedLoop(
            sim, layer, group, op=IOOp.WRITE, size=1 << 20, depth=4, stop_at=2.0
        ).start()
        sim.run(until=2.2)
        achieved_bps = layer.bytes_by_cgroup["a"] / 2.0
        assert achieved_bps == pytest.approx(10e6, rel=0.15)
        assert layer.completed_ios > 10
