"""Tests for the stacked gate + scheduler configuration."""

import numpy as np
import pytest

from repro.block.bio import Bio, BioFlags, IOOp
from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.controllers.mq_deadline import MQDeadlineController
from repro.controllers.stacked import StackedController
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.qos import QoSParams
from repro.sim import Simulator
from repro.workloads.synthetic import ClosedLoopWorkload

SPEC = DeviceSpec(
    name="stackdev",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=1e9,
    write_bw=1e9,
    sigma=0.0,
    nr_slots=64,
)

FIXED = QoSParams(
    read_lat_target=None, write_lat_target=None,
    vrate_min=1.0, vrate_max=1.0, period=0.025,
)


def make_stacked():
    sim = Simulator()
    device = Device(sim, SPEC, np.random.default_rng(0))
    gate = IOCost(LinearCostModel(ModelParams.from_device_spec(SPEC)), qos=FIXED)
    controller = StackedController(gate, MQDeadlineController())
    layer = BlockLayer(sim, device, controller)
    return sim, layer, controller, CgroupTree()


def test_features_combine():
    gate = IOCost(
        LinearCostModel(
            ModelParams(rbps=1e9, rseqiops=1e5, rrandiops=1e5,
                        wbps=1e9, wseqiops=1e5, wrandiops=1e5)
        )
    )
    stacked = StackedController(gate, MQDeadlineController())
    assert stacked.features.proportional_fairness == "yes"
    assert stacked.features.memory_management_aware == "yes"
    assert stacked.features.low_overhead == "yes"
    assert stacked.issue_overhead > gate.issue_overhead


def test_stack_preserves_proportionality():
    sim, layer, controller, tree = make_stacked()
    high = tree.create("high", weight=200)
    low = tree.create("low", weight=100)
    ClosedLoopWorkload(sim, layer, high, depth=16, stop_at=0.5, seed=1).start()
    ClosedLoopWorkload(sim, layer, low, depth=16, stop_at=0.5, seed=2).start()
    sim.run(until=0.5)
    controller.detach()
    ratio = layer.completed_by_cgroup["high"] / layer.completed_by_cgroup["low"]
    assert ratio == pytest.approx(2.0, rel=0.15)


def test_scheduler_orders_within_the_gated_stream():
    # Reads and writes from one cgroup: the gate passes both at full
    # budget; mq-deadline below still prefers reads.
    sim, layer, controller, tree = make_stacked()
    group = tree.create("g")
    reader = ClosedLoopWorkload(
        sim, layer, group, op=IOOp.READ, depth=16, stop_at=0.3, seed=1
    ).start()
    writer = ClosedLoopWorkload(
        sim, layer, group, op=IOOp.WRITE, depth=16, stop_at=0.3, seed=2
    ).start()
    sim.run(until=0.3)
    controller.detach()
    assert reader.completed > writer.completed


def test_debt_hook_reaches_gate():
    sim, layer, controller, tree = make_stacked()
    group = tree.create("leaker", weight=25)
    other = tree.create("other", weight=500)
    ClosedLoopWorkload(sim, layer, other, depth=16, stop_at=0.3, seed=3).start()
    for index in range(400):
        layer.submit(Bio(IOOp.WRITE, 4096, index * 8, group, flags=BioFlags.SWAP))
    sim.run(until=0.05)
    assert controller.userspace_delay(group) > 0
    controller.detach()


def test_detach_tears_down_both():
    sim, layer, controller, tree = make_stacked()
    group = tree.create("g")
    layer.submit(Bio(IOOp.READ, 4096, 8, group))
    sim.run(until=0.05)
    controller.detach()
    ticks = len(controller.gate.vrate_ctl.vrate_series)
    sim.run(until=0.5)
    assert len(controller.gate.vrate_ctl.vrate_series) == ticks
