"""Table 1 capability metadata checks for every mechanism."""

import pytest

from repro.controllers import CONTROLLER_CLASSES, TABLE1_CONTROLLERS
from repro.controllers.base import Features


def test_registry_contains_all_mechanisms():
    assert set(CONTROLLER_CLASSES) == {
        "none",
        "kyber",
        "mq-deadline",
        "blk-throttle",
        "bfq",
        "iolatency",
        "iocost",
    }


def test_table1_roster_matches_paper_rows():
    names = [cls.name for cls in TABLE1_CONTROLLERS]
    assert names == [
        "kyber",
        "mq-deadline",
        "blk-throttle",
        "bfq",
        "iolatency",
        "iocost",
    ]


# The paper's Table 1, row by row (✓ = yes, ✗ = no, ~ = partial).
PAPER_TABLE1 = {
    "kyber": ("yes", "yes", "no", "no", "no"),
    "mq-deadline": ("yes", "yes", "no", "no", "no"),
    "blk-throttle": ("partial", "no", "no", "no", "yes"),
    "bfq": ("no", "yes", "no", "yes", "yes"),
    "iolatency": ("yes", "partial", "yes", "no", "yes"),
    "iocost": ("yes", "yes", "yes", "yes", "yes"),
}


@pytest.mark.parametrize("name,expected", PAPER_TABLE1.items())
def test_feature_flags_match_paper(name, expected):
    features = CONTROLLER_CLASSES[name].features
    assert (
        features.low_overhead,
        features.work_conserving,
        features.memory_management_aware,
        features.proportional_fairness,
        features.cgroup_control,
    ) == expected


def test_only_iocost_has_every_feature():
    full = [
        name
        for name, cls in CONTROLLER_CLASSES.items()
        if name != "none"
        and all(
            value == "yes"
            for value in (
                cls.features.low_overhead,
                cls.features.work_conserving,
                cls.features.memory_management_aware,
                cls.features.proportional_fairness,
                cls.features.cgroup_control,
            )
        )
    ]
    assert full == ["iocost"]


def test_features_validate_values():
    with pytest.raises(ValueError):
        Features("yes", "yes", "yes", "yes", "maybe")


def test_bfq_overhead_dominates():
    overheads = {
        name: cls.issue_overhead for name, cls in CONTROLLER_CLASSES.items()
    }
    assert overheads["bfq"] == max(overheads.values())
    assert overheads["none"] == 0.0
    # kyber is indistinguishable from none (Fig 9).
    assert overheads["kyber"] < 0.1e-6
