"""Shared fixtures and helpers for controller tests."""

import numpy as np
import pytest

from repro.block.bio import Bio, IOOp
from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.sim import Simulator

# Deterministic 40K-IOPS reference device.
FAST_SPEC = DeviceSpec(
    name="fast",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=1e9,
    write_bw=1e9,
    sigma=0.0,
    nr_slots=64,
)


def build_layer(controller, spec=FAST_SPEC, seed=0):
    sim = Simulator()
    device = Device(sim, spec, np.random.default_rng(seed))
    layer = BlockLayer(sim, device, controller)
    tree = CgroupTree()
    return sim, layer, tree


class ClosedLoop:
    """Closed-loop generator keeping ``depth`` IOs outstanding."""

    def __init__(self, sim, layer, cgroup, op=IOOp.READ, size=4096,
                 depth=16, stop_at=None, sequential=False, seed=1):
        self.sim = sim
        self.layer = layer
        self.cgroup = cgroup
        self.op = op
        self.size = size
        self.depth = depth
        self.stop_at = stop_at
        self.sequential = sequential
        self.rng = np.random.default_rng(seed)
        self.next_sector = int(self.rng.integers(0, 1 << 20)) * 8
        self.completed = 0
        self.latencies = []

    def start(self):
        for _ in range(self.depth):
            self._issue()
        return self

    def _sector(self):
        if self.sequential:
            sector = self.next_sector
            self.next_sector += self.size // 512
            return sector
        return int(self.rng.integers(1, 1 << 28)) * 8

    def _issue(self):
        bio = Bio(self.op, self.size, self._sector(), self.cgroup)
        self.layer.submit(bio).wait(self._done)

    def _done(self, bio):
        self.completed += 1
        self.latencies.append(bio.latency)
        if self.stop_at is None or self.sim.now < self.stop_at:
            self._issue()


@pytest.fixture
def fast_spec():
    return FAST_SPEC
