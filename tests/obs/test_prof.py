"""The deterministic engine self-profiler (repro.obs.prof)."""

from collections import deque

import numpy as np
import pytest

from repro.block.bio import Bio, IOOp
from repro.block.device import Device
from repro.block.device_models import SSD_NEW
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.obs.prof import PROF, SimProfiler
from repro.obs.trace import TRACE
from repro.sim import Simulator
from repro.testbed import make_controller

BIOS = 500
DEPTH = 16


@pytest.fixture(autouse=True)
def clean_profiler():
    """PROF is process-global; never leak state across tests."""
    PROF.disable().reset()
    yield
    PROF.disable().reset()


def run_rig(bios=BIOS):
    """Small deterministic closed-loop run; returns the layer."""
    sim = Simulator()
    device = Device(sim, SSD_NEW, np.random.default_rng(0))
    controller = make_controller("iocost", SSD_NEW)
    layer = BlockLayer(sim, device, controller)
    group = CgroupTree().create("prof")
    rng = np.random.default_rng(1)

    def worker():
        issued = 0
        signals = deque()
        while issued < bios or signals:
            while issued < bios and len(signals) < DEPTH:
                sector = int(rng.integers(0, 1 << 30)) * 8
                signals.append(layer.submit(Bio(IOOp.READ, 4096, sector, group)))
                issued += 1
            signal = signals.popleft()
            if not signal.fired:
                yield signal
        controller.detach()

    sim.process(worker(), name="prof-rig")
    sim.run()
    return layer


class TestLifecycle:
    def test_disabled_by_default_and_counts_nothing(self):
        run_rig(bios=50)
        assert PROF.total_checks == 0
        assert PROF.snapshot()["bios_completed"] == 0

    def test_context_manager_enables_and_disables(self):
        with PROF as prof:
            assert prof.enabled
        assert not PROF.enabled

    def test_reset_zeroes_counters_not_flag(self):
        PROF.enable()
        PROF.bios_submitted = 7
        PROF.note_emit("bio_submit")
        PROF.reset()
        assert PROF.enabled
        assert PROF.bios_submitted == 0
        assert PROF.emits_by_point == {}


class TestCounting:
    def test_counts_engine_work(self):
        with PROF:
            run_rig()
        snap = PROF.snapshot()
        assert snap["bios_submitted"] == BIOS
        assert snap["bios_issued"] == BIOS
        assert snap["bios_completed"] == BIOS
        # Every bio needs at least one device-completion event, plus the
        # worker wake-ups and controller timers.
        assert snap["events_dispatched"] >= BIOS
        assert snap["heap_pushes"] >= snap["events_dispatched"]
        assert snap["heap_pops"] >= snap["events_dispatched"]
        assert snap["pump_calls"] >= BIOS  # one per submit at minimum

    def test_deterministic_across_runs(self):
        with PROF:
            run_rig()
        first = PROF.snapshot()
        PROF.reset()
        with PROF:
            run_rig()
        assert PROF.snapshot() == first

    def test_emits_counted_when_tracing_enabled(self):
        events = []
        subscription = TRACE.subscribe(events.append)
        try:
            with PROF:
                run_rig(bios=50)
        finally:
            subscription.close()
        emitted = sum(PROF.emits_by_point.values())
        assert emitted == len(events)
        assert PROF.emits_by_point["bio_submit"] == 50
        # Emissions are not part of total_checks (separate guard flag).
        assert PROF.total_checks == sum(
            PROF.snapshot()[name] for name in SimProfiler.COUNTERS
        )

    def test_no_emit_counts_while_tracing_disabled(self):
        with PROF:
            run_rig(bios=50)
        assert PROF.emits_by_point == {}


class TestReporting:
    def test_per_bio_amplification(self):
        with PROF:
            run_rig()
        per_bio = PROF.per_bio()
        assert per_bio is not None
        assert per_bio["bios_submitted"] == pytest.approx(1.0)
        assert per_bio["events_dispatched"] >= 1.0
        assert "bios_completed" not in per_bio

    def test_per_bio_none_when_idle(self):
        assert PROF.per_bio() is None

    def test_describe_lists_counters(self):
        with PROF:
            run_rig(bios=50)
        text = PROF.describe()
        assert "bios_completed=50" in text
        assert "heap_pushes=" in text

    def test_snapshot_is_json_able(self):
        import json

        with PROF:
            run_rig(bios=50)
        assert json.loads(json.dumps(PROF.snapshot()))["bios_submitted"] == 50

    def test_profiling_does_not_change_results(self):
        baseline = run_rig()
        events_off = baseline.sim.events_processed
        with PROF:
            tracked = run_rig()
        assert tracked.sim.events_processed == events_off
        assert tracked.completed_bytes == baseline.completed_bytes
