"""Chrome trace-event export of bio spans (repro.obs.timeline)."""

import io
import json

import pytest

from repro.obs.spans import QUEUE_WAIT, SERVICE, THROTTLE_PREFIX, Annotation, Span
from repro.obs.timeline import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def make_span(bio_id=1, cgroup="/ws", dev="8:0", submit=0, issue=30, complete=100,
              stages=None, annotations=()):
    if stages is None:
        stages = ((QUEUE_WAIT, issue - submit), (SERVICE, complete - issue))
    return Span(
        dev=dev, bio_id=bio_id, cgroup=cgroup, op="read", nbytes=4096,
        submit_usec=submit, issue_usec=issue, complete_usec=complete,
        stages=tuple(stages), annotations=tuple(annotations),
    )


class TestExport:
    def test_stages_tile_the_span(self):
        span = make_span(
            stages=((QUEUE_WAIT, 10), (THROTTLE_PREFIX + "iocost", 20),
                    (SERVICE, 70)),
        )
        trace = to_chrome_trace([span])
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert [s["name"] for s in slices] == [
            QUEUE_WAIT, THROTTLE_PREFIX + "iocost", SERVICE,
        ]
        # Slices are back-to-back and cover submit..complete exactly.
        cursor = span.submit_usec
        for piece in slices:
            assert piece["ts"] == cursor
            cursor += piece["dur"]
        assert cursor == span.complete_usec

    def test_track_layout_pid_per_cgroup_tid_per_dev(self):
        spans = [
            make_span(bio_id=1, cgroup="/a", dev="8:0"),
            make_span(bio_id=2, cgroup="/b", dev="8:16"),
        ]
        trace = to_chrome_trace(spans)
        process_names = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert sorted(process_names.values()) == ["/a", "/b"]
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        pids = {e["pid"] for e in slices}
        tids = {e["tid"] for e in slices}
        assert len(pids) == 2 and len(tids) == 2
        thread_names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert thread_names == {"dev 8:0", "dev 8:16"}

    def test_annotations_become_instants(self):
        span = make_span(
            annotations=(Annotation(time_usec=5, event="debt_pay",
                                    detail="kind=charge amount=1"),),
        )
        trace = to_chrome_trace([span])
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "debt_pay"
        assert instants[0]["ts"] == 5
        assert instants[0]["s"] == "t"

    def test_args_carry_bio_identity(self):
        trace = to_chrome_trace([make_span(bio_id=42)])
        piece = next(e for e in trace["traceEvents"] if e["ph"] == "X")
        assert piece["args"]["bio"] == 42
        assert piece["args"]["op"] == "read"
        assert piece["args"]["nbytes"] == 4096

    def test_empty_span_list(self):
        trace = to_chrome_trace([])
        assert trace["traceEvents"] == []
        assert validate_chrome_trace(trace) == (0, 0)


class TestRoundTrip:
    def test_write_is_json_loadable_and_valid(self):
        spans = [
            make_span(bio_id=i, submit=i * 10, issue=i * 10 + 3,
                      complete=i * 10 + 50)
            for i in range(5)
        ]
        stream = io.StringIO()
        count = write_chrome_trace(spans, stream)
        loaded = json.loads(stream.getvalue())
        assert len(loaded["traceEvents"]) == count
        slices, instants = validate_chrome_trace(loaded)
        assert slices == 10  # 2 stages x 5 spans
        assert instants == 0
        assert loaded["displayTimeUnit"] == "ms"


class TestValidation:
    def test_rejects_missing_container(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({})

    def test_rejects_non_list(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": "nope"})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "Z", "pid": 1, "name": "x"}]}
            )

    def test_rejects_slice_without_duration(self):
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "pid": 1, "name": "x", "ts": 0}]}
            )

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [
                    {"ph": "X", "pid": 1, "name": "x", "ts": 0, "dur": -1}
                ]}
            )
