"""Tests for counters, gauges, the log-bucketed histogram, and the shim."""

import numpy as np
import pytest

from repro.analysis import stats
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    exact_percentile,
)


class TestCounterGauge:
    def test_counter_increments(self):
        counter = Counter("ios")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge("vrate", 1.0)
        gauge.set(0.5)
        gauge.set(1.25)
        assert gauge.value == 1.25


class TestHistogram:
    def test_exact_aggregates(self):
        histogram = Histogram(resolution=0.02)
        samples = [1.0, 2.0, 3.0, 4.0]
        histogram.record_many(samples)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(10.0)
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.mean == pytest.approx(2.5)

    def test_percentiles_within_resolution_of_exact(self):
        """Every percentile lands within one relative bucket of ground truth."""
        rng = np.random.default_rng(42)
        samples = list(rng.lognormal(mean=-7.0, sigma=1.0, size=20_000))
        histogram = Histogram(resolution=0.02)
        histogram.record_many(samples)
        for pct in (1, 10, 50, 90, 95, 99, 99.9):
            exact = exact_percentile(samples, pct)
            approx = histogram.percentile(pct)
            assert approx == pytest.approx(exact, rel=0.021), pct

    def test_extremes_are_exact(self):
        histogram = Histogram()
        histogram.record_many([3e-3, 5e-3, 7e-3])
        assert histogram.percentile(100) == 7e-3
        assert histogram.percentile(0) <= 3e-3 * 1.02

    def test_zero_and_negative_samples(self):
        histogram = Histogram()
        histogram.record_many([0.0, 0.0, 0.0, 1.0])
        assert histogram.count == 4
        assert histogram.p50 == 0.0
        assert histogram.percentile(100) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(50)
        with pytest.raises(ValueError):
            _ = Histogram().mean

    def test_bad_resolution(self):
        with pytest.raises(ValueError):
            Histogram(resolution=0.0)
        with pytest.raises(ValueError):
            Histogram(resolution=1.5)

    def test_summary_shape(self):
        histogram = Histogram("lat")
        assert histogram.summary() == {
            "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0
        }
        histogram.record(2e-3)
        summary = histogram.summary()
        assert summary["count"] == 1
        assert summary["max"] == 2e-3


class TestHistogramSerialization:
    def test_round_trip_preserves_everything(self):
        rng = np.random.default_rng(9)
        histogram = Histogram("lat", resolution=0.02)
        histogram.record_many(rng.lognormal(-6, 1, 500))
        clone = Histogram.from_dict(histogram.to_dict(), name="lat")
        assert clone.to_dict() == histogram.to_dict()
        assert clone.count == histogram.count
        for pct in (50, 95, 99):
            assert clone.percentile(pct) == histogram.percentile(pct)

    def test_empty_round_trip(self):
        clone = Histogram.from_dict(Histogram(resolution=0.05).to_dict())
        assert clone.count == 0
        assert clone.resolution == 0.05

    def test_round_tripped_histograms_merge(self):
        # The fleet rollup's whole pipeline: record on the host, serialize
        # into result.json, deserialize in the aggregator, merge.
        a, b = Histogram(resolution=0.02), Histogram(resolution=0.02)
        a.record_many([1e-3] * 10)
        b.record_many([4e-3] * 30)
        merged = Histogram.from_dict(a.to_dict())
        merged.merge(Histogram.from_dict(b.to_dict()))
        assert merged.count == 40
        assert merged.min == 1e-3
        assert merged.max == 4e-3
        assert merged.percentile(99) == pytest.approx(4e-3, rel=0.021)


class TestRegistry:
    def test_metrics_are_memoised(self):
        registry = MetricRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_as_dict_flattens(self):
        registry = MetricRegistry()
        registry.counter("ios").inc(7)
        registry.gauge("vrate").set(1.5)
        registry.histogram("lat").record(1e-3)
        snapshot = registry.as_dict()
        assert snapshot["ios"] == 7
        assert snapshot["vrate"] == 1.5
        assert snapshot["lat"]["count"] == 1


class TestStatsShim:
    """repro.analysis.stats.percentile must keep its exact legacy behaviour."""

    def test_delegates_to_exact_percentile(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        for pct in (0, 20, 50, 90, 100):
            assert stats.percentile(samples, pct) == exact_percentile(samples, pct)

    def test_legacy_nearest_rank_values(self):
        assert stats.percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0
        assert stats.percentile([1.0, 2.0, 3.0, 4.0], 0) == 1.0
        assert stats.percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0

    def test_legacy_errors_preserved(self):
        with pytest.raises(ValueError):
            stats.percentile([], 50)
        with pytest.raises(ValueError):
            stats.percentile([1.0], 101)
