"""Bio-lifecycle spans: stitching, stage attribution, breakdown rollups."""

import pytest

from repro.block.device_models import SSD_NEW
from repro.controllers.blk_throttle import BlkThrottleController, ThrottleLimits
from repro.controllers.mq_deadline import MQDeadlineController
from repro.controllers.stacked import StackedController
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.qos import QoSParams
from repro.obs.spans import (
    QUEUE_WAIT,
    SERVICE,
    THROTTLE_PREFIX,
    Span,
    SpanError,
    SpanTracker,
    spans_to_jsonl,
)
from repro.obs.trace import TRACE, TraceRegistry
from repro.testbed import Testbed

USEC = 1e-6


def make_registry() -> TraceRegistry:
    """A private registry so synthetic emission can't leak into TRACE."""
    return TraceRegistry()


def bio_fields(bio_id, cgroup="/ws", dev="8:0", op="read", nbytes=4096):
    return {"dev": dev, "id": bio_id, "cgroup": cgroup, "op": op, "nbytes": nbytes}


def emit_lifecycle(
    registry,
    bio_id,
    submit,
    issue,
    complete,
    throttles=(),
    cgroup="/ws",
    dev="8:0",
):
    """Drive one bio's four lifecycle events at explicit times."""
    base = bio_fields(bio_id, cgroup=cgroup, dev=dev)
    registry.point("bio_submit").emit(submit, **base, sector=0, flags=0, prio=0)
    for time, ctl in throttles:
        registry.point("bio_throttle").emit(time, **base, reason="budget", ctl=ctl)
    registry.point("bio_issue").emit(issue, **base, wait=issue - submit)
    registry.point("bio_complete").emit(
        complete,
        **base,
        sector=0,
        flags=0,
        prio=0,
        submit_time=submit,
        latency=complete - submit,
        device_latency=complete - issue,
    )


class TestStitching:
    def test_unthrottled_bio_is_queue_wait_plus_service(self):
        registry = make_registry()
        tracker = SpanTracker().attach(registry)
        emit_lifecycle(registry, 1, submit=100 * USEC, issue=130 * USEC,
                       complete=400 * USEC)
        (span,) = tracker.spans
        assert span.stages == ((QUEUE_WAIT, 30), (SERVICE, 270))
        assert span.end_to_end_usec == 300
        assert span.submit_usec == 100 and span.complete_usec == 400

    def test_throttle_segments_attributed_per_controller(self):
        registry = make_registry()
        tracker = SpanTracker().attach(registry)
        # submit @0, iocost throttle @10, mq-deadline throttle @50,
        # issue @80, complete @200.
        emit_lifecycle(
            registry, 7, submit=0.0, issue=80 * USEC, complete=200 * USEC,
            throttles=((10 * USEC, "iocost"), (50 * USEC, "mq-deadline")),
        )
        (span,) = tracker.spans
        assert span.stages == (
            (QUEUE_WAIT, 10),
            (THROTTLE_PREFIX + "iocost", 40),
            (THROTTLE_PREFIX + "mq-deadline", 30),
            (SERVICE, 120),
        )
        assert span.throttle_usec == 70
        assert span.stage_usec(THROTTLE_PREFIX + "iocost") == 40

    def test_consecutive_same_controller_segments_merge(self):
        registry = make_registry()
        tracker = SpanTracker().attach(registry)
        emit_lifecycle(
            registry, 2, submit=0.0, issue=60 * USEC, complete=100 * USEC,
            throttles=((10 * USEC, "iocost"), (30 * USEC, "iocost")),
        )
        (span,) = tracker.spans
        assert span.stages == (
            (QUEUE_WAIT, 10),
            (THROTTLE_PREFIX + "iocost", 50),
            (SERVICE, 40),
        )

    def test_stages_always_sum_to_end_to_end(self):
        registry = make_registry()
        tracker = SpanTracker().attach(registry)
        # Awkward float timestamps: rounding must not break the sum.
        emit_lifecycle(
            registry, 3, submit=0.0000014, issue=0.0000077, complete=0.0000191,
            throttles=((0.0000033, "iocost"),),
        )
        (span,) = tracker.spans
        assert sum(dur for _, dur in span.stages) == span.end_to_end_usec

    def test_same_id_different_devices_tracked_separately(self):
        registry = make_registry()
        tracker = SpanTracker().attach(registry)
        emit_lifecycle(registry, 1, 0.0, 10 * USEC, 100 * USEC, dev="8:0")
        emit_lifecycle(registry, 1, 0.0, 20 * USEC, 300 * USEC, dev="8:16")
        spans = {span.dev: span for span in tracker.spans}
        assert spans["8:0"].end_to_end_usec == 100
        assert spans["8:16"].end_to_end_usec == 300

    def test_duplicate_submit_raises(self):
        registry = make_registry()
        SpanTracker().attach(registry)
        base = bio_fields(1)
        registry.point("bio_submit").emit(0.0, **base, sector=0, flags=0, prio=0)
        with pytest.raises(SpanError):
            registry.point("bio_submit").emit(1.0, **base, sector=0, flags=0, prio=0)

    def test_orphan_lifecycle_events_counted_not_fatal(self):
        registry = make_registry()
        tracker = SpanTracker().attach(registry)
        base = bio_fields(99)
        registry.point("bio_issue").emit(0.0, **base, wait=0.0)
        registry.point("bio_complete").emit(
            1 * USEC, **base, sector=0, flags=0, prio=0,
            submit_time=0.0, latency=1 * USEC, device_latency=1 * USEC,
        )
        assert tracker.completed == 0
        assert tracker.orphan_events == 2

    def test_double_attach_rejected(self):
        registry = make_registry()
        tracker = SpanTracker().attach(registry)
        with pytest.raises(SpanError):
            tracker.attach(registry)


class TestAnnotations:
    def test_debt_pay_annotates_open_spans_of_same_cgroup_and_dev(self):
        registry = make_registry()
        tracker = SpanTracker().attach(registry)
        base = bio_fields(1)
        other = bio_fields(2, cgroup="/other")
        registry.point("bio_submit").emit(0.0, **base, sector=0, flags=0, prio=0)
        registry.point("bio_submit").emit(0.0, **other, sector=0, flags=0, prio=0)
        registry.point("debt_pay").emit(
            5 * USEC, dev="8:0", cgroup="/ws", kind="charge", amount=1.0, debt=2.0
        )
        for fields, end in ((base, 10 * USEC), (other, 10 * USEC)):
            registry.point("bio_issue").emit(end / 2, **fields, wait=end / 2)
            registry.point("bio_complete").emit(
                end, **fields, sector=0, flags=0, prio=0,
                submit_time=0.0, latency=end, device_latency=end / 2,
            )
        spans = {span.cgroup: span for span in tracker.spans}
        assert len(spans["/ws"].annotations) == 1
        annotation = spans["/ws"].annotations[0]
        assert annotation.event == "debt_pay"
        assert annotation.time_usec == 5
        assert "charge" in annotation.detail
        assert spans["/other"].annotations == ()

    def test_donation_recalc_annotates_every_open_span_on_dev(self):
        registry = make_registry()
        tracker = SpanTracker().attach(registry)
        base = bio_fields(1)
        registry.point("bio_submit").emit(0.0, **base, sector=0, flags=0, prio=0)
        registry.point("donation_recalc").emit(
            2 * USEC, dev="8:0", donors=3, donated_total=0.5
        )
        registry.point("bio_issue").emit(4 * USEC, **base, wait=4 * USEC)
        registry.point("bio_complete").emit(
            8 * USEC, **base, sector=0, flags=0, prio=0,
            submit_time=0.0, latency=8 * USEC, device_latency=4 * USEC,
        )
        (span,) = tracker.spans
        assert span.annotations[0].event == "donation_recalc"
        assert "donors=3" in span.annotations[0].detail


class TestBreakdown:
    def fill(self, registry, tracker):
        emit_lifecycle(registry, 1, 0.0, 20 * USEC, 120 * USEC,
                       throttles=((5 * USEC, "iocost"),))
        emit_lifecycle(registry, 2, 0.0, 10 * USEC, 90 * USEC, cgroup="/batch")
        emit_lifecycle(registry, 3, 0.0, 30 * USEC, 130 * USEC, dev="8:16",
                       throttles=((8 * USEC, "blk-throttle"),))

    def test_stage_totals_sum_to_end_to_end_total(self):
        registry = make_registry()
        tracker = SpanTracker().attach(registry)
        self.fill(registry, tracker)
        rollup = tracker.breakdown()
        stage_total = sum(
            stage["total_usec"] for stage in rollup["stages"].values()
        )
        assert stage_total == rollup["end_to_end"]["total_usec"]
        shares = sum(stage["share"] for stage in rollup["stages"].values())
        assert shares == pytest.approx(1.0)

    def test_filters_by_cgroup_and_dev(self):
        registry = make_registry()
        tracker = SpanTracker().attach(registry)
        self.fill(registry, tracker)
        assert tracker.breakdown(cgroup="/batch")["count"] == 1
        assert tracker.breakdown(dev="8:16")["count"] == 1
        assert tracker.breakdown(cgroup="/ws", dev="8:0")["count"] == 1
        assert tracker.breakdown()["count"] == 3
        by_dev = tracker.breakdown(dev="8:16")
        assert THROTTLE_PREFIX + "blk-throttle" in by_dev["stages"]
        assert THROTTLE_PREFIX + "iocost" not in by_dev["stages"]

    def test_empty_breakdown(self):
        tracker = SpanTracker()
        rollup = tracker.breakdown()
        assert rollup["count"] == 0
        assert rollup["stages"] == {}
        assert tracker.describe() == "no completed spans"

    def test_scopes_and_select(self):
        registry = make_registry()
        tracker = SpanTracker().attach(registry)
        self.fill(registry, tracker)
        assert ("/batch", "8:0") in tracker.scopes()
        assert len(tracker.select(cgroup="/ws")) == 2
        assert len(tracker.select(cgroup="/ws", dev="8:0")) == 1

    def test_ring_overflow_keeps_histograms(self):
        registry = make_registry()
        tracker = SpanTracker(capacity=2).attach(registry)
        for bio_id in range(5):
            emit_lifecycle(registry, bio_id, 0.0, 10 * USEC, 100 * USEC)
        assert len(tracker.spans) == 2
        assert tracker.dropped == 3
        assert tracker.breakdown()["count"] == 5  # histograms saw them all

    def test_describe_mentions_stages(self):
        registry = make_registry()
        tracker = SpanTracker().attach(registry)
        self.fill(registry, tracker)
        text = tracker.describe()
        assert QUEUE_WAIT in text and SERVICE in text

    def test_spans_to_jsonl_round_trips(self):
        import json

        registry = make_registry()
        tracker = SpanTracker().attach(registry)
        self.fill(registry, tracker)
        lines = spans_to_jsonl(tracker.spans).splitlines()
        assert len(lines) == 3
        payload = json.loads(lines[0])
        assert payload["end_to_end_usec"] == sum(
            dur for _, dur in payload["stages"]
        )


class TestIntegration:
    """The acceptance rig: multi-controller, multi-device, exact sums."""

    def make_bed(self):
        qos = QoSParams(
            read_lat_target=None, write_lat_target=None,
            vrate_min=1.0, vrate_max=1.0, period=0.025,
        )
        gate = IOCost(
            LinearCostModel(ModelParams.from_device_spec(SSD_NEW)), qos=qos
        )
        stacked = StackedController(gate, MQDeadlineController())
        throttle = BlkThrottleController(
            {"ws": ThrottleLimits(riops=2000)}
        )
        return Testbed(
            devices={"vda": "ssd_new", "vdb": "ssd_old"},
            controllers={"vda": stacked, "vdb": throttle},
        )

    def test_multi_controller_multi_device_spans(self):
        bed = self.make_bed()
        ws = bed.add_cgroup("ws", weight=100)
        batch = bed.add_cgroup("batch", weight=100)
        tracker = SpanTracker().attach(TRACE)
        bed.saturate(ws, device="vda", depth=32)
        bed.saturate(batch, device="vda", depth=32)
        bed.saturate(ws, device="vdb", depth=32)
        bed.run(0.15)
        tracker.detach()
        bed.detach()

        assert tracker.completed > 100
        devnos = {span.dev for span in tracker.spans}
        assert len(devnos) == 2

        # The headline invariant: every span's stages sum exactly.
        for span in tracker.spans:
            assert sum(dur for _, dur in span.stages) == span.end_to_end_usec

        # Per-controller attribution is separable: the iocost gate of the
        # stacked device and the blk-throttle device each blame their own
        # waits under their own stage names, on their own device.
        vda = bed.devices.layer("vda").dev
        vdb = bed.devices.layer("vdb").dev
        vda_stages = tracker.breakdown(dev=vda)["stages"]
        vdb_stages = tracker.breakdown(dev=vdb)["stages"]
        assert THROTTLE_PREFIX + "iocost" in vda_stages
        assert THROTTLE_PREFIX + "blk-throttle" in vdb_stages
        assert THROTTLE_PREFIX + "blk-throttle" not in vda_stages
        assert THROTTLE_PREFIX + "iocost" not in vdb_stages

        # And the rollup's stage totals sum exactly to end-to-end.
        for dev in devnos:
            rollup = tracker.breakdown(dev=dev)
            stage_total = sum(
                stage["total_usec"] for stage in rollup["stages"].values()
            )
            assert stage_total == rollup["end_to_end"]["total_usec"]

    def test_tracker_does_not_change_results(self):
        def run(tracked: bool):
            bed = self.make_bed()
            ws = bed.add_cgroup("/ws", weight=100)
            tracker = SpanTracker().attach(TRACE) if tracked else None
            bed.saturate(ws, device="vda", depth=16)
            bed.run(0.1)
            if tracker is not None:
                tracker.detach()
            bed.detach()
            return bed.sim.events_processed, bed.iops(ws, device="vda")

        TRACE.reset()
        baseline = run(tracked=False)
        TRACE.reset()
        tracked = run(tracked=True)
        assert baseline == tracked


class TestSpanObject:
    def test_to_dict_shape(self):
        span = Span(
            dev="8:0", bio_id=4, cgroup="/ws", op="read", nbytes=4096,
            submit_usec=0, issue_usec=10, complete_usec=50,
            stages=((QUEUE_WAIT, 10), (SERVICE, 40)),
        )
        payload = span.to_dict()
        assert payload["id"] == 4
        assert payload["stages"] == [[QUEUE_WAIT, 10], [SERVICE, 40]]
        assert payload["annotations"] == []
        assert span.service_usec == 40

    def test_capacity_validation(self):
        with pytest.raises(SpanError):
            SpanTracker(capacity=0)
