"""Tests for the hierarchical io.stat surface."""

import pytest

from repro.block.device_models import SSD_NEW
from repro.cgroup import CgroupTree
from repro.obs.iostat import IOStat
from repro.testbed import Testbed


def account(cgroup, *, rbytes=0, wbytes=0):
    """Charge IO to one cgroup the way the block layer does."""
    reads, writes = rbytes // 4096, wbytes // 4096
    for _ in range(reads):
        cgroup.stats.account(False, 4096)
    for _ in range(writes):
        cgroup.stats.account(True, 4096)


class TestAggregation:
    def test_children_sum_into_parents(self):
        tree = CgroupTree()
        parent = tree.create("workload.slice")
        a = tree.create("workload.slice/a")
        b = tree.create("workload.slice/b")
        account(a, rbytes=8192)
        account(b, rbytes=4096, wbytes=12288)
        account(parent, wbytes=4096)

        snap = IOStat(tree).snapshot()
        assert snap["workload.slice/a"]["rbytes"] == 8192
        assert snap["workload.slice/b"]["wbytes"] == 12288
        # Recursive: the parent reports its own IO plus both children.
        assert snap["workload.slice"]["rbytes"] == 12288
        assert snap["workload.slice"]["wbytes"] == 16384
        assert snap["workload.slice"]["rios"] == 3
        assert snap["workload.slice"]["wios"] == 4
        # ... and the root sees everything.
        assert snap[""]["rbytes"] == 12288
        assert snap[""]["wbytes"] == 16384

    def test_removal_folds_into_parent(self):
        """Counters survive cgroup removal (kernel rstat flush-on-release)."""
        tree = CgroupTree()
        tree.create("workload.slice")
        child = tree.create("workload.slice/dying")
        iostat = IOStat(tree)
        account(child, rbytes=65536, wbytes=4096)

        before = iostat.snapshot()["workload.slice"]
        tree.remove("workload.slice/dying")
        after = iostat.snapshot()

        assert "workload.slice/dying" not in after
        assert after["workload.slice"]["rbytes"] == before["rbytes"] == 65536
        assert after["workload.slice"]["wbytes"] == before["wbytes"] == 4096
        assert after[""]["rbytes"] == 65536

    def test_cascading_removal_carries_inherited_stats(self):
        """A removed parent carries its own dead-children stats upward."""
        tree = CgroupTree()
        tree.create("a")
        tree.create("a/b")
        grandchild = tree.create("a/b/c")
        iostat = IOStat(tree)
        account(grandchild, rbytes=4096)

        tree.remove("a/b/c")
        tree.remove("a/b")
        snap = iostat.snapshot()
        assert snap["a"]["rbytes"] == 4096
        assert snap[""]["rbytes"] == 4096

    def test_hook_only_observes_registered_tree(self):
        tree = CgroupTree()
        other = CgroupTree()
        iostat = IOStat(tree)
        doomed = other.create("x")
        account(doomed, rbytes=4096)
        other.remove("x")  # not iostat's tree; must not be folded anywhere
        assert iostat.snapshot()[""]["rbytes"] == 0


class TestCostKeys:
    def test_iocost_cost_keys_populate(self):
        bed = Testbed(SSD_NEW.scaled(0.1), "iocost", seed=5)
        a = bed.add_cgroup("workload.slice/a", weight=200)
        bed.add_cgroup("workload.slice/b", weight=100)
        bed.saturate(a, depth=16, stop_at=0.4)
        bed.sim.run(until=0.5)
        bed.controller.detach()

        iostat = IOStat(bed.cgroups, controller=bed.controller)
        entry = iostat.of("workload.slice/a")
        assert entry["cost.vrate"] == pytest.approx(bed.controller.vrate)
        assert entry["cost.usage"] > 0
        assert entry["cost.ios"] > 0
        assert entry["cost.wait"] > 0
        assert entry["cost.indebt"] == 0.0
        assert entry["cost.indelay"] == 0.0
        # The idle sibling saw no IO.
        idle = iostat.of("workload.slice/b")
        assert idle["cost.usage"] == 0.0
        assert idle["rbytes"] == 0

    def test_lifetime_usage_survives_period_resets(self):
        """Satellite: per-period resets must not zero the surfaced totals."""
        bed = Testbed(SSD_NEW.scaled(0.1), "iocost", seed=5)
        a = bed.add_cgroup("workload.slice/a")
        bed.saturate(a, depth=16, stop_at=1.0)
        iostat = IOStat(bed.cgroups, controller=bed.controller)

        bed.sim.run(until=0.3)
        early = iostat.of("workload.slice/a")["cost.usage"]
        bed.sim.run(until=0.9)
        late = iostat.of("workload.slice/a")["cost.usage"]
        bed.controller.detach()

        assert early > 0
        # Monotone and still growing long after many planning periods
        # (period = 50ms, so ~12 in-place resets happened in between).
        assert late > early * 2

    def test_throttle_counter_key(self):
        bed = Testbed(SSD_NEW.scaled(0.02), "iocost", seed=5)
        a = bed.add_cgroup("workload.slice/a")
        bed.saturate(a, depth=64, stop_at=0.4)
        bed.sim.run(until=0.5)
        bed.controller.detach()
        entry = IOStat(bed.cgroups, controller=bed.controller).of("workload.slice/a")
        assert entry["throttled"] > 0
