import pytest

from repro.obs.trace import TRACE


@pytest.fixture(autouse=True)
def clean_registry():
    """The registry is process-global; never leak subscribers across tests."""
    TRACE.reset()
    yield
    TRACE.reset()
