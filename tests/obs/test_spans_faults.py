"""SpanTracker fault-path behaviour: error/retry stitching, the bounded
pending map, and fault-window annotations."""

import pytest

from repro.obs.spans import (
    QUEUE_WAIT,
    RETRY_WAIT,
    SERVICE,
    SpanError,
    SpanTracker,
)
from repro.obs.trace import TraceRegistry
from repro.sanitize import SANITIZE

USEC = 1e-6


def make_registry() -> TraceRegistry:
    return TraceRegistry()


def bio_fields(bio_id, cgroup="/ws", dev="8:0", op="read", nbytes=4096):
    return {"dev": dev, "id": bio_id, "cgroup": cgroup, "op": op, "nbytes": nbytes}


def submit(registry, bio_id, time, **kw):
    registry.point("bio_submit").emit(
        time, **bio_fields(bio_id, **kw), sector=0, flags=0, prio=0
    )


def issue(registry, bio_id, time, **kw):
    registry.point("bio_issue").emit(time, **bio_fields(bio_id, **kw), wait=0.0)


def requeue(registry, bio_id, time, retries=1, status="eio", **kw):
    registry.point("bio_requeue").emit(
        time, **bio_fields(bio_id, **kw), status=status, retries=retries,
        backoff=1e-3,
    )


def error(registry, bio_id, time, retries=0, status="eio", **kw):
    registry.point("bio_error").emit(
        time, **bio_fields(bio_id, **kw), status=status, retries=retries
    )


def complete(registry, bio_id, submit_time, time, **kw):
    registry.point("bio_complete").emit(
        time,
        **bio_fields(bio_id, **kw),
        sector=0,
        flags=0,
        prio=0,
        submit_time=submit_time,
        latency=time - submit_time,
        device_latency=0.0,
    )


class TestRetryStage:
    def test_retry_wait_spans_first_to_final_dispatch(self):
        registry = make_registry()
        tracker = SpanTracker().attach(registry)
        # submit @0, issue @10, requeue @110, re-issue @210, complete @300.
        submit(registry, 1, 0.0)
        issue(registry, 1, 10 * USEC)
        requeue(registry, 1, 110 * USEC)
        issue(registry, 1, 210 * USEC)
        complete(registry, 1, 0.0, 300 * USEC)
        (span,) = tracker.spans
        assert span.stages == (
            (QUEUE_WAIT, 10), (RETRY_WAIT, 200), (SERVICE, 90)
        )
        assert span.status == "ok" and span.retries == 1
        assert sum(d for _, d in span.stages) == span.end_to_end_usec

    def test_error_closes_span_with_status(self):
        registry = make_registry()
        tracker = SpanTracker().attach(registry)
        submit(registry, 1, 0.0)
        issue(registry, 1, 10 * USEC)
        error(registry, 1, 250 * USEC, retries=2)
        (span,) = tracker.spans
        assert span.status == "eio"
        assert tracker.errored == 1
        assert tracker.open_count == 0

    def test_requeues_counted_even_for_eventual_success(self):
        registry = make_registry()
        tracker = SpanTracker().attach(registry)
        submit(registry, 1, 0.0)
        issue(registry, 1, 5 * USEC)
        requeue(registry, 1, 50 * USEC, retries=1)
        issue(registry, 1, 60 * USEC)
        requeue(registry, 1, 120 * USEC, retries=2)
        issue(registry, 1, 140 * USEC)
        complete(registry, 1, 0.0, 200 * USEC)
        (span,) = tracker.spans
        assert span.retries == 2 and span.status == "ok"
        assert tracker.errored == 0


class TestPendingBound:
    def test_validation(self):
        with pytest.raises(SpanError):
            SpanTracker(max_pending=0)

    def test_oldest_open_span_evicted_at_bound(self):
        registry = make_registry()
        tracker = SpanTracker(max_pending=2).attach(registry)
        submit(registry, 1, 0.0)
        submit(registry, 2, 10 * USEC)
        # A deliberate eviction: under sanitize this is fail-stop, so the
        # counting behaviour is pinned with the checker suspended.
        with SANITIZE.suspended():
            submit(registry, 3, 20 * USEC)  # evicts bio 1
        assert tracker.evicted == 1
        assert tracker.open_count == 2
        # Bio 1's completion is now an orphan, not a span.
        complete(registry, 1, 0.0, 100 * USEC)
        assert tracker.orphan_events == 1 and not tracker.spans
        # Bios 2 and 3 still stitch normally.
        issue(registry, 2, 30 * USEC)
        complete(registry, 2, 10 * USEC, 90 * USEC)
        (span,) = tracker.spans
        assert span.bio_id == 2

    def test_describe_reports_eviction_and_errors(self):
        registry = make_registry()
        tracker = SpanTracker(max_pending=1).attach(registry)
        submit(registry, 1, 0.0)
        with SANITIZE.suspended():
            submit(registry, 2, 10 * USEC)  # evicts bio 1
        text = tracker.describe()
        assert "evicted=1" in text
        issue(registry, 2, 20 * USEC)
        error(registry, 2, 90 * USEC)
        text = tracker.describe()
        assert "errored=1" in text and "evicted=1" in text
        assert "pending bound 1" in text


class TestFaultAnnotations:
    def test_fault_windows_annotate_open_spans_on_device(self):
        registry = make_registry()
        tracker = SpanTracker().attach(registry)
        submit(registry, 1, 0.0, dev="8:0")
        submit(registry, 2, 0.0, dev="8:16")  # other device: untouched
        registry.point("dev_fault_begin").emit(
            50 * USEC, dev="8:0", kind="gc_stall", index=0, until=100 * USEC
        )
        registry.point("dev_fault_end").emit(
            100 * USEC, dev="8:0", kind="gc_stall", index=0
        )
        issue(registry, 1, 110 * USEC)
        complete(registry, 1, 0.0, 150 * USEC)
        issue(registry, 2, 20 * USEC, dev="8:16")
        complete(registry, 2, 0.0, 60 * USEC, dev="8:16")
        spans = {span.bio_id: span for span in tracker.spans}
        kinds = [a.event for a in spans[1].annotations]
        assert kinds == ["dev_fault_begin", "dev_fault_end"]
        assert "kind=gc_stall" in spans[1].annotations[0].detail
        assert spans[2].annotations == ()
