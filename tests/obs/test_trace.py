"""Tests for the tracepoint registry, ring buffer, and zero-overhead guard."""

import io
import json

import numpy as np
import pytest

from repro.block.bio import Bio, IOOp
from repro.block.device import Device, DeviceSpec
from repro.block.device_models import SSD_NEW
from repro.block.layer import BlockLayer
from repro.block.trace import TraceReplayer
from repro.cgroup import CgroupTree
from repro.controllers.noop import NoopController
from repro.obs.trace import (
    EVENT_CATALOGUE,
    OPTIONAL_FIELDS,
    TRACE,
    TraceBuffer,
    TraceError,
    TraceEvent,
    TracePoint,
    TraceRegistry,
    load_events,
)
from repro.sim import Simulator
from repro.testbed import Testbed
from repro.workloads.synthetic import PacedWorkload

SPEC = DeviceSpec(
    name="tracedev",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=1e9,
    write_bw=1e9,
    sigma=0.0,
    nr_slots=64,
)


def make_env():
    sim = Simulator()
    device = Device(sim, SPEC, np.random.default_rng(0))
    layer = BlockLayer(sim, device, NoopController())
    tree = CgroupTree()
    return sim, layer, tree


class TestRegistry:
    def test_catalogue_points_exist(self):
        for name in EVENT_CATALOGUE:
            assert TRACE.point(name).name == name

    def test_unknown_point_rejected(self):
        with pytest.raises(TraceError):
            TRACE.point("no_such_event")  # deliberately invalid - simlint: disable=trace-catalogue

    def test_disabled_until_subscribed(self):
        registry = TraceRegistry()
        assert not registry.enabled
        sub = registry.subscribe(lambda event: None, events=["bio_submit"])
        assert registry.point("bio_submit").enabled
        assert not registry.point("bio_complete").enabled
        sub.close()
        assert not registry.enabled

    def test_emit_rejects_unknown_fields(self):
        registry = TraceRegistry()
        registry.subscribe(lambda event: None, events=["bio_submit"])
        with pytest.raises(TraceError, match="bogus"):
            registry.point("bio_submit").emit(0.0, bogus=1)  # deliberately invalid - simlint: disable=trace-catalogue

    def test_emit_rejects_missing_required_fields(self):
        registry = TraceRegistry()
        registry.subscribe(lambda event: None, events=["qos_period"])
        with pytest.raises(TraceError, match="active_groups"):
            registry.point("qos_period").emit(0.0, period=0.05, vrate=1.0)  # deliberately invalid - simlint: disable=trace-catalogue

    def test_emit_allows_omitting_optional_dev(self):
        """``dev`` is declared optional: single-device rigs skip it."""
        assert "dev" in OPTIONAL_FIELDS
        registry = TraceRegistry()
        seen = []
        registry.subscribe(seen.append, events=["qos_period"])
        registry.point("qos_period").emit(
            0.0, period=0.05, vrate=1.0, active_groups=1, budget_blocked=0
        )
        assert len(seen) == 1 and "dev" not in seen[0].fields

    def test_required_excludes_only_optional_fields(self):
        point = TracePoint("custom", ("dev", "value"))
        assert point.required == frozenset({"value"})
        with pytest.raises(TraceError, match="value"):
            point.emit(0.0, dev="8:0")  # deliberately invalid - simlint: disable=trace-catalogue

    def test_subscription_filters_events(self):
        registry = TraceRegistry()
        seen = []
        registry.subscribe(seen.append, events=["qos_period"])
        registry.point("qos_period").emit(1.0, period=0.05, vrate=1.0,
                                          active_groups=0, budget_blocked=0)
        # Unsubscribed point: nothing listens, so nothing is delivered.
        assert not registry.point("bio_submit").enabled
        assert [event.name for event in seen] == ["qos_period"]


class TestZeroOverheadGuard:
    class SpyPoint:
        """Mimics a TracePoint; counts flag reads and emit calls."""

        def __init__(self):
            self.flag_reads = 0
            self.emits = 0
            self._enabled = False

        @property
        def enabled(self):
            self.flag_reads += 1
            return self._enabled

        def emit(self, time, **fields):
            self.emits += 1

    def test_submit_single_flag_check_when_disabled(self):
        """The disabled hot path costs exactly one flag read, zero emits."""
        sim, layer, tree = make_env()
        spy_submit = self.SpyPoint()
        spy_issue = self.SpyPoint()
        layer._tp_submit = spy_submit
        layer._tp_issue = spy_issue
        group = tree.create("a")

        layer.submit(Bio(IOOp.READ, 4096, 8, group))
        assert spy_submit.flag_reads == 1
        assert spy_submit.emits == 0

        sim.run(until=0.01)  # drive through issue + completion
        assert spy_issue.flag_reads == 1
        assert spy_issue.emits == 0

    def test_submit_emits_once_when_enabled(self):
        sim, layer, tree = make_env()
        spy = self.SpyPoint()
        spy._enabled = True
        layer._tp_submit = spy
        group = tree.create("a")
        layer.submit(Bio(IOOp.READ, 4096, 8, group))
        assert spy.emits == 1


def _fingerprint(trace_on: bool) -> bytes:
    """JSON fingerprint of a fig10-style weighted run."""
    TRACE.reset()
    buffer = TraceBuffer(capacity=1 << 16)
    if trace_on:
        buffer.attach(TRACE)
    bed = Testbed(SSD_NEW.scaled(0.1), "iocost", seed=3)
    high = bed.add_cgroup("workload.slice/high", weight=200)
    low = bed.add_cgroup("workload.slice/low", weight=100)
    bed.saturate(high, depth=32, stop_at=0.5)
    bed.saturate(low, depth=32, stop_at=0.5)
    bed.sim.run(until=0.6)
    bed.controller.detach()
    if trace_on:
        buffer.detach()
        assert buffer.recorded > 0
    fingerprint = {
        "completed": bed.layer.completed_by_cgroup,
        "bytes": bed.layer.bytes_by_cgroup,
        "vrate": bed.controller.vrate,
        "now": bed.sim.now,
        "stats": {
            path: [cg.stats.rbytes, cg.stats.rios, round(cg.stats.wait_total, 12)]
            for path, cg in ((c.path, c) for c in bed.cgroups)
        },
    }
    return json.dumps(fingerprint, sort_keys=True).encode()


class TestDeterminism:
    def test_tracing_does_not_change_results(self):
        """Byte-identical run fingerprints with tracing on vs off."""
        assert _fingerprint(trace_on=False) == _fingerprint(trace_on=True)


class TestBuffer:
    def test_ring_drops_oldest(self):
        registry = TraceRegistry()
        buffer = TraceBuffer(capacity=3).attach(registry, events=["swap_out"])
        point = registry.point("swap_out")
        for i in range(5):
            point.emit(float(i), owner="a", charged_to="a", nbytes=i)
        assert len(buffer) == 3
        assert buffer.dropped == 2
        assert [event.fields["nbytes"] for event in buffer.events] == [2, 3, 4]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)

    def test_double_attach_rejected(self):
        registry = TraceRegistry()
        buffer = TraceBuffer().attach(registry)
        with pytest.raises(TraceError):
            buffer.attach(registry)
        buffer.detach()

    def test_jsonl_roundtrip(self):
        registry = TraceRegistry()
        buffer = TraceBuffer().attach(registry)
        registry.point("debt_pay").emit(
            0.5, cgroup="w/a", kind="charge", amount=1e-4, debt=2e-3
        )
        registry.point("qos_period").emit(
            0.55, period=0.05, vrate=1.2, active_groups=2, budget_blocked=4
        )
        stream = io.StringIO()
        assert buffer.save(stream) == 2
        stream.seek(0)
        loaded = load_events(stream)
        assert loaded == buffer.events
        assert loaded[0] == TraceEvent(
            "debt_pay", 0.5,
            {"cgroup": "w/a", "kind": "charge", "amount": 1e-4, "debt": 2e-3},
        )

    def test_select_by_name(self):
        registry = TraceRegistry()
        buffer = TraceBuffer().attach(registry)
        registry.point("swap_out").emit(0.0, owner="a", charged_to="a", nbytes=1)
        registry.point("reclaim_scan").emit(
            0.1, requester="b", victim="a", nbytes=2, free_bytes=3
        )
        assert [event.name for event in buffer.select("swap_out")] == ["swap_out"]


class TestReplayBridge:
    def test_bio_complete_events_replay(self):
        """Live-captured completions round-trip through TraceReplayer."""
        sim, layer, tree = make_env()
        buffer = TraceBuffer().attach(TRACE, events=["bio_complete"])
        group = tree.create("workload.slice/app")
        PacedWorkload(sim, layer, group, rate=500, stop_at=0.05).start()
        sim.run(until=0.1)
        buffer.detach()

        records = buffer.to_trace_records()
        assert records
        assert records == sorted(records, key=lambda r: r.submit_time)
        assert all(record.prio is None for record in records)

        sim2, layer2, tree2 = make_env()
        replayer = TraceReplayer(sim2, layer2, tree2, records).start()
        sim2.run(until=0.2)
        assert replayer.submitted == len(records)
        assert replayer.completed == len(records)
        assert "workload.slice/app" in tree2

    def test_prio_preserved_through_bridge(self):
        sim, layer, tree = make_env()
        buffer = TraceBuffer().attach(TRACE, events=["bio_complete"])
        group = tree.create("rt")
        layer.submit(Bio(IOOp.READ, 4096, 8, group, prio=1))
        sim.run(until=0.01)
        buffer.detach()
        records = buffer.to_trace_records()
        assert [record.prio for record in records] == [1]

        sim2, layer2, tree2 = make_env()
        replayed = []
        original = layer2.submit

        def capture(bio):
            replayed.append(bio.prio)
            return original(bio)

        layer2.submit = capture
        TraceReplayer(sim2, layer2, tree2, records).start()
        sim2.run(until=0.05)
        assert replayed == [1]


class TestCataloguedRoundTrip:
    """Satellite contract: every catalogued event survives JSONL intact."""

    #: Deterministic sample value per field name, covering every type the
    #: emit sites actually use (strings, ints, floats, bools).
    SAMPLES = {
        "dev": "8:16",
        "id": 31,
        "cgroup": "workload.slice/app",
        "op": "read",
        "nbytes": 4096,
        "sector": 2048,
        "flags": 2,
        "prio": 1,
        "reason": "budget",
        "ctl": "iocost",
        "wait": 3.5e-5,
        "submit_time": 0.25,
        "latency": 1.25e-4,
        "device_latency": 9e-5,
        "vrate": 1.375,
        "busy_level": -2,
        "saturated": True,
        "starved": False,
        "read_p": 1.1e-4,
        "write_p": 2.2e-4,
        "period": 0.05,
        "active_groups": 3,
        "budget_blocked": 7,
        "donors": 2,
        "donated_total": 0.4,
        "kind": "charge",
        "amount": 1e-4,
        "debt": 2e-3,
        "requester": "workload.slice",
        "victim": "system.slice",
        "free_bytes": 1 << 20,
        "owner": "a",
        "charged_to": "b",
        # Fault-path events (bio_error / bio_requeue / dev_fault_*).
        "status": "eio",
        "retries": 2,
        "backoff": 4e-3,
        "index": 0,
        "until": 1.5,
    }

    @pytest.mark.parametrize("name", sorted(EVENT_CATALOGUE))
    def test_event_round_trips_through_jsonl(self, name):
        fields = EVENT_CATALOGUE[name]
        missing = set(fields) - set(self.SAMPLES)
        assert not missing, f"add SAMPLES for new field(s) {sorted(missing)}"

        registry = TraceRegistry()
        buffer = TraceBuffer().attach(registry)
        payload = {field: self.SAMPLES[field] for field in fields}
        registry.point(name).emit(0.125, **payload)

        stream = io.StringIO()
        assert buffer.save(stream) == 1
        stream.seek(0)
        (loaded,) = load_events(stream)
        assert loaded == TraceEvent(name, 0.125, payload)
        # Types survive too (json round-trip must not coerce).
        for field, value in payload.items():
            assert type(loaded.fields[field]) is type(value), field

    @pytest.mark.parametrize("name", sorted(EVENT_CATALOGUE))
    def test_event_round_trips_without_optional_fields(self, name):
        fields = EVENT_CATALOGUE[name]
        required = [field for field in fields if field not in OPTIONAL_FIELDS]
        if len(required) == len(fields):
            pytest.skip("event has no optional fields")
        registry = TraceRegistry()
        buffer = TraceBuffer().attach(registry)
        payload = {field: self.SAMPLES[field] for field in required}
        registry.point(name).emit(0.25, **payload)
        stream = io.StringIO()
        buffer.save(stream)
        stream.seek(0)
        (loaded,) = load_events(stream)
        assert loaded == TraceEvent(name, 0.25, payload)
