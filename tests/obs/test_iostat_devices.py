"""Golden-output tests for per-device io.stat on a two-device machine.

Covers the satellite acceptance: cgroup2 format parity (one ``maj:min``
line per device, kernel counter order), per-device rstat folding on cgroup
removal, and ``cost.*`` keys appearing only on iocost-managed devices.
"""

import numpy as np
import pytest

from repro.block.bio import Bio, IOOp
from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.controllers.noop import NoopController
from repro.obs.iostat import IOStat
from repro.sim import Simulator
from repro.testbed import Testbed

#: Deterministic device: no service noise, no GC, no tail.
QUIET = DeviceSpec(
    name="quiet",
    parallelism=8,
    srv_rand_read=100e-6,
    srv_seq_read=90e-6,
    srv_rand_write=120e-6,
    srv_seq_write=100e-6,
    read_bw=1e9,
    write_bw=1e9,
    sigma=0.0,
)


def two_device_machine():
    sim = Simulator()
    tree = CgroupTree()
    layers = {}
    for index, name in enumerate(("vda", "vdb")):
        device = Device(
            sim, QUIET, np.random.default_rng(index), name=name,
            devno=f"8:{16 * index}",
        )
        layers[name] = BlockLayer(sim, device, NoopController()).observe_tree(tree)
    return sim, tree, layers


class TestGoldenFormat:
    def test_one_line_per_device_kernel_order(self):
        sim, tree, layers = two_device_machine()
        app = tree.create("workload.slice/app")
        layers["vda"].submit(Bio(IOOp.READ, 4096, 8, app))
        layers["vdb"].submit(Bio(IOOp.WRITE, 65536, 8, app))
        layers["vdb"].submit(Bio(IOOp.WRITE, 65536, 136, app))
        sim.run(until=1.0)

        rendered = IOStat(tree).render("workload.slice/app")
        assert rendered == (
            "8:0 rbytes=4096 wbytes=0 rios=1 wios=0 dbytes=0 dios=0 wait_usec=0"
            " errors=0 requeues=0\n"
            "8:16 rbytes=0 wbytes=131072 rios=0 wios=2 dbytes=0 dios=0"
            " wait_usec=0 errors=0 requeues=0"
        )

    def test_parent_renders_recursive_per_device(self):
        sim, tree, layers = two_device_machine()
        a = tree.create("workload.slice/a")
        b = tree.create("workload.slice/b")
        layers["vda"].submit(Bio(IOOp.READ, 4096, 8, a))
        layers["vdb"].submit(Bio(IOOp.READ, 8192, 8, b))
        sim.run(until=1.0)

        entry = IOStat(tree).device_of("workload.slice")
        assert entry["8:0"]["rbytes"] == 4096
        assert entry["8:16"]["rbytes"] == 8192
        # The machine-wide aggregate view still sums across devices.
        assert IOStat(tree).of("workload.slice")["rbytes"] == 12288


class TestRemovalFolding:
    def test_folding_preserves_device_attribution(self):
        sim, tree, layers = two_device_machine()
        iostat = IOStat(tree)
        tree.create("workload.slice")
        dying = tree.create("workload.slice/dying")
        layers["vda"].submit(Bio(IOOp.READ, 4096, 8, dying))
        layers["vdb"].submit(Bio(IOOp.WRITE, 65536, 8, dying))
        sim.run(until=1.0)

        tree.remove("workload.slice/dying")
        entry = iostat.device_of("workload.slice")
        assert "workload.slice/dying" not in iostat.device_snapshot()
        assert entry["8:0"]["rbytes"] == 4096
        assert entry["8:0"]["wbytes"] == 0
        assert entry["8:16"]["wbytes"] == 65536
        # The root sees the same per-device split.
        root = iostat.device_of("")
        assert root["8:0"]["rbytes"] == 4096
        assert root["8:16"]["wbytes"] == 65536

    def test_cascading_removal_carries_device_records(self):
        sim, tree, layers = two_device_machine()
        iostat = IOStat(tree)
        tree.create("a")
        tree.create("a/b")
        grandchild = tree.create("a/b/c")
        layers["vdb"].submit(Bio(IOOp.READ, 4096, 8, grandchild))
        sim.run(until=1.0)

        tree.remove("a/b/c")
        tree.remove("a/b")
        entry = iostat.device_of("a")
        assert entry["8:16"]["rbytes"] == 4096
        assert "8:0" not in entry


class TestCostKeysPerDevice:
    def test_cost_keys_only_on_iocost_managed_devices(self):
        bed = Testbed(
            devices={"vda": QUIET, "vdb": QUIET},
            controllers={"vda": "iocost", "vdb": "none"},
            seed=3,
        )
        app = bed.add_cgroup("workload.slice/app")
        bed.saturate(app, device="vda", depth=8, stop_at=0.3)
        bed.sim.run(until=0.4)
        bed.detach()

        iostat = IOStat(
            bed.cgroups, controllers=bed.devices.controllers_by_devno()
        )
        entry = iostat.device_of("workload.slice/app")
        iocost_keys = {k for k in entry["8:0"] if k.startswith("cost.")}
        assert {"cost.vrate", "cost.usage", "cost.ios", "cost.wait"} <= iocost_keys
        assert not any(k.startswith("cost.") for k in entry["8:16"])
        # Both managed devices carry the shared throttle counter.
        assert "throttled" in entry["8:0"] and "throttled" in entry["8:16"]

        rendered = iostat.render("workload.slice/app")
        vda_line, vdb_line = rendered.splitlines()
        assert vda_line.startswith("8:0 ") and "cost.vrate=" in vda_line
        assert vdb_line.startswith("8:16 ") and "cost." not in vdb_line

    def test_render_counters_are_integers(self):
        sim, tree, layers = two_device_machine()
        app = tree.create("a")
        layers["vda"].submit(Bio(IOOp.READ, 4096, 8, app))
        sim.run(until=1.0)
        line = IOStat(tree).render("a")
        for token in line.split()[1:]:
            key, value = token.split("=")
            assert "." not in value, (key, value)
