"""Integration: journal + page cache + controller working together."""

import numpy as np
import pytest

from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.qos import QoSParams
from repro.fs.journal import Journal
from repro.mm.pagecache import PageCache
from repro.sim import Simulator

MB = 1024 * 1024

SPEC = DeviceSpec(
    name="fsint",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=400e6,
    write_bw=400e6,
    sigma=0.0,
    nr_slots=64,
)


def make_stack():
    sim = Simulator()
    device = Device(sim, SPEC, np.random.default_rng(0))
    controller = IOCost(
        LinearCostModel(ModelParams.from_device_spec(SPEC)),
        qos=QoSParams(
            read_lat_target=None, write_lat_target=None,
            vrate_min=1.0, vrate_max=1.0, period=0.025,
        ),
    )
    layer = BlockLayer(sim, device, controller)
    cache = PageCache(sim, layer, background_bytes=4 * MB, limit_bytes=16 * MB)
    journal = Journal(sim, layer, commit_interval=0.05)
    tree = CgroupTree()
    return sim, layer, controller, cache, journal, tree


def run_op(sim, gen):
    proc = sim.process(gen)
    while not proc.done:
        sim.step()
    return proc


def test_fsync_like_transaction_flow():
    """An app's "write + fsync" path: dirty data, log metadata, sync both."""
    sim, layer, controller, cache, journal, tree = make_stack()
    app = tree.create("workload.slice/app", weight=100)

    def transaction():
        yield from cache.buffered_write(app, 1 * MB)
        journal.log(app, 4096)
        yield from journal.fsync(app)    # metadata durable
        yield from cache.sync(app)       # data durable

    run_op(sim, transaction())
    controller.detach()
    journal.close()
    assert journal.stats.commits == 1
    assert cache.state_of(app).dirty == 0
    # Both data (1 MiB) and the journal record reached the device.
    assert layer.completed_bytes >= 1 * MB + 4096


def test_two_apps_share_the_journal_but_not_the_data_path():
    sim, layer, controller, cache, journal, tree = make_stack()
    a = tree.create("workload.slice/a", weight=100)
    b = tree.create("workload.slice/b", weight=100)

    # Both apps log records into the running transaction, then both fsync:
    # the batch commits once, covering both.
    def prepare_a():
        yield from cache.buffered_write(a, 2 * MB)
        journal.log(a, 4096)

    run_op(sim, prepare_a())
    journal.log(b, 4096)

    proc_a = sim.process(journal.fsync(a))
    proc_b = sim.process(journal.fsync(b))
    while not (proc_a.done and proc_b.done):
        sim.step()
    controller.detach()
    journal.close()
    # Exactly one shared commit covered both apps' records.
    assert journal.stats.commits == 1
    assert journal.stats.records_written == 2


def test_dirty_data_eventually_written_without_sync():
    sim, layer, controller, cache, journal, tree = make_stack()
    app = tree.create("workload.slice/app", weight=100)
    run_op(sim, cache.buffered_write(app, 8 * MB))  # over background
    sim.run(until=2.0)
    controller.detach()
    journal.close()
    assert cache.state_of(app).dirty <= cache.background_bytes
    assert cache.state_of(app).written_back_total > 0
