"""System-level invariant and property tests across the full stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.block.bio import Bio, IOOp
from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.qos import QoSParams
from repro.mm.memory import MemoryManager
from repro.sim import Simulator
from repro.workloads.synthetic import ClosedLoopWorkload

SPEC = DeviceSpec(
    name="invdev",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=1e9,
    write_bw=1e9,
    sigma=0.0,
    nr_slots=64,
)

FIXED_QOS = QoSParams(
    read_lat_target=None, write_lat_target=None,
    vrate_min=1.0, vrate_max=1.0, period=0.025,
)


def make_stack(vrate=1.0):
    sim = Simulator()
    device = Device(sim, SPEC, np.random.default_rng(0))
    qos = QoSParams(
        read_lat_target=None, write_lat_target=None,
        vrate_min=vrate, vrate_max=vrate, period=0.025,
    )
    controller = IOCost(
        LinearCostModel(ModelParams.from_device_spec(SPEC)), qos=qos,
        initial_vrate=vrate,
    )
    layer = BlockLayer(sim, device, controller)
    return sim, layer, controller


class TestAccountingInvariants:
    def test_no_bios_lost(self):
        sim, layer, controller = make_stack()
        tree = CgroupTree()
        groups = [tree.create(f"g{i}", weight=50 * (i + 1)) for i in range(4)]
        for index, group in enumerate(groups):
            ClosedLoopWorkload(
                sim, layer, group, depth=8, stop_at=0.3, seed=index
            ).start()
        sim.run(until=0.5)
        controller.detach()
        queued = sum(len(s.waitq) for s in controller.tree.states())
        assert layer.submitted_ios == layer.completed_ios + layer.inflight + queued
        assert layer.inflight == 0  # everything drained after stop

    def test_completed_counts_sum_per_cgroup(self):
        sim, layer, controller = make_stack()
        tree = CgroupTree()
        a = tree.create("a")
        b = tree.create("b")
        ClosedLoopWorkload(sim, layer, a, depth=4, stop_at=0.2, seed=1).start()
        ClosedLoopWorkload(sim, layer, b, depth=4, stop_at=0.2, seed=2).start()
        sim.run(until=0.4)
        controller.detach()
        assert (
            sum(layer.completed_by_cgroup.values()) == layer.completed_ios
        )

    @given(vrate=st.floats(min_value=0.25, max_value=1.0))
    @settings(max_examples=10, deadline=None)
    def test_total_issue_bounded_by_vrate(self, vrate):
        """Total absolute cost issued never exceeds vtime generated."""
        sim, layer, controller = make_stack(vrate=vrate)
        tree = CgroupTree()
        group = tree.create("a")
        ClosedLoopWorkload(sim, layer, group, depth=32, stop_at=0.5, seed=1).start()
        sim.run(until=0.5)
        controller.detach()
        issued_cost = layer.completed_ios * (1 / SPEC.peak_rand_read_iops)
        generated = vrate * 0.5
        # Slack: budget cap allows one period of burst.
        assert issued_cost <= generated + controller.budget_cap + 0.01

    @given(
        w_high=st.integers(min_value=50, max_value=500),
        w_low=st.integers(min_value=50, max_value=500),
    )
    @settings(max_examples=8, deadline=None)
    def test_proportionality_follows_weights(self, w_high, w_low):
        sim, layer, controller = make_stack()
        tree = CgroupTree()
        high = tree.create("high", weight=w_high)
        low = tree.create("low", weight=w_low)
        ClosedLoopWorkload(sim, layer, high, depth=24, stop_at=0.5, seed=1).start()
        ClosedLoopWorkload(sim, layer, low, depth=24, stop_at=0.5, seed=2).start()
        sim.run(until=0.5)
        controller.detach()
        achieved = layer.completed_by_cgroup["high"] / max(
            1, layer.completed_by_cgroup["low"]
        )
        assert achieved == pytest.approx(w_high / w_low, rel=0.2)


class TestMemoryInvariants:
    def test_memory_conserved_through_swap_cycles(self):
        sim, layer, controller = make_stack()
        mm = MemoryManager(sim, layer, total_bytes=64 << 20, swap_bytes=1 << 30)
        tree = CgroupTree()
        a = tree.create("a")
        b = tree.create("b")

        def churn():
            yield from mm.alloc(a, 50 << 20)
            yield from mm.alloc(b, 30 << 20)
            yield from mm.touch(a, 20 << 20)
            yield from mm.touch(b, 10 << 20)

        proc = sim.process(churn())
        while not proc.done:
            sim.step()
        controller.detach()
        assert mm.state_of(a).total == 50 << 20
        assert mm.state_of(b).total == 30 << 20
        assert mm.resident_total <= mm.total_bytes
        assert mm.swapped_total <= mm.swap_bytes

    def test_swap_io_flows_through_block_layer(self):
        sim, layer, controller = make_stack()
        mm = MemoryManager(sim, layer, total_bytes=32 << 20, swap_bytes=1 << 30)
        tree = CgroupTree()
        a = tree.create("a")
        b = tree.create("b")

        def churn():
            yield from mm.alloc(a, 30 << 20)
            yield from mm.alloc(b, 20 << 20)

        proc = sim.process(churn())
        while not proc.done:
            sim.step()
        controller.detach()
        swapped = mm.swapped_total
        assert swapped > 0
        # Every swapped byte crossed the device as a write.
        assert layer.completed_bytes >= swapped


class TestVTimeInvariants:
    def test_local_vtime_monotone_per_group(self):
        sim, layer, controller = make_stack()
        tree = CgroupTree()
        group = tree.create("a")
        state = controller.tree.state_of(group)
        observations = []

        def sample():
            observations.append(state.local_vtime)
            if sim.now < 0.3:
                sim.schedule(0.01, sample)

        ClosedLoopWorkload(sim, layer, group, depth=8, stop_at=0.3, seed=1).start()
        sim.schedule(0.01, sample)
        sim.run(until=0.35)
        controller.detach()
        # Local vtime only moves forward while the group stays active.
        deltas = [b - a for a, b in zip(observations, observations[1:])]
        assert all(delta >= -1e-12 for delta in deltas)
