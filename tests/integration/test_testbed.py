"""Tests for the Testbed facade (and top-level package API)."""

import pytest

import repro
from repro.block.device import DeviceSpec
from repro.core.controller import IOCost
from repro.core.qos import QoSParams
from repro.testbed import Testbed, make_controller

FIXED_QOS = QoSParams(
    read_lat_target=None,
    write_lat_target=None,
    vrate_min=1.0,
    vrate_max=1.0,
    period=0.025,
)

FAST = DeviceSpec(
    name="tbdev",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=1e9,
    write_bw=1e9,
    sigma=0.0,
    nr_slots=64,
)


def test_package_exports():
    assert repro.__version__
    for name in ("IOCost", "Testbed", "QoSParams", "ModelParams", "profile_device"):
        assert hasattr(repro, name)


def test_device_by_catalogue_name():
    tb = Testbed(device="hdd", controller="none")
    assert tb.spec.name == "hdd"


def test_unknown_controller_rejected():
    with pytest.raises(ValueError):
        make_controller("cfq", FAST)


def test_quickstart_proportional_split():
    tb = Testbed(device=FAST, controller="iocost", qos=FIXED_QOS)
    high = tb.add_cgroup("workload.slice/high", weight=200)
    low = tb.add_cgroup("workload.slice/low", weight=100)
    tb.saturate(high, stop_at=0.5)
    tb.saturate(low, stop_at=0.5)
    tb.run(0.5)
    assert tb.iops(high) / tb.iops(low) == pytest.approx(2.0, rel=0.1)
    tb.detach()


def test_run_windows_reset_measurement():
    tb = Testbed(device=FAST, controller="none")
    group = tb.add_cgroup("workload.slice/a")
    tb.saturate(group, stop_at=0.2)
    tb.run(0.2)
    first = tb.iops(group)
    tb.run(0.2)  # workload stopped: fresh window sees ~nothing
    assert tb.iops(group) < first / 10


def test_set_weight_routes_through_iocost():
    tb = Testbed(device=FAST, controller="iocost", qos=FIXED_QOS)
    assert isinstance(tb.controller, IOCost)
    group = tb.add_cgroup("workload.slice/a", weight=100)
    tb.set_weight(group, 300)
    assert group.weight == 300


def test_memory_manager_optional():
    assert Testbed(device=FAST, controller="none").mm is None
    tb = Testbed(device=FAST, controller="none", mem_bytes=1 << 28)
    assert tb.mm is not None
    assert tb.mm.total_bytes == 1 << 28


def test_iops_without_run_raises():
    tb = Testbed(device=FAST, controller="none")
    group = tb.add_cgroup("workload.slice/a")
    with pytest.raises(ValueError):
        tb.iops(group)


def test_latency_percentile_exposed():
    tb = Testbed(device=FAST, controller="none")
    group = tb.add_cgroup("workload.slice/a")
    tb.saturate(group, stop_at=0.1)
    tb.run(0.1)
    assert tb.latency_percentile(group, 50) > 0
