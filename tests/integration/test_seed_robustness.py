"""Seed-robustness checks: headline results hold across RNG seeds."""

import numpy as np
import pytest

from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.core.controller import IOCost
from repro.core.cost_model import LinearCostModel, ModelParams
from repro.core.qos import QoSParams
from repro.sim import Simulator
from repro.workloads.synthetic import ClosedLoopWorkload

# A noisy device (lognormal service times + tails), unlike most unit tests.
NOISY = DeviceSpec(
    name="noisy",
    parallelism=8,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=1e9,
    write_bw=1e9,
    sigma=0.3,
    tail_prob=0.005,
    tail_scale=15.0,
    nr_slots=128,
)


def split_ratio(seed: int) -> float:
    sim = Simulator()
    device = Device(sim, NOISY, np.random.default_rng(seed))
    controller = IOCost(
        LinearCostModel(ModelParams.from_device_spec(NOISY)),
        qos=QoSParams(
            read_lat_target=800e-6, read_pct=90,
            vrate_min=0.3, vrate_max=1.2, period=0.025,
        ),
    )
    layer = BlockLayer(sim, device, controller)
    tree = CgroupTree()
    high = tree.create("high", weight=200)
    low = tree.create("low", weight=100)
    ClosedLoopWorkload(sim, layer, high, depth=48, stop_at=1.0, seed=seed + 1).start()
    ClosedLoopWorkload(sim, layer, low, depth=48, stop_at=1.0, seed=seed + 2).start()
    sim.run(until=1.0)
    controller.detach()
    return layer.completed_by_cgroup["high"] / layer.completed_by_cgroup["low"]


@pytest.mark.parametrize("seed", [1, 42, 1337])
def test_proportional_split_robust_to_seed(seed):
    assert split_ratio(seed) == pytest.approx(2.0, rel=0.15)


def test_determinism_same_seed_same_result():
    assert split_ratio(7) == split_ratio(7)
