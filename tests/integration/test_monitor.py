"""Integration tests for the live monitor over a fig13-style vrate run."""

import io
import json

import pytest

from repro.block.device_models import SSD_NEW
from repro.obs.snapshot import MonitorSnapshot, load_snapshots, render_snapshot
from repro.testbed import Testbed
from repro.tools import monitor as monitor_cli
from repro.tools.monitor import Monitor

DURATION = 1.5


def run_monitored(stream=None, with_monitor=True, seed=9):
    bed = Testbed(SSD_NEW.scaled(0.1), "iocost", seed=seed)
    high = bed.add_cgroup("workload.slice/high", weight=200)
    low = bed.add_cgroup("workload.slice/low", weight=100)
    bed.saturate(high, depth=32, stop_at=DURATION)
    bed.saturate(low, depth=32, stop_at=DURATION)
    mon = Monitor(bed, stream=stream).start() if with_monitor else None
    bed.sim.run(until=DURATION + 0.1)
    if mon is not None:
        mon.stop()
    bed.controller.detach()
    return bed, mon


class TestCapture:
    def test_per_period_snapshots(self):
        bed, mon = run_monitored()
        # One snapshot per planning period over the run.
        expected = (DURATION + 0.1) / bed.controller.qos.period
        assert len(mon.snapshots) == pytest.approx(expected, abs=2)
        snap = mon.snapshots[-1]
        assert snap.controller == "iocost"
        assert snap.device == "ssd_new-x0.1"
        assert snap.period == bed.controller.qos.period
        assert snap.vrate > 0
        assert -16 <= snap.busy_level <= 16

    def test_group_rows_have_required_keys(self):
        _, mon = run_monitored()
        # Mid-run: the workloads are still active (they stop at DURATION and
        # idle groups are deactivated after a full quiet period).
        mid = mon.snapshots[len(mon.snapshots) // 2].groups["workload.slice/high"]
        for key in ("hweight", "weight", "usage_pct", "usage_delta", "debt_ms",
                    "wait_ms", "delay_ms", "queued", "active",
                    "rbytes", "rios", "cost.usage", "cost.vrate"):
            assert key in mid, key
        assert mid["active"] == 1.0
        assert mid["weight"] == 200
        assert 0 < mid["hweight"] <= 1.0
        # The saturating group actually used device time this period.
        assert mid["usage_pct"] > 0

    def test_jsonl_stream_and_reload(self):
        stream = io.StringIO()
        _, mon = run_monitored(stream=stream)
        stream.seek(0)
        loaded = load_snapshots(stream)
        assert len(loaded) == len(mon.snapshots)
        assert loaded[-1] == mon.snapshots[-1]
        # Every line is standalone JSON with the headline fields.
        stream.seek(0)
        first = json.loads(stream.readline())
        assert {"time", "vrate", "busy_level", "groups"} <= set(first)

    def test_monitor_does_not_change_results(self):
        """Attaching the monitor must leave the simulation byte-identical."""

        def fingerprint(with_monitor):
            bed, _ = run_monitored(with_monitor=with_monitor)
            return json.dumps(
                {
                    "completed": bed.layer.completed_by_cgroup,
                    "bytes": bed.layer.bytes_by_cgroup,
                    "vrate": bed.controller.vrate,
                },
                sort_keys=True,
            ).encode()

        assert fingerprint(False) == fingerprint(True)


class TestRendering:
    def test_render_snapshot_format(self):
        _, mon = run_monitored()
        text = render_snapshot(mon.snapshots[-1])
        assert "vrate=" in text and "busy=" in text
        assert "workload.slice/high" in text
        assert "hweight%" in text
        assert mon.render(last=2).count("vrate=") == 2

    def test_cli_rerenders_saved_stream(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        with open(path, "w") as stream:
            run_monitored(stream=stream)
        assert monitor_cli.main([str(path), "--last", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("vrate=") == 3
        assert "workload.slice/low" in out

    def test_cli_empty_stream_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert monitor_cli.main([str(path)]) == 1

    def test_cli_json_mode_emits_jsonl(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        with open(path, "w") as stream:
            run_monitored(stream=stream)
        assert monitor_cli.main([str(path), "--last", "2", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        payloads = [json.loads(line) for line in lines]
        assert all("vrate" in p and "groups" in p for p in payloads)
        # --json output is itself a loadable monitor stream (lossless).
        reparsed = tmp_path / "reparsed.jsonl"
        reparsed.write_text("\n".join(lines) + "\n")
        assert monitor_cli.main([str(reparsed)]) == 0


class TestSnapshotFormat:
    def test_roundtrip(self):
        snap = MonitorSnapshot(
            time=1.0, device="d", controller="iocost", period=0.05,
            vrate=1.2, busy_level=-3,
            groups={"a": {"hweight": 0.5, "usage_pct": 40.0}},
        )
        assert MonitorSnapshot.from_json(snap.to_json()) == snap

    def test_monitor_rejects_bad_interval(self):
        bed, _ = run_monitored(with_monitor=False)
        with pytest.raises(ValueError):
            Monitor(bed, interval=0.0)
