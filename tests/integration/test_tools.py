"""Tests for the command-line tools."""

import pytest

from repro.tools import compare, profile, tune


class TestProfileTool:
    def test_profiles_catalogued_device(self, capsys):
        code = profile.main(
            ["ssd_old", "--read-duration", "0.05", "--write-duration", "0.1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "io.cost.model configuration" in out
        assert "rbps=" in out
        assert "rrandiops=" in out

    def test_scale_flag(self, capsys):
        code = profile.main(
            ["hdd", "--scale", "10", "--read-duration", "0.05", "--write-duration", "0.1"]
        )
        assert code == 0
        assert "hdd-x10" in capsys.readouterr().out

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            profile.main(["zipdrive"])


class TestTuneTool:
    def test_sweeps_and_prints_bounds(self, capsys):
        code = tune.main(
            [
                "ssd_old", "--scale", "0.5",
                "--candidates", "0.5", "1.0",
                "--duration", "2.0", "--mem-mb", "48",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "io.cost.qos bounds" in out
        assert "vrate_min=" in out


class TestCompareTool:
    def test_compares_all_mechanisms(self, capsys):
        code = compare.main(["ssd_old", "--scale", "0.2", "--duration", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("none", "mq-deadline", "kyber", "blk-throttle", "bfq",
                      "iolatency", "iocost"):
            assert name in out
        assert "ratio" in out
