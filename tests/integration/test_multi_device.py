"""Acceptance tests for multi-device machines.

One cgroup tree, several block devices, one controller instance per device
— the kernel's per-device iocost instantiation.  Covers the PR's
acceptance criteria: independent per-device controllers, per-device
io.stat, swap routed to a second device, unchanged single-device API, and
topology-stable determinism (adding an idle device never perturbs the
streams of existing ones).
"""

import pytest

from repro.block.device import DeviceSpec
from repro.block.device_models import SSD_NEW
from repro.core.qos import QoSParams
from repro.obs.iostat import IOStat
from repro.testbed import Testbed
from repro.tools.monitor import Monitor

MB = 1024 * 1024

FIXED_QOS = QoSParams(
    read_lat_target=None,
    write_lat_target=None,
    vrate_min=1.0,
    vrate_max=1.0,
    period=0.025,
)

FAST = DeviceSpec(
    name="mdev",
    parallelism=4,
    srv_rand_read=100e-6,
    srv_seq_read=100e-6,
    srv_rand_write=100e-6,
    srv_seq_write=100e-6,
    read_bw=1e9,
    write_bw=1e9,
    sigma=0.0,
    nr_slots=64,
)


def run_op(bed, gen):
    proc = bed.sim.process(gen)
    while not proc.done:
        if not bed.sim.step():
            raise AssertionError("simulation drained before operation finished")
    return proc


class TestConstruction:
    def test_single_device_api_unchanged(self):
        bed = Testbed(device=FAST, controller="iocost", qos=FIXED_QOS)
        assert len(bed.devices) == 1
        assert list(bed.devices) == ["vda"]
        assert bed.devices.layer("vda") is bed.layer
        assert bed.layer.dev == "8:0"
        assert bed.controller is bed.layer.controller
        assert bed.device is bed.layer.device
        assert bed.spec is bed.device.spec
        bed.detach()

    def test_two_devices_get_stable_devnos(self):
        bed = Testbed(
            devices={"vda": FAST, "vdb": SSD_NEW.scaled(0.1)},
            controllers={"vda": "iocost", "vdb": "iocost"},
            qos=FIXED_QOS,
        )
        assert list(bed.devices) == ["vda", "vdb"]
        assert bed.devices.layer("vda").dev == "8:0"
        assert bed.devices.layer("vdb").dev == "8:16"
        # Distinct controller instances over one shared cgroup tree / clock.
        vda, vdb = bed.controller_of("vda"), bed.controller_of("vdb")
        assert vda is not vdb
        assert bed.devices.layer("vda").sim is bed.devices.layer("vdb").sim
        assert bed.spec_of("vdb").name == "ssd_new-x0.1"
        # The aliases point at the first (data) device.
        assert bed.layer is bed.devices.layer("vda")
        bed.detach()

    def test_shared_controller_instance_rejected(self):
        from repro.controllers.noop import NoopController

        with pytest.raises(ValueError):
            Testbed(
                devices={"vda": FAST, "vdb": FAST},
                controller=NoopController(),
            )

    def test_swap_device_requires_memory(self):
        with pytest.raises(ValueError):
            Testbed(
                devices={"vda": FAST, "vdb": FAST},
                controllers={"vda": "none", "vdb": "none"},
                swap_device="vdb",
            )


class TestIndependentControllers:
    def test_load_on_one_device_leaves_the_other_idle(self):
        bed = Testbed(
            devices={"vda": FAST, "vdb": FAST},
            controllers={"vda": "iocost", "vdb": "iocost"},
            qos=FIXED_QOS,
            seed=5,
        )
        app = bed.add_cgroup("workload.slice/app")
        bed.saturate(app, device="vda", depth=8, stop_at=0.5)
        bed.run(0.5)

        assert bed.iops(app, device="vda") > 0
        assert bed.iops(app, device="vdb") == 0
        # Each device's iocost accumulated its own per-cgroup state.
        assert bed.controller_of("vda").cost_stat(app)["cost.usage"] > 0
        assert bed.controller_of("vdb").cost_stat(app)["cost.usage"] == 0
        bed.detach()

    def test_per_device_vrates_move_independently(self):
        bed = Testbed(
            devices={"vda": SSD_NEW.scaled(0.1), "vdb": SSD_NEW.scaled(0.1)},
            controllers={"vda": "iocost", "vdb": "iocost"},
            seed=9,
        )
        app = bed.add_cgroup("workload.slice/app")
        bed.saturate(app, device="vda", depth=32, stop_at=1.0)
        bed.run(1.0)

        vda_series = bed.controller_of("vda").vrate_ctl.vrate_series.values
        vdb_series = bed.controller_of("vdb").vrate_ctl.vrate_series.values
        # vda's QoS reacted to its own load and left 1.0; idle vdb did not.
        assert set(vda_series) != {1.0}
        assert set(vdb_series) <= {1.0}
        assert bed.controller_of("vda").vrate != bed.controller_of("vdb").vrate
        bed.detach()


class TestPerDeviceIOStat:
    def test_one_line_per_device_per_cgroup(self):
        bed = Testbed(
            devices={"vda": FAST, "vdb": FAST},
            controllers={"vda": "iocost", "vdb": "iocost"},
            qos=FIXED_QOS,
            seed=1,
        )
        a = bed.add_cgroup("workload.slice/a")
        b = bed.add_cgroup("workload.slice/b")
        bed.saturate(a, device="vda", depth=4, stop_at=0.3)
        bed.saturate(b, device="vdb", depth=4, stop_at=0.3)
        bed.run(0.4)
        bed.detach()

        iostat = IOStat(
            bed.cgroups, controllers=bed.devices.controllers_by_devno()
        )
        for path in ("workload.slice/a", "workload.slice/b", "workload.slice"):
            lines = iostat.render(path).splitlines()
            assert [line.split()[0] for line in lines] == ["8:0", "8:16"]
        entry_a = iostat.device_of("workload.slice/a")
        entry_b = iostat.device_of("workload.slice/b")
        assert entry_a["8:0"]["rios"] > 0 and entry_a["8:16"]["rios"] == 0
        assert entry_b["8:16"]["rios"] > 0 and entry_b["8:0"]["rios"] == 0


class TestSwapOnSecondDevice:
    def test_swap_io_lands_only_on_the_swap_device(self):
        bed = Testbed(
            devices={"vda": FAST, "vdb": FAST},
            controllers={"vda": "none", "vdb": "none"},
            mem_bytes=64 * MB,
            swap_bytes=256 * MB,
            swap_device="vdb",
            seed=2,
        )
        assert bed.mm.swap_layer is bed.devices.layer("vdb")
        leaker = bed.add_cgroup("workload.slice/leaker")
        app = bed.add_cgroup("workload.slice/app")
        run_op(bed, bed.mm.alloc(leaker, 60 * MB))
        run_op(bed, bed.mm.alloc(app, 10 * MB))  # forces reclaim -> swap-out

        assert bed.mm.state_of(leaker).swapped_out_total > 0
        # Under an mm-unaware controller swap writes are charged to root
        # (the reclaim context); either way they land on the swap device's
        # per-device record only — never on the data device.
        root = bed.cgroups.root
        assert root.stats.device("8:16").wbytes >= bed.mm.state_of(leaker).swapped_out_total
        assert root.stats.device("8:0").wbytes == 0
        assert root.stats.device("8:0").rbytes == 0
        bed.detach()

    def test_swap_charged_to_owner_on_swap_device_under_iocost(self):
        bed = Testbed(
            devices={"vda": FAST, "vdb": FAST},
            controllers={"vda": "iocost", "vdb": "iocost"},
            qos=FIXED_QOS,
            mem_bytes=64 * MB,
            swap_bytes=256 * MB,
            swap_device="vdb",
            seed=2,
        )
        leaker = bed.add_cgroup("workload.slice/leaker")
        app = bed.add_cgroup("workload.slice/app")
        run_op(bed, bed.mm.alloc(leaker, 60 * MB))
        run_op(bed, bed.mm.alloc(app, 10 * MB))  # forces reclaim -> swap-out

        # iocost is mm-aware: swap writes are charged to the page owner,
        # and they appear only in the swap device's per-device record.
        assert leaker.stats.device("8:16").wbytes > 0
        assert leaker.stats.device("8:0").wbytes == 0
        assert leaker.stats.device("8:0").rbytes == 0
        bed.detach()


class TestTopologyDeterminism:
    @staticmethod
    def fingerprint(bed, cgroup):
        bed.saturate(cgroup, device="vda", depth=8, stop_at=0.5)
        bed.run(0.5)
        layer = bed.devices.layer("vda")
        result = (
            dict(layer.completed_by_cgroup),
            dict(layer.bytes_by_cgroup),
        )
        bed.detach()
        return result

    def test_idle_second_device_does_not_perturb_the_first(self):
        single = Testbed(
            devices={"vda": FAST}, controllers={"vda": "iocost"},
            qos=FIXED_QOS, seed=7,
        )
        dual = Testbed(
            devices={"vda": FAST, "vdb": FAST},
            controllers={"vda": "iocost", "vdb": "iocost"},
            qos=FIXED_QOS, seed=7,
        )
        fp_single = self.fingerprint(single, single.add_cgroup("workload.slice/app"))
        fp_dual = self.fingerprint(dual, dual.add_cgroup("workload.slice/app"))
        assert fp_single == fp_dual

    def test_legacy_constructor_matches_explicit_vda(self):
        legacy = Testbed(device=FAST, controller="iocost", qos=FIXED_QOS, seed=7)
        explicit = Testbed(
            devices={"vda": FAST}, controllers={"vda": "iocost"},
            qos=FIXED_QOS, seed=7,
        )
        fp_legacy = self.fingerprint(legacy, legacy.add_cgroup("workload.slice/app"))
        fp_explicit = self.fingerprint(
            explicit, explicit.add_cgroup("workload.slice/app")
        )
        assert fp_legacy == fp_explicit


class TestMonitorStreams:
    def test_one_stream_per_device(self):
        bed = Testbed(
            devices={"vda": FAST, "vdb": FAST},
            controllers={"vda": "iocost", "vdb": "iocost"},
            qos=FIXED_QOS,
            seed=3,
        )
        app = bed.add_cgroup("workload.slice/app")
        bed.saturate(app, device="vda", depth=4, stop_at=0.3)
        mon = Monitor(bed).start()
        bed.sim.run(until=0.4)
        mon.stop()
        bed.detach()

        vda_snaps = mon.snapshots_for("vda")
        vdb_snaps = mon.snapshots_for("vdb")
        assert len(vda_snaps) == len(vdb_snaps) > 0
        assert len(mon.snapshots) == len(vda_snaps) + len(vdb_snaps)
        assert {snap.dev for snap in vda_snaps} == {"8:0"}
        assert {snap.dev for snap in vdb_snaps} == {"8:16"}
        # The loaded device saw the app's IO; the idle one did not.
        last = vda_snaps[-1].groups["workload.slice/app"]
        assert last["rios"] > 0
        assert vdb_snaps[-1].groups["workload.slice/app"]["rios"] == 0

    def test_device_restricted_monitor(self):
        bed = Testbed(
            devices={"vda": FAST, "vdb": FAST},
            controllers={"vda": "iocost", "vdb": "iocost"},
            qos=FIXED_QOS,
            seed=4,
        )
        app = bed.add_cgroup("workload.slice/app")
        bed.saturate(app, device="vdb", depth=4, stop_at=0.2)
        mon = Monitor(bed, device="vdb").start()
        bed.sim.run(until=0.3)
        mon.stop()
        bed.detach()
        assert mon.snapshots
        assert {snap.dev for snap in mon.snapshots} == {"8:16"}
