"""Determinism regressions for the hot-path refactor (docs/PERF.md).

The callback completion fast path and the chunked RNG pre-draws are pure
performance changes: with the same seed the simulation must produce
byte-identical traces whether the fast path is on or off, and whether a
``repro.exp`` sweep runs in one process or four.
"""

import io

from repro.exp.runner import run_sweep
from repro.exp.spec import ExperimentSpec
from repro.exp.store import TRACE_FILE, ArtifactStore
from repro.obs.trace import TRACE, TraceBuffer
from repro.testbed import Testbed


def _trace_bytes(fast_completions: bool) -> bytes:
    """Full trace of a fixed two-cgroup contention run, as JSONL bytes."""
    TRACE.reset()
    try:
        bed = Testbed(device="ssd_new", controller="iocost", seed=7)
        high = bed.add_cgroup("high", weight=200)
        low = bed.add_cgroup("low", weight=100)
        buffer = TraceBuffer().attach(TRACE)
        bed.saturate(high, depth=16, fast_completions=fast_completions)
        bed.saturate(low, depth=8, fast_completions=fast_completions)
        bed.run(0.2)
        buffer.detach()
        bed.detach()
        stream = io.StringIO()
        buffer.save(stream)
        return stream.getvalue().encode()
    finally:
        TRACE.reset()


def test_callback_fast_path_trace_is_byte_identical():
    fast = _trace_bytes(fast_completions=True)
    slow = _trace_bytes(fast_completions=False)
    assert fast, "rig produced an empty trace"
    assert fast == slow


TRACED_SPEC = ExperimentSpec(
    name="determinism",
    kind="testbed",
    base={
        "device_scale": 0.05,
        "duration": 0.1,
        "cgroups": {"high": 200, "low": 100},
        "workloads": [
            {"cgroup": "high", "type": "saturate", "depth": 8},
            {"cgroup": "low", "type": "saturate", "depth": 4},
        ],
        "trace_events": ["bio_complete", "vrate_adjust", "qos_period"],
    },
    grid={"device": ("ssd_new", "ssd_old")},
)


def test_exp_trace_identical_across_worker_counts(tmp_path):
    store_serial = ArtifactStore(tmp_path / "serial")
    store_parallel = ArtifactStore(tmp_path / "parallel")
    report_serial = run_sweep(TRACED_SPEC, store_serial, workers=1)
    report_parallel = run_sweep(TRACED_SPEC, store_parallel, workers=4)
    assert report_serial.failures == report_parallel.failures == 0
    assert report_serial.runs_total == 2
    for outcome in report_serial.outcomes:
        run_hash = outcome.run.run_hash
        serial = store_serial.path(run_hash, TRACE_FILE).read_bytes()
        parallel = store_parallel.path(run_hash, TRACE_FILE).read_bytes()
        assert serial, f"run {run_hash} captured no trace"
        assert serial == parallel
