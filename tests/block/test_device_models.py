"""Tests for the device catalogue."""

import pytest

from repro.block.device_models import (
    DEVICE_CATALOG,
    SSD_ENTERPRISE,
    SSD_NEW,
    SSD_OLD,
    get_device_spec,
)


def test_catalogue_contains_all_families():
    names = set(DEVICE_CATALOG)
    assert {"ssd_old", "ssd_new", "ssd_enterprise", "hdd"} <= names
    assert {f"fleet_{letter}" for letter in "abcdefgh"} <= names
    assert {"ebs_gp3", "ebs_io2", "gcp_pd_balanced", "gcp_pd_ssd"} <= names


def test_get_device_spec_lookup():
    assert get_device_spec("hdd").name == "hdd"
    with pytest.raises(KeyError):
        get_device_spec("floppy")


def test_enterprise_hits_paper_peak_iops():
    # Fig 9 uses "an SSD with maximum read IOPS of 750K".
    assert SSD_ENTERPRISE.peak_rand_read_iops == pytest.approx(750_000, rel=0.02)


def test_lab_generations_ordered():
    assert SSD_OLD.peak_rand_read_iops < SSD_NEW.peak_rand_read_iops
    assert SSD_NEW.peak_rand_read_iops < SSD_ENTERPRISE.peak_rand_read_iops


def test_fleet_anchors_match_paper_description():
    # H: high IOPS at low latency; G: low IOPS, relatively low latency;
    # A: moderate IOPS with higher latency.
    fleet = {name: spec for name, spec in DEVICE_CATALOG.items() if name.startswith("fleet_")}
    h, g, a = fleet["fleet_h"], fleet["fleet_g"], fleet["fleet_a"]
    iops = {name: spec.peak_rand_read_iops for name, spec in fleet.items()}
    latency = {name: spec.srv_rand_read for name, spec in fleet.items()}
    assert iops["fleet_h"] == max(iops.values())
    assert iops["fleet_g"] == min(iops.values())
    assert latency["fleet_h"] == min(latency.values())
    assert latency["fleet_a"] > latency["fleet_b"]
    assert h.peak_rand_read_iops > 10 * g.peak_rand_read_iops
    assert a.srv_rand_read > 2 * g.srv_rand_read


def test_hdd_random_much_slower_than_sequential():
    hdd = get_device_spec("hdd")
    assert hdd.parallelism == 1
    assert hdd.srv_rand_read > 100 * hdd.srv_seq_read


def test_remote_volumes_have_caps_and_rtt():
    for name in ("ebs_gp3", "ebs_io2", "gcp_pd_balanced", "gcp_pd_ssd"):
        spec = get_device_spec(name)
        assert spec.iops_limit > 0
        assert spec.network_rtt > 0
    assert get_device_spec("ebs_gp3").iops_limit == 3000
    assert get_device_spec("ebs_io2").iops_limit == 64000
