"""Tests for device queueing policies: read priority, NCQ, aging."""

import numpy as np
import pytest

from repro.block.bio import Bio, IOOp
from repro.block.device import Device, DeviceSpec
from repro.cgroup import CgroupTree
from repro.sim import Simulator


def make_device(sim, rotational=False, parallelism=1, **overrides):
    spec = dict(
        name="q",
        parallelism=parallelism,
        srv_rand_read=1e-3,
        srv_seq_read=100e-6,
        srv_rand_write=1e-3,
        srv_seq_write=100e-6,
        read_bw=1e9,
        write_bw=1e9,
        sigma=0.0,
        rotational=rotational,
        nr_slots=64,
    )
    spec.update(overrides)
    return Device(sim, DeviceSpec(**spec), np.random.default_rng(0))


@pytest.fixture
def env():
    sim = Simulator()
    group = CgroupTree().create("g")
    return sim, group


class TestReadPriority:
    def test_reads_jump_queued_writes(self, env):
        sim, group = env
        device = make_device(sim)
        order = []
        device.on_complete = lambda bio: order.append(bio.op)
        # One in service, then many writes, then one read.
        filler = Bio(IOOp.WRITE, 4096, 1, group)
        filler.issue_time = sim.now
        device.submit(filler)
        for index in range(5):
            bio = Bio(IOOp.WRITE, 4096, 100 * index + 3, group)
            bio.issue_time = sim.now
            device.submit(bio)
        read = Bio(IOOp.READ, 4096, 999, group)
        read.issue_time = sim.now
        device.submit(read)
        sim.run()
        # The read is serviced right after the in-flight write.
        assert order[1] is IOOp.READ

    def test_write_starvation_limit(self, env):
        sim, group = env
        device = make_device(sim)
        served = []
        device.on_complete = lambda bio: served.append(bio.op)

        outstanding = {"reads": 0}

        def keep_reads_coming(bio=None):
            # Closed-loop read pressure: always one read queued.
            if sim.now < 0.05:
                read = Bio(IOOp.READ, 4096, 5555, group)
                read.issue_time = sim.now
                device.submit(read)

        device.on_complete = lambda bio: (served.append(bio.op), keep_reads_coming())[0]
        first = Bio(IOOp.WRITE, 4096, 1, group)
        first.issue_time = sim.now
        device.submit(first)
        for index in range(6):
            write = Bio(IOOp.WRITE, 4096, 100 * index, group)
            write.issue_time = sim.now
            device.submit(write)
        keep_reads_coming()
        sim.run(until=0.1)
        # Writes are not starved forever: all six eventually completed.
        assert sum(1 for op in served if op is IOOp.WRITE) >= 6


class TestRotationalNCQ:
    def test_shortest_seek_first(self, env):
        sim, group = env
        device = make_device(sim, rotational=True)
        order = []
        device.on_complete = lambda bio: order.append(bio.sector)
        # In service at sector 0 (head ends near 8).
        first = Bio(IOOp.READ, 4096, 0, group)
        first.issue_time = sim.now
        device.submit(first)
        far = Bio(IOOp.READ, 4096, 1_000_000, group)
        far.issue_time = sim.now
        near = Bio(IOOp.READ, 4096, 16, group)
        near.issue_time = sim.now
        device.submit(far)
        device.submit(near)
        sim.run()
        assert order == [0, 16, 1_000_000]

    def test_aging_prevents_starvation(self, env):
        sim, group = env
        device = make_device(sim, rotational=True)
        completions = []
        stop = {"at": 0.2}

        def resubmit_near(bio):
            completions.append(bio.sector)
            if sim.now < stop["at"]:
                near = Bio(IOOp.READ, 4096, bio.end_sector, group)
                near.issue_time = sim.now
                device.submit(near)

        device.on_complete = resubmit_near
        stream = Bio(IOOp.READ, 4096, 0, group)
        stream.issue_time = sim.now
        device.submit(stream)
        far = Bio(IOOp.READ, 4096, 10_000_000, group)
        far.issue_time = sim.now
        device.submit(far)
        sim.run(until=0.2)
        # The far request is serviced within the aging limit despite a
        # continuous near-stream (pure SSTF would starve it forever).
        assert 10_000_000 in completions
        served_at = completions.index(10_000_000)
        assert served_at > 0  # the stream did run first

    def test_sequentiality_decided_at_service_time(self, env):
        sim, group = env
        device = make_device(sim, rotational=True)
        # Submit interleaved: far bio first, then the contiguous one.
        first = Bio(IOOp.READ, 4096, 0, group)
        first.issue_time = sim.now
        device.submit(first)
        far = Bio(IOOp.READ, 4096, 500_000, group)
        far.issue_time = sim.now
        cont = Bio(IOOp.READ, 4096, first.end_sector, group)
        cont.issue_time = sim.now
        device.submit(far)
        device.submit(cont)
        sim.run()
        # NCQ serviced `cont` right after `first`, so it counts sequential
        # even though `far` arrived before it.
        assert cont.device_sequential
        assert not far.device_sequential
