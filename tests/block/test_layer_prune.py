"""Block-layer bookkeeping pruning on cgroup removal.

``BlockLayer.observe_tree`` registers a :meth:`CgroupTree.add_remove_hook`
callback so per-cgroup accounting dicts (``completed_by_cgroup``,
``bytes_by_cgroup``, ``cgroup_latency``) never accumulate entries for
removed cgroups over a long-running machine: completion/byte counters fold
into the parent (mirroring rstat), latency windows are simply dropped.
"""

import numpy as np

from repro.block.bio import Bio, IOOp
from repro.block.device import Device, DeviceSpec
from repro.block.layer import BlockLayer
from repro.cgroup import CgroupTree
from repro.controllers.noop import NoopController
from repro.sim import Simulator

SPEC = DeviceSpec(
    name="quiet",
    parallelism=8,
    srv_rand_read=100e-6,
    srv_seq_read=90e-6,
    srv_rand_write=120e-6,
    srv_seq_write=100e-6,
    read_bw=1e9,
    write_bw=1e9,
    sigma=0.0,
)


def make_stack():
    sim = Simulator()
    tree = CgroupTree()
    device = Device(sim, SPEC, np.random.default_rng(0))
    layer = BlockLayer(sim, device, NoopController()).observe_tree(tree)
    return sim, tree, layer


class TestPruneOnRemoval:
    def test_counters_fold_into_parent(self):
        sim, tree, layer = make_stack()
        tree.create("workload.slice")
        child = tree.create("workload.slice/job")
        for i in range(3):
            layer.submit(Bio(IOOp.READ, 4096, 8 * i, child))
        sim.run(until=1.0)
        assert layer.completed_by_cgroup["workload.slice/job"] == 3
        assert layer.bytes_by_cgroup["workload.slice/job"] == 3 * 4096
        assert "workload.slice/job" in layer.cgroup_latency

        tree.remove("workload.slice/job")

        assert "workload.slice/job" not in layer.completed_by_cgroup
        assert "workload.slice/job" not in layer.bytes_by_cgroup
        assert "workload.slice/job" not in layer.cgroup_latency
        # History survives on the parent, rstat-style.
        assert layer.completed_by_cgroup["workload.slice"] == 3
        assert layer.bytes_by_cgroup["workload.slice"] == 3 * 4096

    def test_fold_accumulates_onto_parent_counts(self):
        sim, tree, layer = make_stack()
        parent = tree.create("workload.slice")
        child = tree.create("workload.slice/job")
        layer.submit(Bio(IOOp.READ, 4096, 8, parent))
        layer.submit(Bio(IOOp.WRITE, 8192, 16, child))
        sim.run(until=1.0)

        tree.remove("workload.slice/job")

        assert layer.completed_by_cgroup["workload.slice"] == 2
        assert layer.bytes_by_cgroup["workload.slice"] == 4096 + 8192
        # The parent's own latency window is untouched by the fold.
        assert "workload.slice" in layer.cgroup_latency

    def test_removing_idle_cgroup_is_a_noop(self):
        sim, tree, layer = make_stack()
        tree.create("idle")
        tree.remove("idle")
        assert layer.completed_by_cgroup == {}
        assert layer.bytes_by_cgroup == {}
        assert layer.cgroup_latency == {}

    def test_cascaded_removal_reaches_grandparent(self):
        sim, tree, layer = make_stack()
        tree.create("a")
        tree.create("a/b")
        grandchild = tree.create("a/b/c")
        layer.submit(Bio(IOOp.READ, 4096, 8, grandchild))
        sim.run(until=1.0)

        tree.remove("a/b/c")
        assert layer.completed_by_cgroup["a/b"] == 1
        tree.remove("a/b")
        assert layer.completed_by_cgroup["a"] == 1
        assert "a/b" not in layer.completed_by_cgroup

    def test_every_observing_layer_prunes(self):
        sim = Simulator()
        tree = CgroupTree()
        layers = []
        for index in range(2):
            device = Device(
                sim, SPEC, np.random.default_rng(index), devno=f"8:{16 * index}"
            )
            layers.append(
                BlockLayer(sim, device, NoopController()).observe_tree(tree)
            )
        tree.create("p")
        child = tree.create("p/c")
        layers[0].submit(Bio(IOOp.READ, 4096, 8, child))
        layers[1].submit(Bio(IOOp.WRITE, 8192, 8, child))
        sim.run(until=1.0)

        tree.remove("p/c")

        assert layers[0].completed_by_cgroup == {"p": 1}
        assert layers[0].bytes_by_cgroup == {"p": 4096}
        assert layers[1].completed_by_cgroup == {"p": 1}
        assert layers[1].bytes_by_cgroup == {"p": 8192}
