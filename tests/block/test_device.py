"""Unit tests for the simulated device."""

import numpy as np
import pytest

from repro.block.bio import Bio, IOOp
from repro.block.device import Device, DeviceSpec
from repro.cgroup import CgroupTree
from repro.sim import Simulator


def make_spec(**overrides):
    base = dict(
        name="test",
        parallelism=4,
        srv_rand_read=100e-6,
        srv_seq_read=80e-6,
        srv_rand_write=120e-6,
        srv_seq_write=100e-6,
        read_bw=1e9,
        write_bw=0.8e9,
        sigma=0.0,
    )
    base.update(overrides)
    return DeviceSpec(**base)


@pytest.fixture
def env():
    sim = Simulator()
    tree = CgroupTree()
    group = tree.create("w")
    return sim, group


def make_device(sim, spec):
    return Device(sim, spec, np.random.default_rng(0))


class TestSpecValidation:
    def test_peak_rates(self):
        spec = make_spec()
        assert spec.peak_rand_read_iops == pytest.approx(4 / 100e-6)
        assert spec.peak_seq_read_iops == pytest.approx(4 / 80e-6)
        assert spec.peak_rand_write_iops == pytest.approx(4 / 120e-6)
        assert spec.peak_seq_write_iops == pytest.approx(4 / 100e-6)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("parallelism", 0),
            ("srv_rand_read", 0.0),
            ("srv_seq_write", -1.0),
            ("read_bw", 0.0),
            ("nr_slots", 0),
        ],
    )
    def test_invalid_specs_rejected(self, field, value):
        with pytest.raises(ValueError):
            make_spec(**{field: value})

    def test_scaled_preserves_peaks_ratio(self):
        spec = make_spec()
        fast = spec.scaled(10.0)
        assert fast.peak_rand_read_iops == pytest.approx(10 * spec.peak_rand_read_iops)
        assert fast.read_bw == pytest.approx(10 * spec.read_bw)


class TestServiceModel:
    def test_single_read_latency_is_base_service(self, env):
        sim, group = env
        device = make_device(sim, make_spec())
        done = []
        device.on_complete = done.append
        bio = Bio(IOOp.READ, 4096, 123, group)
        device.submit(bio)
        sim.run()
        # sector 123 != next expected (0), so random service time applies
        assert sim.now == pytest.approx(100e-6)
        assert done == [bio]

    def test_sequential_detection_uses_device_order(self, env):
        sim, group = env
        device = make_device(sim, make_spec())
        first = Bio(IOOp.READ, 4096, 0, group)
        second = Bio(IOOp.READ, 4096, first.end_sector, group)
        device.submit(first)
        device.submit(second)
        assert first.device_sequential  # device starts expecting sector 0
        assert second.device_sequential

    def test_large_io_pays_transfer_time(self, env):
        sim, group = env
        spec = make_spec(parallelism=1, read_bw=1e9)
        device = make_device(sim, spec)
        device.submit(Bio(IOOp.READ, 1024 * 1024, 999, group))
        sim.run()
        expected = 100e-6 + (1024 * 1024 - 4096) / 1e9
        assert sim.now == pytest.approx(expected)

    def test_parallelism_queues_excess(self, env):
        sim, group = env
        spec = make_spec(parallelism=2)
        device = make_device(sim, spec)
        for index in range(4):
            device.submit(Bio(IOOp.READ, 4096, 1000 * index + 1, group))
        assert device.in_flight == 4
        assert device.queue_depth == 2
        sim.run()
        # Two waves of two parallel requests.
        assert sim.now == pytest.approx(200e-6)
        assert device.completed_ios == 4

    def test_write_uses_write_service(self, env):
        sim, group = env
        device = make_device(sim, make_spec())
        device.submit(Bio(IOOp.WRITE, 4096, 55, group))
        sim.run()
        assert sim.now == pytest.approx(120e-6)

    def test_throughput_matches_peak_rate(self, env):
        sim, group = env
        spec = make_spec(sigma=0.0)
        device = make_device(sim, spec)

        # Closed-loop: keep 8 requests outstanding for 0.1 s.
        def resubmit(bio):
            if sim.now < 0.1:
                device.submit(Bio(IOOp.READ, 4096, 7919 * device.completed_ios % 100000, group))

        device.on_complete = resubmit
        for index in range(8):
            device.submit(Bio(IOOp.READ, 4096, 13 * index + 7, group))
        sim.run(until=0.15)
        achieved = device.completed_ios / 0.1
        assert achieved == pytest.approx(spec.peak_rand_read_iops, rel=0.05)


class TestGCModel:
    def test_gc_debt_slows_sustained_writes(self, env):
        sim, group = env
        spec = make_spec(
            parallelism=1,
            srv_rand_write=10e-6,
            gc_buffer_bytes=1024 * 1024,
            gc_drain_bps=10e6,
            gc_write_slowdown=5.0,
        )
        device = make_device(sim, spec)

        # Push 2 MiB of writes: debt accumulates far past the 1 MiB buffer.
        for index in range(512):
            device.submit(Bio(IOOp.WRITE, 4096, index * 100 + 1, group))
        sim.run()
        assert device.gc_slow_ios > 0

    def test_gc_debt_drains_over_time(self, env):
        sim, group = env
        spec = make_spec(
            gc_buffer_bytes=1024,
            gc_drain_bps=1e6,
        )
        device = make_device(sim, spec)
        device.submit(Bio(IOOp.WRITE, 64 * 1024, 1, group))
        sim.run()
        assert device.gc_pressure(sim.now) > 0
        assert device.gc_pressure(sim.now + 10.0) == 0.0

    def test_gc_disabled_without_buffer(self, env):
        sim, group = env
        device = make_device(sim, make_spec(gc_buffer_bytes=0))
        device.submit(Bio(IOOp.WRITE, 1024 * 1024, 1, group))
        sim.run()
        assert device.gc_pressure(sim.now) == 0.0
        assert device.gc_slow_ios == 0


class TestRemoteModel:
    def test_network_rtt_added(self, env):
        sim, group = env
        device = make_device(sim, make_spec(network_rtt=1e-3))
        device.submit(Bio(IOOp.READ, 4096, 1, group))
        sim.run()
        assert sim.now == pytest.approx(100e-6 + 1e-3)

    def test_iops_limit_paces_requests(self, env):
        sim, group = env
        spec = make_spec(parallelism=16, iops_limit=1000, srv_rand_read=10e-6)
        device = make_device(sim, spec)

        def resubmit(bio):
            if sim.now < 0.5:
                device.submit(Bio(IOOp.READ, 4096, device.completed_ios * 3 + 1, group))

        device.on_complete = resubmit
        for index in range(16):
            device.submit(Bio(IOOp.READ, 4096, index * 5 + 2, group))
        sim.run(until=0.6)
        achieved = device.completed_ios / 0.5
        assert achieved <= 1100
        assert achieved == pytest.approx(1000, rel=0.1)
